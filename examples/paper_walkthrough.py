#!/usr/bin/env python
"""The whole paper in one run: miniature versions of every result.

Regenerates a small-scale rendition of each evaluation artifact — the
slowdown of Figure 6, the design comparisons of Figures 8/9 as ASCII bar
charts, the overflow curves of Figure 13, the off-DIMM traffic ratios,
and the area/energy claims — in a couple of minutes of pure Python.  For
the full-scale versions run ``pytest benchmarks/ --benchmark-only``.

Run:  python examples/paper_walkthrough.py [trace_length]
"""

import sys

from repro import (
    DesignPoint,
    DramEnergyModel,
    SdimmConfig,
    geometric_mean,
    run_simulation,
    table2_config,
)
from repro.analysis.queueing import transfer_queue_overflow_probability
from repro.analysis.random_walk import displacement_curve
from repro.analysis.traffic import independent_traffic, split_traffic
from repro.config import OramConfig
from repro.energy.area import sdimm_buffer_area_mm2
from repro.report import bar_chart, line_chart

WORKLOADS = ("mcf", "gromacs", "GemsFDTD")


def run_all(channels, designs, trace_length):
    results = {}
    for design in designs:
        per_workload = []
        for workload in WORKLOADS:
            config = table2_config(design, channels=channels)
            per_workload.append(run_simulation(config, workload,
                                               trace_length=trace_length))
        results[design] = per_workload
    return results


def geomean_cycles(runs):
    return geometric_mean([float(run.execution_cycles) for run in runs])


def main() -> None:
    trace_length = int(sys.argv[1]) if len(sys.argv) > 1 else 2500

    print("Figure 6 - the cost of obliviousness " + "=" * 30)
    designs_1ch = (DesignPoint.NONSECURE, DesignPoint.FREECURSIVE,
                   DesignPoint.INDEP_2, DesignPoint.SPLIT_2)
    one_channel = run_all(1, designs_1ch, trace_length)
    slowdown = (geomean_cycles(one_channel[DesignPoint.FREECURSIVE]) /
                geomean_cycles(one_channel[DesignPoint.NONSECURE]))
    print(f"  Freecursive ORAM runs {slowdown:.1f}x slower than non-secure "
          f"(paper: 8.8x, 1 channel)\n")

    print("Figures 8/9 - what SDIMMs buy back " + "=" * 33)
    baseline = geomean_cycles(one_channel[DesignPoint.FREECURSIVE])
    rows = [(design.value,
             geomean_cycles(one_channel[design]) / baseline)
            for design in (DesignPoint.FREECURSIVE, DesignPoint.INDEP_2,
                           DesignPoint.SPLIT_2)]
    print(bar_chart("  1 channel, normalized execution time", rows))
    designs_2ch = (DesignPoint.FREECURSIVE, DesignPoint.INDEP_4,
                   DesignPoint.SPLIT_4, DesignPoint.INDEP_SPLIT)
    two_channel = run_all(2, designs_2ch, trace_length)
    baseline2 = geomean_cycles(two_channel[DesignPoint.FREECURSIVE])
    rows = [(design.value, geomean_cycles(two_channel[design]) / baseline2)
            for design in designs_2ch]
    print(bar_chart("  2 channels, normalized execution time", rows))
    print()

    print("Figure 10 - memory energy " + "=" * 41)
    config = table2_config(DesignPoint.FREECURSIVE, channels=1)
    model = DramEnergyModel(config.power, config.timing,
                            config.organization)
    freecursive_energy = sum(
        model.report(run).total_pj
        for run in one_channel[DesignPoint.FREECURSIVE])
    split_energy = sum(model.report(run).total_pj
                       for run in one_channel[DesignPoint.SPLIT_2])
    print(f"  SPLIT-2 uses {freecursive_energy / split_energy:.2f}x less "
          f"memory energy than Freecursive (paper: 2.4x)\n")

    print("Section IV-B - off-DIMM traffic " + "=" * 35)
    oram = OramConfig(levels=28, cached_levels=7)
    indep = independent_traffic(oram, SdimmConfig(), 2, 7)
    split = split_traffic(oram, 2, 7)
    print(f"  INDEP-2 moves {indep.fraction_of_baseline:.1%} of baseline "
          f"off-DIMM accesses (paper: 4.2%)")
    print(f"  SPLIT   moves {split.fraction_of_baseline:.1%} "
          f"(paper: 12%)\n")

    print("Figure 13 - sizing the transfer queue " + "=" * 29)
    steps = 200_000
    print(line_chart(
        f"  P(queue exceeded) over {steps:,} undrained steps",
        {str(size): [(0, 0.0)] + displacement_curve(size, steps, points=8)
         for size in (16, 64, 256, 1024)}, width=48, height=8))
    overflow = transfer_queue_overflow_probability(0.05, 128)
    print(f"  ...but with drain probability 0.05 and the paper's 8 KB "
          f"buffer: P(overflow) = {overflow:.1e}\n")

    print("Section IV-B - the buffer chip " + "=" * 36)
    print(f"  secure buffer area at 32 nm: "
          f"{sdimm_buffer_area_mm2(SdimmConfig()):.2f} mm^2 "
          f"(paper: < 1 mm^2)")


if __name__ == "__main__":
    main()
