#!/usr/bin/env python
"""The paper's design space (Figure 7) on one workload, end to end.

Runs every design point of Figures 8/9 through the cycle-level simulator
and prints execution time, miss latency, main-channel traffic, and memory
energy — the whole evaluation story in one table.

Run:  python examples/design_space_comparison.py [workload] [trace_length]
"""

import sys

from repro import DesignPoint, DramEnergyModel, run_simulation, table2_config

SINGLE_CHANNEL = (DesignPoint.NONSECURE, DesignPoint.FREECURSIVE,
                  DesignPoint.INDEP_2, DesignPoint.SPLIT_2)
DOUBLE_CHANNEL = (DesignPoint.NONSECURE, DesignPoint.FREECURSIVE,
                  DesignPoint.INDEP_4, DesignPoint.SPLIT_4,
                  DesignPoint.INDEP_SPLIT)


def evaluate(designs, channels, workload, trace_length):
    print(f"\n--- {channels}-channel memory system, workload {workload!r} "
          f"({trace_length} trace records) ---")
    print(f"{'design':12s} {'exec cycles':>12s} {'norm':>6s} "
          f"{'latency':>8s} {'bus lines':>10s} {'energy':>8s}")
    baseline = None
    for design in designs:
        config = table2_config(design, channels=channels)
        result = run_simulation(config, workload,
                                trace_length=trace_length)
        model = DramEnergyModel(config.power, config.timing,
                                config.organization,
                                config.cpu.cpu_cycles_per_mem_cycle)
        energy = model.report(result)
        if design is DesignPoint.FREECURSIVE:
            baseline = result
        norm = (result.normalized_time(baseline)
                if baseline is not None else float("nan"))
        print(f"{design.value:12s} {result.execution_cycles:12,} "
              f"{norm:6.2f} {result.miss_latency.mean:8.0f} "
              f"{result.main_bus_lines:10,} "
              f"{energy.total_pj / 1e6:7.1f}uJ")


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "mcf"
    trace_length = int(sys.argv[2]) if len(sys.argv) > 2 else 4000
    evaluate(SINGLE_CHANNEL, 1, workload, trace_length)
    evaluate(DOUBLE_CHANNEL, 2, workload, trace_length)
    print("\n'norm' is execution time relative to Freecursive "
          "(the paper's Figures 8/9 metric).")


if __name__ == "__main__":
    main()
