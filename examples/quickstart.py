#!/usr/bin/env python
"""Quickstart: Path ORAM, encrypted storage, and a first SDIMM protocol.

Run:  python examples/quickstart.py
"""

from repro import DeterministicRng, IndependentProtocol, Op, PathOram
from repro.oram.integrity import EncryptedBucketStore


def pad(text: str) -> bytes:
    return text.encode().ljust(64, b"\0")


def main() -> None:
    print("=== 1. A plain Path ORAM " + "=" * 40)
    rng = DeterministicRng(2018, "quickstart")
    oram = PathOram(levels=10, blocks_per_bucket=4, block_bytes=64,
                    stash_capacity=200, rng=rng, record_trace=True)

    oram.access(7, Op.WRITE, pad("the secret launch codes"))
    oram.access(8, Op.WRITE, pad("a decoy grocery list"))
    data = oram.access(7, Op.READ)
    print(f"  block 7 reads back: {data.rstrip(bytes(1)).decode()!r}")
    print(f"  accesses so far: {oram.access_count}, "
          f"stash holds {len(oram.stash)} blocks")

    # what the bus saw: whole paths, root first, for every access
    per_access = 2 * oram.geometry.levels
    first = [event.bucket for event in oram.trace[:oram.geometry.levels]]
    print(f"  every access touches {per_access} buckets "
          f"(read+write one full path)")
    print(f"  first path: buckets {first}")

    print()
    print("=== 2. Encryption + PMMAC integrity " + "=" * 29)
    store = EncryptedBucketStore(bucket_count=(1 << 10) - 1,
                                 bucket_capacity=4, block_bytes=64,
                                 key=b"a 128-bit secret")
    secure = PathOram(levels=10, blocks_per_bucket=4, block_bytes=64,
                      stash_capacity=200,
                      rng=DeterministicRng(2018, "enc"), store=store)
    secure.access(1, Op.WRITE, pad("only ciphertext leaves the chip"))
    ciphertext, tag = store.snapshot(0)  # the root bucket, as DRAM sees it
    print(f"  root bucket in DRAM: {len(ciphertext)} ciphertext bytes, "
          f"8-byte MAC {tag.hex()}")
    print(f"  plaintext visible in DRAM? "
          f"{b'ciphertext' in ciphertext}")

    print()
    print("=== 3. The Independent SDIMM protocol " + "=" * 27)
    protocol = IndependentProtocol(global_levels=10, sdimm_count=4,
                                   block_bytes=64, stash_capacity=200,
                                   record_link=True)
    protocol.write(42, pad("distributed across subtrees"))
    for _ in range(5):
        protocol.read(42)
    print(f"  block 42 now lives on SDIMM {protocol.locate(42)} "
          f"(it migrates on every access)")
    appends = sum(1 for event in protocol.link.events
                  if event.command is not None and
                  event.command.value == "APPEND")
    print(f"  {len(protocol.link.events)} link messages so far; "
          f"{appends} APPENDs (one per SDIMM per access, mostly dummies)")
    print(f"  final read: "
          f"{protocol.read(42).rstrip(bytes(1)).decode()!r}")


if __name__ == "__main__":
    main()
