#!/usr/bin/env python
"""The threat model, demonstrated: what a bus-probing adversary gets.

Section II-B's attacker has a logic analyzer on the DIMM: they see every
address and every (encrypted) byte between the secure buffer and the DRAM
chips, and can actively tamper.  This example shows each defence doing its
job:

1. confidentiality — DRAM holds only ciphertext;
2. integrity      — tampering and replay raise immediately (PMMAC);
3. obliviousness  — two very different programs produce link traffic of
                    identical shape.

Run:  python examples/adversary_view.py
"""

from repro import DeterministicRng, Op, PathOram, SplitProtocol
from repro.core.split import SplitIntegrityError
from repro.oram.integrity import EncryptedBucketStore, IntegrityError


def confidentiality() -> None:
    print("1. Confidentiality " + "-" * 50)
    store = EncryptedBucketStore(bucket_count=127, bucket_capacity=4,
                                 block_bytes=64, key=b"secret key bytes")
    oram = PathOram(levels=7, blocks_per_bucket=4, block_bytes=64,
                    stash_capacity=200, rng=DeterministicRng(1, "conf"),
                    store=store)
    secret = b"ATTACK AT DAWN".ljust(64, b"\0")
    oram.access(5, Op.WRITE, secret)

    leaked = False
    for bucket in range(127):
        cell = store.snapshot(bucket)
        if cell and b"ATTACK" in cell[0]:
            leaked = True
    print(f"   plaintext found anywhere in DRAM: {leaked}")
    assert not leaked

    first, _ = store.snapshot(0)
    oram.access(5, Op.READ)  # rewrites the path with fresh pads
    second, _ = store.snapshot(0)
    print(f"   root bucket ciphertext changed after a *read*: "
          f"{first != second}  (counter-mode re-encryption)\n")


def integrity() -> None:
    print("2. Integrity (PMMAC) " + "-" * 48)
    store = EncryptedBucketStore(bucket_count=127, bucket_capacity=4,
                                 block_bytes=64, key=b"secret key bytes")
    oram = PathOram(levels=7, blocks_per_bucket=4, block_bytes=64,
                    stash_capacity=200, rng=DeterministicRng(2, "int"),
                    store=store)
    oram.access(5, Op.WRITE, b"v1".ljust(64, b"\0"))

    stale = store.snapshot(0)          # adversary records the root...
    oram.access(5, Op.WRITE, b"v2".ljust(64, b"\0"))
    store.replay(0, stale)             # ...and replays it later
    try:
        oram.access(5, Op.READ)
        print("   replay went UNDETECTED (bug!)")
    except IntegrityError as error:
        print(f"   replay detected: {error}")

    protocol = SplitProtocol(levels=7, ways=2, block_bytes=64,
                             stash_capacity=200, seed=3)
    protocol.write(1, b"x".ljust(64, b"\0"))
    victim = protocol.buffers[0]
    victim.tamper_bucket(next(iter(victim._store)))
    try:
        for _ in range(200):
            protocol.read(1)
        print("   slice tampering went UNDETECTED (bug!)")
    except SplitIntegrityError:
        print("   tampered Split slice detected by its per-SDIMM MAC\n")


def obliviousness() -> None:
    print("3. Obliviousness " + "-" * 52)

    def run(program):
        protocol = SplitProtocol(levels=8, ways=2, block_bytes=64,
                                 stash_capacity=200, seed=4,
                                 record_link=True)
        program(protocol)
        return protocol.link.shapes()

    def hot_loop(protocol):
        for _ in range(20):
            protocol.read(7)                       # one hot secret

    def scan(protocol):
        for address in range(10):
            protocol.write(address, bytes(64))     # bulk initialization
        for address in range(10):
            protocol.read(address)

    hot_shape = run(hot_loop)
    scan_shape = run(scan)
    print(f"   hot-loop link trace:  {len(hot_shape)} messages")
    print(f"   scan link trace:      {len(scan_shape)} messages")
    print(f"   traces identical in (direction, command, size): "
          f"{hot_shape == scan_shape}")
    assert hot_shape == scan_shape
    print("   -> the adversary cannot tell 20 reads of one secret from "
          "a 20-op bulk scan.")


def main() -> None:
    confidentiality()
    integrity()
    obliviousness()


if __name__ == "__main__":
    main()
