#!/usr/bin/env python
"""An oblivious in-memory key-value store over the Split protocol.

The paper motivates SDIMMs with in-memory databases (Oracle TimesTen, SAP
HANA): high capacity AND hidden access patterns.  This example builds a
small KV store whose *values* and *access pattern* are both protected —
an adversary watching the (simulated) buses learns only how many
operations ran.

Keys hash to block addresses, and two distinct keys can land on the same
slot (at 4096 slots the birthday bound makes a collision near-certain by
~75 keys).  Every block therefore carries an 8-byte key fingerprint in
its prefix: an operation that touches a slot owned by a *different* key
raises :class:`KeyCollisionError` instead of silently serving or
destroying the wrong record.

Run:  python examples/secure_key_value_store.py
"""

import hashlib

from repro import SplitProtocol
from repro.oram.path_oram import Op

BLOCK_BYTES = 64
#: bytes of key fingerprint stored in the block prefix
FINGERPRINT_BYTES = 8
#: value bytes per block after the fingerprint and 2-byte length prefix
VALUE_BYTES = BLOCK_BYTES - FINGERPRINT_BYTES - 2

#: an all-zero prefix marks a never-written slot
_EMPTY_FINGERPRINT = bytes(FINGERPRINT_BYTES)


class KeyCollisionError(Exception):
    """Two distinct keys hash to the same slot; the record is not served.

    Carries both the requested key and the slot so callers can rehash or
    resize instead of silently reading/overwriting the other key's data.
    """

    def __init__(self, key: str, slot: int):
        super().__init__(f"key {key!r} collides with another key "
                         f"at slot {slot}")
        self.key = key
        self.slot = slot


class ObliviousKvStore:
    """A fixed-capacity KV store with oblivious gets and puts.

    Keys hash to block addresses (open addressing is avoided by keeping
    the table sparse); every operation is exactly one ORAM access, so gets
    and puts are indistinguishable on the wire.  Slot collisions are
    *detected*, never silent: each block's prefix stores a fingerprint of
    the owning key, checked on every operation.
    """

    def __init__(self, capacity_blocks: int = 4096, ways: int = 2):
        levels = max(2, capacity_blocks.bit_length())
        self._oram = SplitProtocol(levels=levels, ways=ways,
                                   block_bytes=BLOCK_BYTES,
                                   stash_capacity=256, record_link=True)
        self._capacity = capacity_blocks

    def _slot(self, key: str) -> int:
        digest = hashlib.sha256(key.encode()).digest()
        return int.from_bytes(digest[:8], "little") % self._capacity

    def _fingerprint(self, key: str) -> bytes:
        """8 bytes identifying the key, never equal to the empty marker.

        Drawn from a different region of the digest than :meth:`_slot`, so
        two keys sharing a slot still (overwhelmingly) differ here.
        """
        digest = hashlib.sha256(key.encode()).digest()
        fingerprint = digest[8:8 + FINGERPRINT_BYTES]
        if fingerprint == _EMPTY_FINGERPRINT:
            fingerprint = b"\x01" * FINGERPRINT_BYTES
        return fingerprint

    def put(self, key: str, value: str) -> None:
        """Store one record: still exactly one ORAM access.

        The Split protocol's WRITE returns the block's *previous*
        contents, so the collision check costs no extra access: a prior
        record with a different fingerprint raises
        :class:`KeyCollisionError`.
        """
        encoded = value.encode()
        if len(encoded) > VALUE_BYTES:
            raise ValueError(f"value exceeds {VALUE_BYTES} bytes")
        fingerprint = self._fingerprint(key)
        block = (fingerprint +
                 len(encoded).to_bytes(2, "little") +
                 encoded.ljust(VALUE_BYTES, b"\0"))
        slot = self._slot(key)
        previous = self._oram.access(slot, Op.WRITE, block)
        stored = previous[:FINGERPRINT_BYTES]
        if stored not in (_EMPTY_FINGERPRINT, fingerprint):
            raise KeyCollisionError(key, slot)

    def get(self, key: str) -> str:
        slot = self._slot(key)
        block = self._oram.access(slot, Op.READ)
        stored = block[:FINGERPRINT_BYTES]
        if stored == _EMPTY_FINGERPRINT:
            raise KeyError(key)
        if stored != self._fingerprint(key):
            raise KeyCollisionError(key, slot)
        offset = FINGERPRINT_BYTES
        length = int.from_bytes(block[offset:offset + 2], "little")
        return block[offset + 2:offset + 2 + length].decode()

    @property
    def link_messages(self) -> int:
        return len(self._oram.link.events)


def main() -> None:
    store = ObliviousKvStore()

    print("Loading patient records into the oblivious store...")
    records = {
        "patient:1001": "diagnosis=hypertension;medication=lisinopril",
        "patient:1002": "diagnosis=diabetes-t2;medication=metformin",
        "patient:1003": "diagnosis=asthma;medication=albuterol",
        "patient:1004": "diagnosis=migraine;medication=sumatriptan",
    }
    for key, value in records.items():
        store.put(key, value)

    print("A 'hot' query pattern (same record, repeatedly):")
    for _ in range(3):
        value = store.get("patient:1002")
    print(f"  patient:1002 -> {value}")

    print("A scan pattern (every record once):")
    for key in records:
        store.get(key)

    messages = store.link_messages
    operations = len(records) + 3 + len(records)
    print(f"\nAdversary's view: {messages} protocol messages for "
          f"{operations} operations")
    print(f"  -> exactly {messages // operations} messages per operation, "
          f"regardless of key, value, or read/write.")
    print("  The hot query and the scan are indistinguishable on the bus.")

    assert store.get("patient:1003").startswith("diagnosis=asthma")
    assert messages % operations == 0
    try:
        store.get("patient:9999")
    except KeyError:
        print("Missing keys raise KeyError; colliding keys raise "
              "KeyCollisionError — never the wrong record.")
    print("\nAll records verified. Access pattern leaked: nothing.")


if __name__ == "__main__":
    main()
