#!/usr/bin/env python
"""An oblivious in-memory key-value store over the Split protocol.

The paper motivates SDIMMs with in-memory databases (Oracle TimesTen, SAP
HANA): high capacity AND hidden access patterns.  This example builds a
small KV store whose *values* and *access pattern* are both protected —
an adversary watching the (simulated) buses learns only how many
operations ran.

Run:  python examples/secure_key_value_store.py
"""

import hashlib

from repro import SplitProtocol
from repro.oram.path_oram import Op

BLOCK_BYTES = 64
#: value bytes per block after the 2-byte length prefix
VALUE_BYTES = BLOCK_BYTES - 2


class ObliviousKvStore:
    """A fixed-capacity KV store with oblivious gets and puts.

    Keys hash to block addresses (open addressing is avoided by keeping
    the table sparse); every operation is exactly one ORAM access, so gets
    and puts are indistinguishable on the wire.
    """

    def __init__(self, capacity_blocks: int = 4096, ways: int = 2):
        levels = max(2, capacity_blocks.bit_length())
        self._oram = SplitProtocol(levels=levels, ways=ways,
                                   block_bytes=BLOCK_BYTES,
                                   stash_capacity=256, record_link=True)
        self._capacity = capacity_blocks

    def _slot(self, key: str) -> int:
        digest = hashlib.sha256(key.encode()).digest()
        return int.from_bytes(digest[:8], "little") % self._capacity

    def put(self, key: str, value: str) -> None:
        encoded = value.encode()
        if len(encoded) > VALUE_BYTES:
            raise ValueError(f"value exceeds {VALUE_BYTES} bytes")
        block = len(encoded).to_bytes(2, "little") + \
            encoded.ljust(VALUE_BYTES, b"\0")
        self._oram.access(self._slot(key), Op.WRITE, block)

    def get(self, key: str) -> str:
        block = self._oram.access(self._slot(key), Op.READ)
        length = int.from_bytes(block[:2], "little")
        return block[2:2 + length].decode()

    @property
    def link_messages(self) -> int:
        return len(self._oram.link.events)


def main() -> None:
    store = ObliviousKvStore()

    print("Loading patient records into the oblivious store...")
    records = {
        "patient:1001": "diagnosis=hypertension;medication=lisinopril",
        "patient:1002": "diagnosis=diabetes-t2;medication=metformin",
        "patient:1003": "diagnosis=asthma;medication=albuterol",
        "patient:1004": "diagnosis=migraine;medication=sumatriptan",
    }
    for key, value in records.items():
        store.put(key, value)

    print("A 'hot' query pattern (same record, repeatedly):")
    for _ in range(3):
        value = store.get("patient:1002")
    print(f"  patient:1002 -> {value}")

    print("A scan pattern (every record once):")
    for key in records:
        store.get(key)

    messages = store.link_messages
    operations = len(records) + 3 + len(records)
    print(f"\nAdversary's view: {messages} protocol messages for "
          f"{operations} operations")
    print(f"  -> exactly {messages // operations} messages per operation, "
          f"regardless of key, value, or read/write.")
    print("  The hot query and the scan are indistinguishable on the bus.")

    assert store.get("patient:1003").startswith("diagnosis=asthma")
    assert messages % operations == 0
    print("\nAll records verified. Access pattern leaked: nothing.")


if __name__ == "__main__":
    main()
