#!/usr/bin/env python
"""Sizing the SDIMM transfer queue (the Section IV-C analysis, hands-on).

Walks through the paper's argument in three acts:

1. an undrained queue is a saturated random walk — any finite buffer
   overflows (Figure 13a);
2. draining arrivals with probability p turns it into a stable M/M/1/K
   queue with negligible overflow (Figure 13b);
3. a live Independent-protocol simulation confirms the queue stays tiny.

Run:  python examples/transfer_queue_sizing.py
"""

from repro import DeterministicRng, IndependentProtocol
from repro.analysis.queueing import (
    drain_utilization,
    transfer_queue_overflow_probability,
)
from repro.analysis.random_walk import (
    displacement_exceedance_probability,
    expected_displacement,
)


def act_one() -> None:
    print("Act 1: no draining - the queue is a lazy random walk")
    steps = 800_000
    print(f"  after {steps:,} accesses the queue has wandered "
          f"~{expected_displacement(steps):.0f} entries RMS")
    for size in (16, 64, 256, 1024):
        probability = displacement_exceedance_probability(size, steps)
        print(f"  P(a {size:4d}-entry buffer is exceeded) = "
              f"{probability:6.1%}")
    print("  -> even a 64 KB buffer (1024 blocks) is not safe.\n")


def act_two() -> None:
    print("Act 2: drain arrivals with probability p (extra dummy access)")
    capacity = 128  # the paper's 8 KB buffer
    for p in (0.0, 0.01, 0.05, 0.1):
        rho = drain_utilization(p)
        overflow = transfer_queue_overflow_probability(p, capacity)
        print(f"  p = {p:4.2f}: utilization {rho:.3f}, "
              f"P(128-entry queue full) = {overflow:.2e}")
    print("  -> p = 0.05 costs 5% extra accesses and makes overflow "
          "astronomically rare.\n")


def act_three() -> None:
    print("Act 3: a live Independent-protocol run (4 SDIMMs, p = 0.05)")
    protocol = IndependentProtocol(global_levels=12, sdimm_count=4,
                                   block_bytes=64, stash_capacity=200,
                                   transfer_queue_capacity=128,
                                   drain_probability=0.05, seed=7)
    rng = DeterministicRng(7, "traffic")
    for index in range(3000):
        protocol.write(rng.randrange(500), bytes(64))
    print(f"  {'sdimm':>6s} {'arrivals':>9s} {'drains':>7s} "
          f"{'peak queue':>11s}")
    for index, sdimm in enumerate(protocol.sdimms):
        queue = sdimm.queue
        print(f"  {index:6d} {queue.arrivals:9d} "
              f"{queue.drain_services:7d} {queue.peak_occupancy:11d}")
    peak = max(sdimm.queue.peak_occupancy for sdimm in protocol.sdimms)
    print(f"  -> peak occupancy {peak} of 128 slots; "
          f"zero overflows across "
          f"{sum(s.queue.arrivals for s in protocol.sdimms)} migrations.")


def main() -> None:
    act_one()
    act_two()
    act_three()


if __name__ == "__main__":
    main()
