"""repro — a from-scratch reproduction of "Secure DIMM: Moving ORAM
Primitives Closer to Memory" (Shafiee, Balasubramonian, Li, Tiwari;
HPCA 2018).

The package has two tiers:

* a **functional tier** with real data, real counter-mode encryption, and
  PMMAC integrity — :class:`PathOram`, :class:`RecursiveOram`,
  :class:`FreecursiveOram`, and the three SDIMM protocols
  (:class:`IndependentProtocol`, :class:`SplitProtocol`,
  :class:`IndepSplitProtocol`) — used to prove correctness and
  obliviousness; and
* a **timing tier** — an event-driven DDR3 simulator
  (:mod:`repro.dram`), full-system backends (:mod:`repro.sim`), workload
  generators (:mod:`repro.workloads`), and energy/area models
  (:mod:`repro.energy`) — used to reproduce the paper's evaluation
  (Figures 6-13, Table I).

Quickstart::

    from repro import PathOram, Op, DeterministicRng

    oram = PathOram(levels=10, blocks_per_bucket=4, block_bytes=64,
                    stash_capacity=200, rng=DeterministicRng(7, "demo"))
    oram.access(42, Op.WRITE, b"secret".ljust(64, b"\\0"))
    data = oram.access(42, Op.READ)

or run a full-system experiment::

    from repro import DesignPoint, run_simulation, table2_config

    result = run_simulation(table2_config(DesignPoint.INDEP_SPLIT,
                                          channels=2), "mcf")
    print(result.execution_cycles)
"""

from repro.config import (
    DesignPoint,
    DramOrganization,
    DramPower,
    DramTiming,
    OramConfig,
    SdimmConfig,
    SystemConfig,
    small_config,
    table2_config,
)
from repro.core.commands import CommandEncoder, SdimmCommand
from repro.core.indep_split import IndepSplitProtocol
from repro.core.independent import IndependentProtocol
from repro.core.split import SplitProtocol
from repro.core.transfer_queue import TransferQueue
from repro.energy.dram_power import DramEnergyModel, EnergyReport
from repro.oram.freecursive import FreecursiveOram
from repro.oram.path_oram import Op, PathOram
from repro.oram.recursive import RecursiveOram
from repro.sim.stats import RunResult, geometric_mean
from repro.sim.system import build_backend, run_simulation
from repro.utils.rng import DeterministicRng
from repro.workloads.spec import SPEC_PROFILES, get_profile
from repro.workloads.synthetic import generate_trace

__version__ = "1.0.0"

__all__ = [
    "CommandEncoder",
    "DesignPoint",
    "DeterministicRng",
    "DramEnergyModel",
    "DramOrganization",
    "DramPower",
    "DramTiming",
    "EnergyReport",
    "FreecursiveOram",
    "IndepSplitProtocol",
    "IndependentProtocol",
    "Op",
    "OramConfig",
    "PathOram",
    "RecursiveOram",
    "RunResult",
    "SPEC_PROFILES",
    "SdimmCommand",
    "SdimmConfig",
    "SplitProtocol",
    "SystemConfig",
    "TransferQueue",
    "build_backend",
    "generate_trace",
    "geometric_mean",
    "get_profile",
    "run_simulation",
    "small_config",
    "table2_config",
]
