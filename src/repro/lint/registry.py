"""Rule base class and the registry every rule module registers into.

Rules are small AST visitors with metadata.  Registration happens at
import time via the :func:`register` decorator; :func:`all_rules`
instantiates one of each, and :func:`select_rules` narrows that set from
a user-supplied ``--select`` list.  Path scoping lives here too: a rule
declares ``path_markers`` (run only on matching files) and
``exempt_markers`` (never run on matching files) as substrings of the
POSIX-normalized path, so the same rule works on the real tree and on
test fixture trees that mirror its layout.
"""

from __future__ import annotations

import ast
from typing import (Dict, Iterable, Iterator, List, Optional, Sequence,
                    Type)

from repro.lint.findings import Finding, Severity


class FileContext:
    """Everything a rule may consult about the file under analysis."""

    def __init__(self, path: str, source: str, tree: ast.Module):
        self.path = path                      # POSIX-normalized
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()


class Rule:
    """Base class for reprolint rules.

    Subclasses set the class attributes and implement :meth:`check`,
    yielding :class:`Finding` objects.  ``rule_id`` doubles as the
    suppression token (``# reprolint: disable=SEC001``).

    Three optional attributes shape how the runner drives a rule:

    * ``project`` — the rule needs the whole program at once; the
      runner calls :meth:`ProjectRule.check_project` with a project
      analysis instead of calling :meth:`check` per file.
    * ``synthetic`` — findings are produced by the runner itself
      (LINT000 parse failures, LINT001 stale suppressions); the rule
      class exists so the id is registered, documented and selectable,
      but :meth:`check` yields nothing.
    * ``superseded_by`` — a newer rule subsumes this one.  On project
      runs where the successor is active, the runner skips the old
      rule so the same defect is not reported twice; single-file runs
      (``lint_source``) and explicit ``--select`` still honor it.
    """

    rule_id: str = ""
    title: str = ""
    rationale: str = ""
    severity: Severity = Severity.ERROR
    path_markers: Sequence[str] = ()   # empty means "every file"
    exempt_markers: Sequence[str] = ()
    project: bool = False
    synthetic: bool = False
    superseded_by: Optional[str] = None

    def applies_to(self, path: str) -> bool:
        if any(marker in path for marker in self.exempt_markers):
            return False
        if not self.path_markers:
            return True
        return any(marker in path for marker in self.path_markers)

    def check(self, context: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, context: FileContext, node: ast.AST,
                message: str) -> Finding:
        return Finding(rule_id=self.rule_id, path=context.path,
                       line=getattr(node, "lineno", 1),
                       column=getattr(node, "col_offset", 0) + 1,
                       message=message, severity=self.severity)


class ProjectRule(Rule):
    """A rule that analyzes the whole program instead of one file.

    ``check`` never fires (the runner routes project rules through
    :meth:`check_project`); path scoping still applies, but to each
    *finding's* path rather than to whole files up front.
    """

    project = True

    def check(self, context: FileContext) -> Iterator[Finding]:
        return iter(())

    def check_project(self, analysis: object) -> Iterator[Finding]:
        """Yield findings for the whole program.

        ``analysis`` is the :class:`repro.lint.runner.ProjectAnalysis`
        the runner built: the call graph plus the taint engine results.
        """
        raise NotImplementedError


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not rule_class.rule_id:
        raise ValueError(f"{rule_class.__name__} has no rule_id")
    if rule_class.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule_class.rule_id}")
    _REGISTRY[rule_class.rule_id] = rule_class
    return rule_class


def all_rule_ids() -> List[str]:
    _ensure_loaded()
    return sorted(_REGISTRY)


def all_rules() -> List[Rule]:
    _ensure_loaded()
    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    _ensure_loaded()
    return _REGISTRY[rule_id]()


def select_rules(selected: Optional[Iterable[str]] = None) -> List[Rule]:
    """Instantiate the requested rules (all of them when None).

    Raises:
        KeyError: naming an unknown rule id.
    """
    if selected is None:
        return all_rules()
    _ensure_loaded()
    rules = []
    for rule_id in selected:
        token = rule_id.strip().upper()
        if not token:
            continue
        if token not in _REGISTRY:
            raise KeyError(token)
        rules.append(_REGISTRY[token]())
    return rules


def _ensure_loaded() -> None:
    """Import the bundled rule modules exactly once."""
    # Imported lazily to avoid a registry<->rules import cycle.
    import repro.lint.rules  # noqa: F401
