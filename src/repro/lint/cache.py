"""Incremental per-file result cache for the lint runner.

The same contract as the simulator's :class:`~repro.parallel.cache
.RunCache`: *a hit equals a re-run*.  The key folds together

* the file's exact bytes (content hash — renames and touches miss
  nothing, identical content anywhere hits),
* the active rule-id set, and
* a :func:`~repro.parallel.fingerprint.code_fingerprint` over the
  ``repro.lint`` package itself, so editing any rule or the engine
  cold-starts the cache instead of serving stale verdicts.

Only the per-file phase is cached; project-wide analysis (SEC003/
SEC004/DET003) depends on every file at once and is always recomputed.
Entries are small JSON documents; corruption or version drift reads as
a miss, never an error.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, Optional, Sequence

from repro.parallel.fingerprint import code_fingerprint

CACHE_VERSION = 1

_lint_fingerprint: Optional[str] = None


def lint_code_fingerprint() -> str:
    """Digest of the ``repro.lint`` package sources (cached per process)."""
    global _lint_fingerprint
    if _lint_fingerprint is None:
        _lint_fingerprint = code_fingerprint(
            root=os.path.dirname(os.path.abspath(__file__)))
    return _lint_fingerprint


def entry_key(file_bytes: bytes, rule_ids: Sequence[str]) -> str:
    digest = hashlib.sha256()
    digest.update(lint_code_fingerprint().encode())
    digest.update(b"\0")
    digest.update("|".join(sorted(rule_ids)).encode())
    digest.update(b"\0")
    digest.update(file_bytes)
    return digest.hexdigest()


class LintCache:
    """Directory of ``<key>.json`` per-file outcomes."""

    def __init__(self, directory: str):
        self.directory = directory
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.json")

    def get(self, key: str) -> Optional[Dict[str, object]]:
        try:
            with open(self._path(key), "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            self.misses += 1
            return None
        if not isinstance(payload, dict) or \
                payload.get("cache_version") != CACHE_VERSION:
            self.misses += 1
            return None
        self.hits += 1
        outcome = payload.get("outcome")
        return outcome if isinstance(outcome, dict) else None

    def put(self, key: str, outcome: Dict[str, object]) -> None:
        try:
            os.makedirs(self.directory, exist_ok=True)
            rendered = json.dumps({"cache_version": CACHE_VERSION,
                                   "outcome": outcome},
                                  sort_keys=True)
            path = self._path(key)
            temp = path + ".tmp"
            with open(temp, "w", encoding="utf-8") as handle:
                handle.write(rendered)
            os.replace(temp, path)
        except OSError:
            # A read-only or full cache directory degrades to a no-op
            # cache; linting itself must never fail because of it.
            pass
