"""Project-wide module loading and call-graph construction.

The interprocedural rules (SEC003/SEC004/DET003) need to see the whole
program at once: which functions exist, which calls resolve to which
definitions, and what little type information the source volunteers.
This module builds that view from already-parsed ASTs — no imports are
executed, so fixture trees and the real tree are handled identically.

Call resolution is deliberately tiered, most precise first:

1. ``ClassName.method(...)`` / ``ClassName(...)`` — the class is named
   directly;
2. ``self.method(...)`` — resolved inside the enclosing class;
3. ``self.attr.method(...)`` — resolved through the *attribute type
   map*: ``self.attr = ClassName(...)`` in any method, an annotated
   ``attr: ClassName`` class field, or an ``__init__`` parameter with
   an annotation assigned to ``self.attr`` all record ``attr``'s class;
4. bare ``name(...)`` — same-module function, then project-wide by
   name;
5. ``anything.method(...)`` — project-wide by method name, *capped*:
   more than :data:`MAX_CANDIDATES` same-named definitions means the
   name is too generic to say anything useful, and the call is treated
   as unresolved (the dataflow layer then falls back to a conservative
   argument-taint union).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

#: Above this many same-named candidates a by-name lookup is considered
#: unresolved — generic names like ``access`` or ``get`` would otherwise
#: smear taint (and sink summaries) across unrelated classes.
MAX_CANDIDATES = 4

#: Method names so ubiquitous (builtin containers, file-likes) that a
#: project-wide by-name match is noise even under the candidate cap:
#: ``config.get(...)`` must never resolve to some class's unrelated
#: ``get``.  Calls through these names resolve only via a typed
#: receiver (tiers 1-3); otherwise they stay unresolved.
_UBIQUITOUS_METHODS = frozenset({
    "get", "set", "put", "pop", "add", "append", "extend", "insert",
    "remove", "discard", "clear", "copy", "update", "setdefault",
    "keys", "values", "items", "sort", "reverse", "count", "index",
    "split", "join", "strip", "format", "encode", "decode", "read",
    "write", "close", "open", "send", "recv", "run", "reset", "next",
})

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


@dataclass
class ModuleInfo:
    """One parsed source file of the project."""

    path: str                  # POSIX-normalized, as reported in findings
    tree: ast.Module
    source: str
    lines: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.source.splitlines()


@dataclass
class FunctionInfo:
    """One function or method definition, with its home coordinates."""

    qualname: str              # "path::Class.method" or "path::func"
    name: str                  # bare name
    class_name: Optional[str]
    node: ast.AST              # FunctionDef | AsyncFunctionDef
    module: ModuleInfo
    params: List[str] = field(default_factory=list)

    @property
    def path(self) -> str:
        return self.module.path

    @property
    def lineno(self) -> int:
        return int(getattr(self.node, "lineno", 1))


class Project:
    """The whole-program view: modules, functions, classes, resolution.

    Construction never raises on weird code — anything unresolvable is
    simply absent, and callers treat absence as "unknown".
    """

    def __init__(self, modules: Sequence[ModuleInfo]):
        self.modules: List[ModuleInfo] = list(modules)
        self.functions: Dict[str, FunctionInfo] = {}
        #: bare function name -> definitions (module-level functions only)
        self.by_function_name: Dict[str, List[FunctionInfo]] = {}
        #: method name -> definitions across every class
        self.by_method_name: Dict[str, List[FunctionInfo]] = {}
        #: (class name, method name) -> definition
        self.methods: Dict[Tuple[str, str], FunctionInfo] = {}
        #: class name -> {attribute name -> class name of its value}
        self.attr_types: Dict[str, Dict[str, str]] = {}
        #: class names defined anywhere in the project
        self.class_names: Set[str] = set()
        #: path -> module-level names bound to mutable containers
        self.module_mutable_globals: Dict[str, Set[str]] = {}
        #: path -> every module-level binding
        self.module_globals: Dict[str, Set[str]] = {}
        for module in self.modules:
            self._index_module(module)

    # ------------------------------------------------------------------
    # Indexing
    # ------------------------------------------------------------------

    def _index_module(self, module: ModuleInfo) -> None:
        mutable: Set[str] = set()
        bound: Set[str] = set()
        for statement in module.tree.body:
            if isinstance(statement, _FUNCTION_NODES):
                self._add_function(module, statement, class_name=None)
            elif isinstance(statement, ast.ClassDef):
                self._index_class(module, statement)
            elif isinstance(statement, (ast.Assign, ast.AnnAssign)):
                for name in _binding_names(statement):
                    bound.add(name)
                    value = getattr(statement, "value", None)
                    if value is not None and _is_mutable_literal(value):
                        mutable.add(name)
        self.module_mutable_globals[module.path] = mutable
        self.module_globals[module.path] = bound

    def _index_class(self, module: ModuleInfo,
                     class_node: ast.ClassDef) -> None:
        self.class_names.add(class_node.name)
        attr_types = self.attr_types.setdefault(class_node.name, {})
        for statement in class_node.body:
            if isinstance(statement, _FUNCTION_NODES):
                self._add_function(module, statement,
                                   class_name=class_node.name)
                self._infer_attr_types(statement, attr_types)
            elif (isinstance(statement, ast.AnnAssign)
                  and isinstance(statement.target, ast.Name)):
                annotated = _annotation_class(statement.annotation)
                if annotated:
                    attr_types[statement.target.id] = annotated

    def _add_function(self, module: ModuleInfo, node: ast.AST,
                      class_name: Optional[str]) -> None:
        name = getattr(node, "name", "")
        qualname = (f"{module.path}::{class_name}.{name}" if class_name
                    else f"{module.path}::{name}")
        if qualname in self.functions:   # redefinition: last one wins
            previous = self.functions[qualname]
            for table in (self.by_function_name, self.by_method_name):
                entries = table.get(name)
                if entries and previous in entries:
                    entries.remove(previous)
        arguments = getattr(node, "args", None)
        params = []
        if arguments is not None:
            params = [a.arg for a in (arguments.posonlyargs + arguments.args
                                      + arguments.kwonlyargs)]
        info = FunctionInfo(qualname=qualname, name=name,
                            class_name=class_name, node=node,
                            module=module, params=params)
        self.functions[qualname] = info
        if class_name is None:
            self.by_function_name.setdefault(name, []).append(info)
        else:
            self.by_method_name.setdefault(name, []).append(info)
            self.methods[(class_name, name)] = info

    def _infer_attr_types(self, method: ast.AST,
                          attr_types: Dict[str, str]) -> None:
        """Record ``self.attr``'s class from assignments inside a method."""
        annotated_params: Dict[str, str] = {}
        arguments = getattr(method, "args", None)
        if arguments is not None:
            for argument in arguments.posonlyargs + arguments.args:
                if argument.annotation is not None:
                    klass = _annotation_class(argument.annotation)
                    if klass:
                        annotated_params[argument.arg] = klass
        for node in ast.walk(method):
            if isinstance(node, ast.Assign):
                targets = node.targets
                value: Optional[ast.AST] = node.value
            elif isinstance(node, ast.AnnAssign):
                targets = [node.target]
                value = node.value
            else:
                continue
            for target in targets:
                if not (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    continue
                klass = None
                if isinstance(node, ast.AnnAssign):
                    klass = _annotation_class(node.annotation)
                if (klass is None and isinstance(value, ast.Call)
                        and isinstance(value.func, ast.Name)):
                    if value.func.id in self.class_names or \
                            value.func.id[:1].isupper():
                        klass = value.func.id
                if (klass is None and isinstance(value, ast.Name)
                        and value.id in annotated_params):
                    klass = annotated_params[value.id]
                if klass:
                    attr_types[target.attr] = klass

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------

    def resolve_call(self, call: ast.Call,
                     caller: FunctionInfo) -> List[FunctionInfo]:
        """Candidate definitions a call may invoke ([] = unresolved)."""
        func = call.func
        if isinstance(func, ast.Name):
            return self._resolve_bare_name(func.id, caller)
        if isinstance(func, ast.Attribute):
            return self._resolve_attribute(func, caller)
        return []

    def _resolve_bare_name(self, name: str,
                           caller: FunctionInfo) -> List[FunctionInfo]:
        # Constructor call: ClassName(...) -> ClassName.__init__
        if name in self.class_names:
            init = self.methods.get((name, "__init__"))
            return [init] if init else []
        same_module = [info for info in self.by_function_name.get(name, [])
                       if info.module is caller.module]
        if same_module:
            return same_module
        candidates = self.by_function_name.get(name, [])
        if 0 < len(candidates) <= MAX_CANDIDATES:
            return list(candidates)
        return []

    def _resolve_attribute(self, func: ast.Attribute,
                           caller: FunctionInfo) -> List[FunctionInfo]:
        method = func.attr
        base = func.value
        # ClassName.method(...)
        if isinstance(base, ast.Name) and base.id in self.class_names:
            info = self.methods.get((base.id, method))
            return [info] if info else []
        # self.method(...) / cls.method(...)
        if (isinstance(base, ast.Name) and base.id in ("self", "cls")
                and caller.class_name is not None):
            info = self.methods.get((caller.class_name, method))
            if info:
                return [info]
        # self.attr.method(...) through the attribute type map
        if (isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
                and base.value.id in ("self", "cls")
                and caller.class_name is not None):
            klass = self.attr_types.get(caller.class_name, {}).get(base.attr)
            if klass:
                info = self.methods.get((klass, method))
                return [info] if info else []
        # anything.method(...): project-wide by method name, capped and
        # denied for ubiquitous container/stdlib names
        if method in _UBIQUITOUS_METHODS:
            return []
        candidates = self.by_method_name.get(method, [])
        if 0 < len(candidates) <= MAX_CANDIDATES:
            return list(candidates)
        return []

    # ------------------------------------------------------------------
    # Reachability (used by DET003's worker analysis)
    # ------------------------------------------------------------------

    def reachable_from(self, root: FunctionInfo,
                       max_functions: int = 200) -> List[FunctionInfo]:
        """Functions transitively callable from ``root`` (bounded BFS)."""
        seen: Set[str] = {root.qualname}
        order: List[FunctionInfo] = [root]
        frontier: List[FunctionInfo] = [root]
        while frontier and len(order) < max_functions:
            nxt: List[FunctionInfo] = []
            for info in frontier:
                for node in ast.walk(info.node):
                    if not isinstance(node, ast.Call):
                        continue
                    for callee in self.resolve_call(node, info):
                        if callee.qualname not in seen:
                            seen.add(callee.qualname)
                            order.append(callee)
                            nxt.append(callee)
                            if len(order) >= max_functions:
                                return order
            frontier = nxt
        return order


def _binding_names(statement: ast.AST) -> List[str]:
    names: List[str] = []
    targets: List[ast.AST] = []
    if isinstance(statement, ast.Assign):
        targets = list(statement.targets)
    elif isinstance(statement, ast.AnnAssign):
        targets = [statement.target]
    for target in targets:
        if isinstance(target, ast.Name):
            names.append(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            names.extend(element.id for element in target.elts
                         if isinstance(element, ast.Name))
    return names


def _is_mutable_literal(value: ast.AST) -> bool:
    if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                          ast.DictComp, ast.SetComp)):
        return True
    return (isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in {"list", "dict", "set", "defaultdict",
                                  "OrderedDict", "Counter", "deque"})


def _annotation_class(annotation: Optional[ast.AST]) -> Optional[str]:
    """The class a simple annotation names (``Foo``, ``"Foo"``), if any."""
    if annotation is None:
        return None
    if isinstance(annotation, ast.Name):
        return annotation.id
    if isinstance(annotation, ast.Constant) and \
            isinstance(annotation.value, str):
        tail = annotation.value.split(".")[-1].strip()
        return tail if tail.isidentifier() else None
    if isinstance(annotation, ast.Attribute):
        return annotation.attr
    return None


def build_project(files: Sequence[Tuple[str, str, ast.Module]]) -> Project:
    """Assemble a :class:`Project` from ``(path, source, tree)`` triples."""
    return Project([ModuleInfo(path=path, tree=tree, source=source)
                    for path, source, tree in files])
