"""File discovery, rule execution, and the two-phase drive loop.

A lint run has two phases:

* **per-file** — parse each file once and run every file-scoped rule on
  it.  This phase is embarrassingly parallel (``jobs > 1`` fans it over
  the same process pool the sweep engine uses, merged by submission
  index so output is byte-identical to serial) and cacheable (content
  hash + rule set + lint-code fingerprint, see
  :mod:`repro.lint.cache`);
* **project** — build the whole-program view (:mod:`repro.lint
  .callgraph`), run the taint engine (:mod:`repro.lint.dataflow`) and
  every :class:`~repro.lint.registry.ProjectRule` over it.  Inherently
  serial and never cached: it depends on every file at once.

Files that cannot be analyzed (unreadable, undecodable, syntax errors)
become structured LINT000 findings *and* :class:`LintError` entries —
the run degrades instead of aborting, and the exit code stays 2.
``warn_unused_suppressions`` adds LINT001 findings for directives that
silenced nothing across both phases.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import (Dict, Iterable, Iterator, List, Optional, Sequence,
                    Set, Tuple)

from repro.lint.cache import LintCache, entry_key
from repro.lint.callgraph import Project, build_project
from repro.lint.dataflow import ProgramTaint, analyze
from repro.lint.findings import Finding, LintError, LintResult, Severity
from repro.lint.registry import FileContext, Rule, select_rules
from repro.lint.suppressions import (SuppressionIndex, Scope,
                                     parse_suppressions)

_SKIP_DIRECTORIES = {"__pycache__", ".git", ".venv", "venv",
                     ".mypy_cache", ".ruff_cache", ".pytest_cache",
                     "build", "dist"}

_SORT_KEY = (lambda finding: (finding.path, finding.line, finding.column,
                              finding.rule_id, finding.message))


def iter_python_files(paths: Iterable[str]) -> Iterator[Path]:
    """Yield every ``.py`` file under ``paths``, sorted, without dupes."""
    seen = set()
    for raw in paths:
        root = Path(raw)
        if root.is_file():
            candidates = [root]   # explicit files are linted regardless of suffix
        elif root.is_dir():
            candidates = sorted(
                candidate for candidate in root.rglob("*.py")
                if not (_SKIP_DIRECTORIES &
                        set(part for part in candidate.parts)))
        else:
            raise FileNotFoundError(raw)
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


# ----------------------------------------------------------------------
# Per-file phase
# ----------------------------------------------------------------------

@dataclass
class FileOutcome:
    """Everything the per-file phase produced for one file (picklable)."""

    path: str
    checked: bool = False
    findings: List[Finding] = field(default_factory=list)
    error: Optional[LintError] = None
    suppressed_count: int = 0
    #: ``(scope, token)`` pairs whose directives silenced a finding
    used: List[Tuple[Scope, str]] = field(default_factory=list)


def _lint000(path: str, line: int, column: int, message: str) -> Finding:
    return Finding(rule_id="LINT000", path=path, line=max(1, line),
                   column=max(1, column), message=message,
                   severity=Severity.ERROR)


def check_one_file(path: Path, rules: Sequence[Rule]) -> FileOutcome:
    """Run the file-scoped rules on one file.

    Analysis failures become a LINT000 finding plus a
    :class:`LintError`; they never raise.
    """
    posix = path.as_posix()
    outcome = FileOutcome(path=posix)
    try:
        source = path.read_bytes().decode("utf-8")
    except (OSError, UnicodeDecodeError) as error:
        outcome.error = LintError(posix, f"unreadable: {error}")
        outcome.findings.append(_lint000(
            posix, 1, 1, f"file could not be read: {error}"))
        return outcome
    outcome.findings.extend(lint_source_into(source, posix, rules,
                                             outcome))
    return outcome


def lint_source_into(source: str, posix: str, rules: Sequence[Rule],
                     outcome: FileOutcome) -> List[Finding]:
    """Parse + rule-check source text, recording state into ``outcome``."""
    try:
        tree = ast.parse(source, filename=posix)
    except SyntaxError as error:
        line = int(error.lineno or 1)
        outcome.error = LintError(
            posix, f"syntax error at line {line}: {error.msg}")
        return [_lint000(posix, line, int(error.offset or 1),
                         f"syntax error: {error.msg}")]
    except (ValueError, RecursionError) as error:
        outcome.error = LintError(posix, f"unparseable: {error}")
        return [_lint000(posix, 1, 1, f"file could not be parsed: "
                                      f"{error}")]
    outcome.checked = True
    suppressions = parse_suppressions(source)
    context = FileContext(posix, source, tree)
    findings: List[Finding] = []
    for rule in rules:
        if rule.project or rule.synthetic:
            continue
        if not rule.applies_to(posix):
            continue
        for finding in rule.check(context):
            if suppressions.is_suppressed(finding.rule_id, finding.line):
                outcome.suppressed_count += 1
            else:
                findings.append(finding)
    outcome.used = sorted(suppressions.used,
                          key=lambda pair: (str(pair[0]), pair[1]))
    return findings


def _outcome_to_dict(outcome: FileOutcome) -> Dict[str, object]:
    return {
        "path": outcome.path,
        "checked": outcome.checked,
        "findings": [finding.to_dict() for finding in outcome.findings],
        "error": (None if outcome.error is None
                  else outcome.error.to_dict()),
        "suppressed_count": outcome.suppressed_count,
        "used": [[scope, token] for scope, token in outcome.used],
    }


def _outcome_from_dict(payload: Dict[str, object]) -> FileOutcome:
    error = payload.get("error")
    return FileOutcome(
        path=str(payload["path"]),
        checked=bool(payload["checked"]),
        findings=[Finding(rule_id=str(entry["rule"]),
                          path=str(entry["path"]),
                          line=int(entry["line"]),
                          column=int(entry["column"]),
                          message=str(entry["message"]),
                          severity=Severity(str(entry["severity"])))
                  for entry in payload.get("findings", ())],
        error=(None if error is None
               else LintError(str(error["path"]), str(error["message"]))),
        suppressed_count=int(payload.get("suppressed_count", 0)),
        used=[(scope if isinstance(scope, int) else str(scope),
               str(token))
              for scope, token in payload.get("used", ())],
    )


def _file_worker(task: Tuple[int, str, Tuple[str, ...], Optional[str]]
                 ) -> Tuple[int, Dict[str, object]]:
    """Pool worker: one file, cache-first, picklable in and out."""
    index, raw_path, rule_ids, cache_dir = task
    path = Path(raw_path)
    cache: Optional[LintCache] = None
    key: Optional[str] = None
    if cache_dir is not None:
        cache = LintCache(cache_dir)
        try:
            key = entry_key(path.read_bytes(), rule_ids)
        except OSError:
            key = None
        if key is not None:
            cached = cache.get(key)
            if cached is not None:
                return index, cached
    rules = select_rules(rule_ids)
    payload = _outcome_to_dict(check_one_file(path, rules))
    if cache is not None and key is not None:
        cache.put(key, payload)
    return index, payload


def _run_file_phase(files: Sequence[Path], rule_ids: Sequence[str],
                    jobs: int,
                    cache_dir: Optional[str]) -> List[FileOutcome]:
    tasks = [(index, str(path), tuple(rule_ids), cache_dir)
             for index, path in enumerate(files)]
    payloads: List[Tuple[int, Dict[str, object]]] = []
    pool = None
    if jobs > 1 and len(tasks) > 1:
        from repro.parallel.sweep import make_pool

        pool = make_pool(jobs)
    if pool is None:
        for task in tasks:
            payloads.append(_file_worker(task))
    else:
        with pool:
            # completion order is nondeterministic; the sorted
            # index-keyed merge below restores submission order, which
            # is what makes --jobs N byte-identical to serial
            for item in pool.imap_unordered(_file_worker, tasks):
                payloads.append(item)
            pool.close()
            pool.join()
    ordered = sorted(payloads, key=lambda item: item[0])
    return [_outcome_from_dict(payload) for _, payload in ordered]


# ----------------------------------------------------------------------
# Project phase
# ----------------------------------------------------------------------

class ProjectAnalysis:
    """What a :class:`~repro.lint.registry.ProjectRule` gets to see."""

    def __init__(self, project: Project,
                 suppressions: Dict[str, SuppressionIndex]):
        self.project = project
        self._suppressions = suppressions
        self._taint: Optional[ProgramTaint] = None

    @property
    def taint(self) -> ProgramTaint:
        """The whole-program taint results (computed on first use)."""
        if self._taint is None:
            self._taint = analyze(self.project,
                                  suppressions=self._suppressions)
        return self._taint


def _load_project(files: Sequence[Path]
                  ) -> Tuple[Project, Dict[str, SuppressionIndex]]:
    """Re-read and parse every analyzable file for the project phase."""
    triples: List[Tuple[str, str, ast.Module]] = []
    suppressions: Dict[str, SuppressionIndex] = {}
    for path in files:
        posix = path.as_posix()
        try:
            source = path.read_bytes().decode("utf-8")
            tree = ast.parse(source, filename=posix)
        except (OSError, UnicodeDecodeError, SyntaxError, ValueError,
                RecursionError):
            continue   # already reported by the per-file phase
        triples.append((posix, source, tree))
        suppressions[posix] = parse_suppressions(source)
    return build_project(triples), suppressions


# ----------------------------------------------------------------------
# Unused-suppression audit (LINT001)
# ----------------------------------------------------------------------

def _supersession_aliases(all_rules_by_id: Dict[str, Rule],
                          active_ids: Set[str]) -> Dict[str, Set[str]]:
    """token -> the rule ids whose use also justifies that token.

    A ``disable=SEC002`` directive is judged by SEC002 *or* its active
    successor SEC003: the old token is still meaningful mid-migration,
    and stale is stale under either analysis.
    """
    aliases: Dict[str, Set[str]] = {}
    for rule_id, rule in all_rules_by_id.items():
        successor = rule.superseded_by
        if successor and successor in active_ids and \
                rule_id not in active_ids:
            aliases[rule_id] = {rule_id, successor}
    return aliases


def _unused_suppression_findings(
        path: str, index: SuppressionIndex, active_ids: Set[str],
        aliases: Dict[str, Set[str]]) -> Iterator[Finding]:
    for directive in index.directives:
        scope = directive.scope
        for token in directive.tokens:
            if token == "ALL":
                if not index.scope_has_use(scope):
                    yield _lint001(path, directive.line, token,
                                   directive.file_level)
                continue
            judged = aliases.get(token, {token})
            if token not in active_ids and token not in aliases:
                continue   # rule did not run; cannot judge the directive
            if any((scope, candidate) in index.used
                   for candidate in sorted(judged)):
                continue
            yield _lint001(path, directive.line, token,
                           directive.file_level)


def _lint001(path: str, line: int, token: str,
             file_level: bool) -> Finding:
    form = "disable-file" if file_level else "disable"
    return Finding(
        rule_id="LINT001", path=path, line=line, column=1,
        message=(f"suppression directive '{form}={token}' suppresses "
                 f"nothing; delete it or re-justify it"),
        severity=Severity.WARNING)


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------

def _active_rules(rules: Sequence[Rule], explicit: bool) -> List[Rule]:
    """Drop superseded rules on default project-wide runs."""
    if explicit:
        return list(rules)
    ids = {rule.rule_id for rule in rules}
    return [rule for rule in rules
            if not (rule.superseded_by and rule.superseded_by in ids)]


def lint_paths(paths: Iterable[str],
               selected_rules: Optional[Iterable[str]] = None,
               jobs: int = 1,
               cache_dir: Optional[str] = None,
               warn_unused_suppressions: bool = False) -> LintResult:
    """Lint every Python file under ``paths`` with the selected rules.

    ``jobs > 1`` fans the per-file phase over a process pool; output is
    byte-identical to serial.  ``cache_dir`` enables the per-file
    result cache.  When ``selected_rules`` is None (a default run),
    superseded rules (SEC002) are skipped in favor of their
    whole-program successors.

    Raises:
        FileNotFoundError: a requested path does not exist.
        KeyError: ``selected_rules`` names an unknown rule.
    """
    requested = select_rules(selected_rules)
    active = _active_rules(requested, explicit=selected_rules is not None)
    file_rules = [rule for rule in active
                  if not rule.project and not rule.synthetic]
    project_rules = [rule for rule in active if rule.project]
    file_rule_ids = sorted(rule.rule_id for rule in file_rules)

    files = list(iter_python_files(paths))
    outcomes = _run_file_phase(files, file_rule_ids, jobs, cache_dir)

    result = LintResult()
    worker_used: Dict[str, List[Tuple[Scope, str]]] = {}
    for outcome in outcomes:
        result.findings.extend(outcome.findings)
        result.suppressed_count += outcome.suppressed_count
        if outcome.error is not None:
            result.errors.append(outcome.error)
        if outcome.checked:
            result.files_checked += 1
        worker_used[outcome.path] = outcome.used

    need_project = bool(project_rules) or warn_unused_suppressions
    if need_project:
        project, suppressions = _load_project(files)
        for path, pairs in sorted(worker_used.items()):
            index = suppressions.get(path)
            if index is None:
                continue
            for scope, token in pairs:
                index.mark_used(scope, token)
        analysis = ProjectAnalysis(project, suppressions)
        for rule in project_rules:
            for finding in rule.check_project(analysis):
                index = suppressions.get(finding.path)
                if index is not None and \
                        index.is_suppressed(finding.rule_id, finding.line):
                    result.suppressed_count += 1
                else:
                    result.findings.append(finding)
        if warn_unused_suppressions:
            from repro.lint.registry import all_rules

            by_id = {rule.rule_id: rule for rule in all_rules()}
            active_ids = {rule.rule_id for rule in active
                          if not rule.synthetic}
            aliases = _supersession_aliases(by_id, active_ids)
            for path in sorted(suppressions):
                result.findings.extend(_unused_suppression_findings(
                    path, suppressions[path], active_ids, aliases))

    result.findings.sort(key=_SORT_KEY)
    return result


def lint_source(source: str, path: str = "<memory>",
                selected_rules: Optional[Iterable[str]] = None) -> LintResult:
    """Lint an in-memory source string (test and tooling convenience).

    The ``path`` is used for rule scoping exactly as an on-disk path
    would be, so callers can probe path-scoped rules by faking layouts.
    Single-source runs have no whole-program view: project rules are
    skipped and SEC002 stays active as the local fallback.
    """
    rules = select_rules(selected_rules)
    outcome = FileOutcome(path=path)
    findings = lint_source_into(source, path, rules, outcome)
    result = LintResult(findings=findings,
                        suppressed_count=outcome.suppressed_count)
    if outcome.error is not None:
        result.errors.append(outcome.error)
        # lint_source keeps the historical shape: parse failures are
        # errors only, without a synthetic LINT000 finding.
        result.findings = [finding for finding in result.findings
                           if finding.rule_id != "LINT000"]
    if outcome.checked:
        result.files_checked = 1
    result.findings.sort(key=_SORT_KEY)
    return result
