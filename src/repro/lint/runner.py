"""File discovery and rule execution.

The runner is deliberately boring: enumerate Python files under the
requested paths in sorted order (determinism applies to the linter
too), parse each once, hand the tree to every rule whose path scope
matches, and drop findings the file's suppression directives cover.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Iterator, Optional, Sequence

from repro.lint.findings import LintError, LintResult
from repro.lint.registry import FileContext, Rule, select_rules
from repro.lint.suppressions import parse_suppressions

_SKIP_DIRECTORIES = {"__pycache__", ".git", ".venv", "venv",
                     ".mypy_cache", ".ruff_cache", ".pytest_cache",
                     "build", "dist"}


def iter_python_files(paths: Iterable[str]) -> Iterator[Path]:
    """Yield every ``.py`` file under ``paths``, sorted, without dupes."""
    seen = set()
    for raw in paths:
        root = Path(raw)
        if root.is_file():
            candidates = [root]   # explicit files are linted regardless of suffix
        elif root.is_dir():
            candidates = sorted(
                candidate for candidate in root.rglob("*.py")
                if not (_SKIP_DIRECTORIES &
                        set(part for part in candidate.parts)))
        else:
            raise FileNotFoundError(raw)
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def lint_file(path: Path, rules: Sequence[Rule],
              result: LintResult) -> None:
    """Lint one file, appending findings/errors into ``result``."""
    posix = path.as_posix()
    applicable = [rule for rule in rules if rule.applies_to(posix)]
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as error:
        result.errors.append(LintError(posix, f"unreadable: {error}"))
        return
    try:
        tree = ast.parse(source, filename=posix)
    except SyntaxError as error:
        result.errors.append(
            LintError(posix, f"syntax error at line {error.lineno}: "
                             f"{error.msg}"))
        return
    result.files_checked += 1
    if not applicable:
        return
    suppressions = parse_suppressions(source)
    context = FileContext(posix, source, tree)
    for rule in applicable:
        for finding in rule.check(context):
            if suppressions.is_suppressed(finding.rule_id, finding.line):
                result.suppressed_count += 1
            else:
                result.findings.append(finding)


def lint_paths(paths: Iterable[str],
               selected_rules: Optional[Iterable[str]] = None) -> LintResult:
    """Lint every Python file under ``paths`` with the selected rules.

    Raises:
        FileNotFoundError: a requested path does not exist.
        KeyError: ``selected_rules`` names an unknown rule.
    """
    rules = select_rules(selected_rules)
    result = LintResult()
    for path in iter_python_files(paths):
        lint_file(path, rules, result)
    result.findings.sort(key=lambda finding: (finding.path, finding.line,
                                              finding.column,
                                              finding.rule_id))
    return result


def lint_source(source: str, path: str = "<memory>",
                selected_rules: Optional[Iterable[str]] = None) -> LintResult:
    """Lint an in-memory source string (test and tooling convenience).

    The ``path`` is used for rule scoping exactly as an on-disk path
    would be, so callers can probe path-scoped rules by faking layouts.
    """
    rules = select_rules(selected_rules)
    result = LintResult()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        result.errors.append(
            LintError(path, f"syntax error at line {error.lineno}: "
                            f"{error.msg}"))
        return result
    result.files_checked = 1
    suppressions = parse_suppressions(source)
    context = FileContext(path, source, tree)
    for rule in rules:
        if not rule.applies_to(path):
            continue
        for finding in rule.check(context):
            if suppressions.is_suppressed(finding.rule_id, finding.line):
                result.suppressed_count += 1
            else:
                result.findings.append(finding)
    result.findings.sort(key=lambda finding: (finding.path, finding.line,
                                              finding.column,
                                              finding.rule_id))
    return result
