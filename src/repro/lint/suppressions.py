"""Suppression-comment parsing.

Two forms, both with room for a trailing justification:

* per-line — on the line a finding is reported at (for a multi-line
  statement, the line the node starts on)::

      if self.tag(m) != t:  # reprolint: disable=SEC001 -- sim-only path

* per-file — anywhere in the file, conventionally near the top::

      # reprolint: disable-file=DET001 -- replay tool, wall clock is fine

Rule lists are comma separated; the token ``all`` silences every rule.
Anything after the rule list (a ``--`` justification, prose) is ignored
by the parser but strongly encouraged by the style guide in
``docs/lint.md``.
"""

from __future__ import annotations

import re
from typing import Dict, Set

_DIRECTIVE = re.compile(
    r"#\s*reprolint:\s*disable(?P<file>-file)?\s*=\s*(?P<rules>[A-Za-z0-9_,\s]+)"
)
_TOKEN = re.compile(r"[A-Za-z]+[0-9]+|all", re.IGNORECASE)


class SuppressionIndex:
    """Per-file map of which rules are silenced where."""

    def __init__(self) -> None:
        self.file_level: Set[str] = set()
        self.by_line: Dict[int, Set[str]] = {}

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        for scope in (self.file_level, self.by_line.get(line, ())):
            if "ALL" in scope or rule_id.upper() in scope:
                return True
        return False


def parse_suppressions(source: str) -> SuppressionIndex:
    """Scan source text for reprolint directives.

    Works on raw lines rather than the AST so that directives survive in
    files the parser rejects elsewhere, and so a directive on a
    continuation line is simply inert instead of an error.
    """
    index = SuppressionIndex()
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _DIRECTIVE.search(line)
        if not match:
            continue
        tokens = {token.upper() for token in
                  _TOKEN.findall(match.group("rules"))}
        if not tokens:
            continue
        if match.group("file"):
            index.file_level |= tokens
        else:
            index.by_line.setdefault(lineno, set()).update(tokens)
    return index
