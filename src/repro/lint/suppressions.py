"""Suppression-comment parsing.

Two forms, both with room for a trailing justification:

* per-line — on the line a finding is reported at (for a multi-line
  statement, the line the node starts on)::

      if self.tag(m) != t:  # reprolint: disable=SEC001 -- sim-only path

* per-file — anywhere in the file, conventionally near the top::

      # reprolint: disable-file=DET001 -- replay tool, wall clock is fine

Rule lists are comma separated; the token ``all`` silences every rule.
Anything after the rule list (a ``--`` justification, prose) is ignored
by the parser but strongly encouraged by the style guide in
``docs/lint.md``.

Beyond the ``is_suppressed`` predicate, the index keeps two things the
runner's ``--warn-unused-suppressions`` mode needs: the full inventory
of directives as written (:class:`Directive`), and a record of which
``(scope, token)`` pairs actually silenced a finding, so a directive
that suppressed nothing can itself be reported (LINT001).
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass
from typing import Dict, Iterator, List, Set, Tuple, Union

_DIRECTIVE = re.compile(
    r"#\s*reprolint:\s*disable(?P<file>-file)?\s*=\s*(?P<rules>[A-Za-z0-9_,\s]+)"
)
_TOKEN = re.compile(r"[A-Za-z]+[0-9]+|all", re.IGNORECASE)

#: Scope key: the literal string "file" for file-level directives, the
#: directive's line number otherwise.
Scope = Union[str, int]


@dataclass(frozen=True)
class Directive:
    """One ``# reprolint: disable[-file]=...`` comment as written."""

    line: int
    file_level: bool
    tokens: Tuple[str, ...]    # upper-cased, sorted

    @property
    def scope(self) -> Scope:
        return "file" if self.file_level else self.line


class SuppressionIndex:
    """Per-file map of which rules are silenced where.

    ``used`` accumulates ``(scope, token)`` pairs as findings are
    filtered, so unused directives can be computed afterwards.
    """

    def __init__(self) -> None:
        self.file_level: Set[str] = set()
        self.by_line: Dict[int, Set[str]] = {}
        self.directives: List[Directive] = []
        self.used: Set[Tuple[Scope, str]] = set()

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        token = rule_id.upper()
        hit = False
        if token in self.file_level:
            self.used.add(("file", token))
            hit = True
        elif "ALL" in self.file_level:
            self.used.add(("file", "ALL"))
            hit = True
        line_tokens = self.by_line.get(line, set())
        if token in line_tokens:
            self.used.add((line, token))
            hit = True
        elif "ALL" in line_tokens:
            self.used.add((line, "ALL"))
            hit = True
        return hit

    def mark_used(self, scope: Scope, token: str) -> None:
        """Record an out-of-band use (e.g. a sink silenced at its
        definition site by the interprocedural engine)."""
        self.used.add((scope, token.upper()))

    def scope_has_use(self, scope: Scope) -> bool:
        return any(used_scope == scope for used_scope, _ in self.used)


def _iter_comment_lines(source: str) -> Iterator[Tuple[int, str]]:
    """Yield ``(lineno, text)`` for every real comment in the source.

    Tokenizing (rather than scanning raw lines) keeps directive
    *examples* inside docstrings from being honored as live directives.
    Files the tokenizer rejects fall back to a raw line scan so that
    file-level directives still apply to whatever findings the runner
    can produce for them.
    """
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError, ValueError):
        yield from enumerate(source.splitlines(), start=1)
        return
    for token in tokens:
        if token.type == tokenize.COMMENT:
            yield token.start[0], token.string


def parse_suppressions(source: str) -> SuppressionIndex:
    """Scan source comments for reprolint directives.

    Works on comment tokens rather than the AST so that a directive on a
    continuation line attaches to that physical line (where the
    interprocedural rules report lifted findings) instead of erroring.
    """
    index = SuppressionIndex()
    for lineno, line in _iter_comment_lines(source):
        match = _DIRECTIVE.search(line)
        if not match:
            continue
        tokens = {token.upper() for token in
                  _TOKEN.findall(match.group("rules"))}
        if not tokens:
            continue
        file_level = bool(match.group("file"))
        index.directives.append(Directive(line=lineno,
                                          file_level=file_level,
                                          tokens=tuple(sorted(tokens))))
        if file_level:
            index.file_level |= tokens
        else:
            index.by_line.setdefault(lineno, set()).update(tokens)
    return index
