"""Committed-baseline workflow: fail CI only on *new* findings.

A baseline file is a JSON document listing accepted findings.  Entries
are keyed by ``rule|path|message`` — deliberately *line-independent*,
so unrelated edits that shift a known finding up or down the file do
not resurrect it, while any change to the finding's substance (rule,
file, or message text) makes it count as new.

Workflow::

    python -m repro lint src --write-baseline lint-baseline.json
    git add lint-baseline.json
    # later runs:
    python -m repro lint src --baseline lint-baseline.json
    # exit 1 only for findings not in the baseline

The file format is versioned and human-reviewable; shrinking it over
time is the point.
"""

from __future__ import annotations

import json
from typing import Dict, List, Set

from repro.lint.findings import Finding, LintResult

BASELINE_VERSION = 1


def finding_key(finding: Finding) -> str:
    return f"{finding.rule_id}|{finding.path}|{finding.message}"


def render_baseline(result: LintResult) -> str:
    """Serialize the run's findings as a fresh baseline document."""
    entries: List[Dict[str, str]] = []
    seen: Set[str] = set()
    for finding in result.findings + result.baselined:
        key = finding_key(finding)
        if key in seen:
            continue
        seen.add(key)
        entries.append({"rule": finding.rule_id, "path": finding.path,
                        "message": finding.message})
    entries.sort(key=lambda entry: (entry["rule"], entry["path"],
                                    entry["message"]))
    return json.dumps({"baseline_version": BASELINE_VERSION,
                       "tool": "reprolint",
                       "findings": entries}, indent=2) + "\n"


def load_baseline(text: str) -> Set[str]:
    """Parse a baseline document back into a set of finding keys.

    Raises:
        ValueError: the text is not a baseline document.
    """
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise ValueError(f"not a reprolint baseline file: {error}") from error
    if not isinstance(payload, dict) or "findings" not in payload:
        raise ValueError("not a reprolint baseline file")
    version = payload.get("baseline_version")
    if version != BASELINE_VERSION:
        raise ValueError(f"unsupported baseline_version {version!r}")
    keys: Set[str] = set()
    for entry in payload["findings"]:
        keys.add(f"{entry['rule']}|{entry['path']}|{entry['message']}")
    return keys


def apply_baseline(result: LintResult, accepted: Set[str]) -> None:
    """Split ``result.findings`` into new vs. baselined, in place."""
    fresh: List[Finding] = []
    for finding in result.findings:
        if finding_key(finding) in accepted:
            result.baselined.append(finding)
        else:
            fresh.append(finding)
    result.findings[:] = fresh
