"""Human-readable and machine-readable renderings of a lint run.

The JSON schema is versioned and append-only: tools may rely on every
field present in ``SCHEMA_VERSION`` 1 staying put with the same types.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Dict

from repro.lint.findings import LintResult
from repro.lint.registry import all_rules

SCHEMA_VERSION = 1


def render_text(result: LintResult) -> str:
    """The classic compiler-style report, one line per finding."""
    lines = [finding.render() for finding in result.findings]
    lines += [error.render() for error in result.errors]
    noun = "file" if result.files_checked == 1 else "files"
    summary = (f"reprolint: {result.files_checked} {noun} checked, "
               f"{len(result.findings)} finding"
               f"{'' if len(result.findings) == 1 else 's'}")
    if result.suppressed_count:
        summary += f" ({result.suppressed_count} suppressed)"
    if result.baselined:
        summary += f" ({len(result.baselined)} baselined)"
    if result.errors:
        summary += f", {len(result.errors)} file error" \
                   f"{'' if len(result.errors) == 1 else 's'}"
    lines.append(summary)
    return "\n".join(lines)


def to_payload(result: LintResult) -> Dict[str, object]:
    """The JSON document as a plain dict (tests validate this shape)."""
    by_rule = Counter(finding.rule_id for finding in result.findings)
    payload: Dict[str, object] = {
        "schema_version": SCHEMA_VERSION,
        "tool": "reprolint",
        "findings": [finding.to_dict() for finding in result.findings],
        "errors": [error.to_dict() for error in result.errors],
        "summary": {
            "files_checked": result.files_checked,
            "finding_count": len(result.findings),
            "suppressed_count": result.suppressed_count,
            "error_count": len(result.errors),
            "by_rule": dict(sorted(by_rule.items())),
        },
        "exit_code": result.exit_code(),
    }
    if result.baselined:
        # Append-only schema addition: present only when a --baseline
        # run matched known findings.
        payload["baselined"] = [finding.to_dict()
                                for finding in result.baselined]
        summary = payload["summary"]
        assert isinstance(summary, dict)
        summary["baselined_count"] = len(result.baselined)
    return payload


def render_json(result: LintResult) -> str:
    return json.dumps(to_payload(result), indent=2, sort_keys=False)


def render_rule_list() -> str:
    """``--list-rules`` output: id, scope and rationale for every rule."""
    blocks = []
    for rule in all_rules():
        scope = (", ".join(rule.path_markers) if rule.path_markers
                 else "all files")
        if rule.exempt_markers:
            scope += f" (exempt: {', '.join(rule.exempt_markers)})"
        blocks.append(f"{rule.rule_id}  {rule.title}\n"
                      f"    scope: {scope}\n"
                      f"    {rule.rationale}")
    return "\n".join(blocks)
