"""reprolint — AST-based static analysis for this repository's invariants.

Secure DIMM's security argument and this reproduction's test strategy
both rest on coding invariants no ordinary linter checks: MAC/tag
comparisons must be constant-time (SEC001), protocol control flow must
not depend on secret state (SEC002), nothing outside the sanctioned RNG
may consume ambient nondeterminism (DET001), and cycle accounting must
stay in exact integers (DET002).  ``python -m repro lint`` enforces all
four; ``docs/lint.md`` documents each family and the suppression
syntax.

Public API::

    from repro.lint import lint_paths, lint_source
    result = lint_paths(["src/repro"])
    result.exit_code()   # 0 clean, 1 findings, 2 file errors
"""

from repro.lint.findings import (Finding, LintError, LintResult,  # noqa: F401
                                 Severity)
from repro.lint.registry import (Rule, all_rule_ids, all_rules,  # noqa: F401
                                 get_rule, register, select_rules)
from repro.lint.reporting import (SCHEMA_VERSION, render_json,  # noqa: F401
                                  render_rule_list, render_text, to_payload)
from repro.lint.runner import (iter_python_files, lint_paths,  # noqa: F401
                               lint_source)

__all__ = [
    "Finding", "LintError", "LintResult", "Severity",
    "Rule", "register", "all_rules", "all_rule_ids", "get_rule",
    "select_rules",
    "lint_paths", "lint_source", "iter_python_files",
    "render_text", "render_json", "render_rule_list", "to_payload",
    "SCHEMA_VERSION",
]
