"""reprolint — static analysis for this repository's invariants.

Secure DIMM's security argument and this reproduction's test strategy
both rest on coding invariants no ordinary linter checks: MAC/tag
comparisons must be constant-time (SEC001), protocol control flow must
not depend on secret state — per-function (SEC002) and whole-program
(SEC003) — memory addressing on the stash/bucket hot path must be
oblivious (SEC004), nothing outside the sanctioned RNG may consume
ambient nondeterminism (DET001), cycle accounting must stay in exact
integers (DET002), and pool fan-out must be deterministic across
processes (DET003).  ``python -m repro lint`` enforces all of them;
``docs/lint.md`` documents each family, the taint-source annotation
convention, the suppression syntax, and the baseline workflow.

Public API::

    from repro.lint import lint_paths, lint_source
    result = lint_paths(["src/repro"], jobs=4)
    result.exit_code()   # 0 clean, 1 findings, 2 file errors
"""

from repro.lint.baseline import (apply_baseline, finding_key,  # noqa: F401
                                 load_baseline, render_baseline)
from repro.lint.findings import (Finding, LintError, LintResult,  # noqa: F401
                                 Severity)
from repro.lint.registry import (ProjectRule, Rule, all_rule_ids,  # noqa: F401
                                 all_rules, get_rule, register,
                                 select_rules)
from repro.lint.reporting import (SCHEMA_VERSION, render_json,  # noqa: F401
                                  render_rule_list, render_text, to_payload)
from repro.lint.runner import (iter_python_files, lint_paths,  # noqa: F401
                               lint_source)
from repro.lint.sarif import render_sarif, to_sarif  # noqa: F401

__all__ = [
    "Finding", "LintError", "LintResult", "Severity",
    "Rule", "ProjectRule", "register", "all_rules", "all_rule_ids",
    "get_rule", "select_rules",
    "lint_paths", "lint_source", "iter_python_files",
    "render_text", "render_json", "render_rule_list", "to_payload",
    "render_sarif", "to_sarif",
    "apply_baseline", "finding_key", "load_baseline", "render_baseline",
    "SCHEMA_VERSION",
]
