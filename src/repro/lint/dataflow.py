"""Interprocedural taint dataflow over per-function summaries.

Two passes, both fixed-point:

* **Pass A (summaries).**  Every function is analyzed with its
  parameters held abstract: parameter ``p`` carries the token ``P:p``,
  and concrete secrets (vocabulary identifiers, ``# reprolint: secret``
  annotations, ``decrypt*`` results) carry ``SECRET``.  The pass yields
  a :class:`FunctionSummary` — which tokens the return value may carry,
  and which parameters reach a *sink* (branch condition, loop bound,
  ternary with real work in an arm, subscript index, membership probe)
  inside the function.  Summaries are iterated to a global fixpoint so
  taint crosses any number of call hops.
* **Pass B (reporting).**  Every function is re-analyzed with concrete
  seeding (vocabulary parameters are SECRET).  A sink whose condition
  carries ``SECRET`` becomes an *in-place* flow at the sink; a call
  whose argument carries ``SECRET`` into a callee parameter that the
  callee's summary says reaches a sink becomes a *lifted* flow at the
  call site — the interprocedural finding the per-file SEC002 rule
  could never produce.

Precision features (each one retires a class of suppressions the local
analysis needed):

* fresh-RNG declassification — ``rng.random_leaf(...)``/``bernoulli``
  and friends return *fresh public randomness*; assigning one to a
  vocabulary-named target does **not** taint it;
* ``len()`` is structural — the length of a container is treated as
  sanitized (occupancy side channels are SEC004/DET territory, handled
  where the container itself is indexed);
* ``encrypt*`` declassifies (ciphertext is public by definition) and
  ``decrypt*`` is a hard SECRET source;
* subscripts propagate the *container's* taint to the value read, never
  the index's (a secret index is an addressing leak — SEC004's sink —
  not a data flow);
* ``x is None`` presence tests and raise-only guards (``if bad:
  raise``) are exempt — they check protocol integrity, not secret
  content, and the failure path aborts the run rather than shaping it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

from repro.lint.callgraph import FunctionInfo, Project
from repro.lint.rules.common import identifier_segments
from repro.lint.suppressions import SuppressionIndex, parse_suppressions

SECRET = "SECRET"

#: Sink kinds, grouped by the rule family that reports them.
BRANCH_KINDS = frozenset({"branch condition", "loop bound",
                          "conditional expression"})
ADDRESS_KINDS = frozenset({"subscript index", "membership probe"})

_SECRET_VOCABULARY = frozenset({
    "leaf", "leaves", "plaintext", "plaintexts",
    "secret", "secrets",
})

#: RNG methods whose result is fresh public randomness regardless of
#: their arguments (the arguments are bounds/probabilities, and the
#: draw itself is the protocol's sanctioned remapping step).
_FRESH_RNG = frozenset({
    "random_leaf", "randint", "randrange", "random", "bernoulli",
    "expovariate", "gauss", "random_bytes", "zipf_index",
})

#: Pure builtins whose presence in a ternary arm does not constitute
#: observable work — ``a if c else None`` and ``bytes(n) if d else x``
#: are data selection, not control flow with a timing shape.
_PURE_BUILTINS = frozenset({
    "bytes", "bytearray", "len", "int", "bool", "float", "str",
    "min", "max", "abs", "tuple", "frozenset",
})

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)

#: Suppression tokens that silence a sink at its definition site, per
#: family.  SEC002 is honored for branch sinks so summaries computed
#: mid-migration (before a directive is retagged) stay quiet too.
_FAMILY_TOKENS = {
    "branch": ("SEC002", "SEC003"),
    "address": ("SEC004",),
}

#: Segments that mark an identifier as a *structural count*, not a
#: secret: ``n_leaves``, ``_global_leaf_count``, ``leaf_bits`` are tree
#: capacities — public configuration — even though "leaf" is vocabulary.
_STRUCTURAL_SEGMENTS = frozenset({
    "n", "num", "count", "total", "max", "min", "per", "capacity",
    "limit", "bits", "width", "size", "space",
})

Deps = FrozenSet[str]
_EMPTY: Deps = frozenset()
_SECRET_ONLY: Deps = frozenset({SECRET})


def _vocab(name: str) -> bool:
    segments = identifier_segments(name)
    if not segments & _SECRET_VOCABULARY:
        return False
    return not (segments & _STRUCTURAL_SEGMENTS)


def _param_token(name: str) -> str:
    return "P:" + name


@dataclass(frozen=True)
class SinkRecord:
    """One sink inside a function, as seen by callers."""

    kind: str
    lineno: int
    column: int
    params: FrozenSet[str]     # bare parameter names reaching the sink
    suppressed: bool           # silenced at the definition site


@dataclass(frozen=True)
class FunctionSummary:
    """What a caller needs to know about a function."""

    return_deps: Deps
    sinks: Tuple[SinkRecord, ...]


@dataclass(frozen=True)
class TaintFlow:
    """One reportable secret flow (in-place at a sink, or lifted to a
    call site whose argument reaches a sink in the callee)."""

    kind: str                  # one of BRANCH_KINDS | ADDRESS_KINDS
    path: str                  # file the finding is reported in
    line: int
    column: int
    message: str
    origin_path: str           # file containing the sink itself

    @property
    def family(self) -> str:
        return "branch" if self.kind in BRANCH_KINDS else "address"


class _FunctionAnalysis:
    """One function's abstract interpretation (shared by both passes)."""

    def __init__(self, engine: "ProgramTaint", info: FunctionInfo,
                 concrete: bool):
        self.engine = engine
        self.info = info
        self.concrete = concrete
        self._secret_attrs = engine.secret_attrs_for(info)
        self.env: Dict[str, Deps] = {}
        arguments = getattr(info.node, "args", None)
        params = info.params if arguments is not None else []
        for param in params:
            deps = {_param_token(param)}
            if concrete and _vocab(param):
                deps.add(SECRET)
            self.env[param] = frozenset(deps)
        self._annotated = engine.annotated_lines(info.module.path)

    # -- statement-order iteration, stopping at nested defs -----------

    def statements(self) -> Iterator[ast.AST]:
        yield from _iter_shallow(getattr(self.info.node, "body", []))

    # -- environment fixpoint -----------------------------------------

    def run(self) -> None:
        for _ in range(10):
            if not self._pass_once():
                return

    def _pass_once(self) -> bool:
        changed = False
        for node in self.statements():
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                changed |= self._transfer_assign(node)
            elif isinstance(node, ast.For):
                changed |= self._bind(node.target,
                                      self.expr_deps(node.iter),
                                      strong=False)
            elif isinstance(node, ast.withitem) and \
                    node.optional_vars is not None:
                changed |= self._bind(node.optional_vars,
                                      self.expr_deps(node.context_expr),
                                      strong=False)
            elif isinstance(node, ast.NamedExpr):
                changed |= self._bind(node.target,
                                      self.expr_deps(node.value),
                                      strong=False)
        return changed

    def _transfer_assign(self, node: ast.AST) -> bool:
        value = getattr(node, "value", None)
        if value is None:
            return False
        deps = self.expr_deps(value)
        if getattr(node, "lineno", 0) in self._annotated:
            deps = deps | _SECRET_ONLY
        targets = (node.targets if isinstance(node, ast.Assign)
                   else [node.target])
        strong = (isinstance(node, ast.Assign) and len(targets) == 1
                  and isinstance(targets[0], ast.Name))
        declassified = _is_declassifier(value)
        changed = False
        for target in targets:
            changed |= self._bind(target, deps, strong=strong,
                                  declassified=declassified)
        return changed

    def _bind(self, target: ast.AST, deps: Deps, strong: bool,
              declassified: bool = False) -> bool:
        changed = False
        for name in _binding_names_of(target):
            # A vocabulary-named target is a concrete secret *unless*
            # the value is explicitly declassified (fresh randomness,
            # ciphertext, a structural length, a constant).
            new = deps
            if _vocab(name) and not declassified:
                new = new | _SECRET_ONLY
            if not strong:
                new = new | self.env.get(name, _EMPTY)
            if self.env.get(name) != new:
                self.env[name] = new
                changed = True
        return changed

    # -- expression evaluation -----------------------------------------

    def expr_deps(self, node: ast.AST) -> Deps:
        if isinstance(node, ast.Constant):
            return _EMPTY
        if isinstance(node, ast.Name):
            if node.id in self.env:
                return self.env[node.id]
            return _SECRET_ONLY if _vocab(node.id) else _EMPTY
        if isinstance(node, ast.Attribute):
            deps = self.env.get(node.attr, _EMPTY)
            if _vocab(node.attr) or node.attr in self._secret_attrs:
                deps = deps | _SECRET_ONLY
            return deps
        if isinstance(node, ast.Call):
            return self._call_deps(node)
        if isinstance(node, ast.Subscript):
            # Index taint does NOT flow into the value read: a secret
            # index is an addressing sink (SEC004), not a data flow.
            return self.expr_deps(node.value)
        if isinstance(node, ast.NamedExpr):
            return self.expr_deps(node.value)
        if isinstance(node, ast.Lambda):
            return _EMPTY
        if isinstance(node, _FUNCTION_NODES):
            return _EMPTY
        deps: Deps = _EMPTY
        for child in ast.iter_child_nodes(node):
            deps = deps | self.expr_deps(child)
        return deps

    def _call_deps(self, call: ast.Call) -> Deps:
        name = _callee_name(call)
        if name is not None:
            if name == "len" or "encrypt" in name:
                return _EMPTY
            if name in _FRESH_RNG:
                return _EMPTY
            if "decrypt" in name:
                return _SECRET_ONLY
        callees = self.engine.project.resolve_call(call, self.info)
        if callees:
            deps: Deps = _EMPTY
            for callee in callees:
                summary = self.engine.summaries.get(callee.qualname)
                if summary is None:
                    continue
                deps = deps | self._substitute(summary.return_deps,
                                               call, callee)
            return deps
        # Unresolved: the result may carry anything the receiver or the
        # arguments carry, plus SECRET when the method name itself says
        # so (``stash.get_leaf(...)``).
        deps = _EMPTY
        if isinstance(call.func, ast.Attribute):
            deps = deps | self.expr_deps(call.func.value)
        if name is not None and _vocab(name):
            deps = deps | _SECRET_ONLY
        for argument in call.args:
            deps = deps | self.expr_deps(argument)
        for keyword in call.keywords:
            deps = deps | self.expr_deps(keyword.value)
        return deps

    def _substitute(self, deps: Deps, call: ast.Call,
                    callee: FunctionInfo) -> Deps:
        """Rewrite a callee summary into caller terms."""
        if not deps:
            return _EMPTY
        mapping = self.argument_map(call, callee)
        out = set()
        for token in deps:
            if token == SECRET:
                out.add(SECRET)
            elif token.startswith("P:"):
                argument = mapping.get(token[2:])
                if argument is not None:
                    out |= self.expr_deps(argument)
        return frozenset(out)

    def argument_map(self, call: ast.Call,
                     callee: FunctionInfo) -> Dict[str, ast.AST]:
        """Callee parameter name -> caller argument expression."""
        params = callee.params
        mapping: Dict[str, ast.AST] = {}
        offset = 0
        if (isinstance(call.func, ast.Attribute)
                and callee.class_name is not None
                and params and params[0] in ("self", "cls")):
            mapping[params[0]] = call.func.value
            offset = 1
        for index, argument in enumerate(call.args):
            if isinstance(argument, ast.Starred):
                break
            position = offset + index
            if position < len(params):
                mapping[params[position]] = argument
        for keyword in call.keywords:
            if keyword.arg is not None and keyword.arg in params:
                mapping[keyword.arg] = keyword.value
        return mapping

    # -- sink enumeration ----------------------------------------------

    def sinks(self) -> Iterator[Tuple[str, ast.AST, ast.AST]]:
        """Yield ``(kind, sink node, guarded expression)`` triples."""
        for node in self.statements():
            if isinstance(node, (ast.If, ast.While)):
                if _is_none_presence_test(node.test):
                    continue
                if isinstance(node, ast.If) and _is_raise_only_guard(node):
                    continue
                yield "branch condition", node, node.test
            elif isinstance(node, ast.IfExp):
                if _is_none_presence_test(node.test):
                    continue
                if _arms_do_real_work(node):
                    yield "conditional expression", node, node.test
            elif isinstance(node, ast.For):
                if _is_computed_bound(node.iter):
                    yield "loop bound", node, node.iter
            elif isinstance(node, ast.Subscript):
                yield "subscript index", node, node.slice
            elif isinstance(node, ast.Compare):
                if (len(node.ops) == 1
                        and isinstance(node.ops[0], (ast.In, ast.NotIn))):
                    yield "membership probe", node, node.left

    def culprit(self, expression: ast.AST) -> str:
        """A name carrying SECRET in the expression (for the message)."""
        names = []
        for child in ast.walk(expression):
            name: Optional[str] = None
            if isinstance(child, ast.Name):
                name = child.id
            elif isinstance(child, ast.Attribute):
                name = child.attr
            if name is None:
                continue
            bound = self.env.get(name)
            if (bound is not None and SECRET in bound) or \
                    (bound is None and (_vocab(name)
                                        or name in self._secret_attrs)):
                names.append(name)
        return sorted(names)[0] if names else "<expression>"


class ProgramTaint:
    """Whole-program taint analysis over a :class:`Project`.

    ``summaries`` maps function qualnames to :class:`FunctionSummary`;
    ``flows`` holds every reportable flow, sorted.  Rules filter flows
    by kind family and path scope.
    """

    def __init__(self, project: Project,
                 suppressions: Optional[Dict[str, SuppressionIndex]] = None):
        self.project = project
        self.summaries: Dict[str, FunctionSummary] = {}
        self._suppressions: Dict[str, SuppressionIndex] = \
            dict(suppressions) if suppressions else {}
        self._annotated: Dict[str, FrozenSet[int]] = {}
        # (module path, class name) -> attribute names observed holding
        # a concrete secret in *some* method; reads in every method of
        # that class then carry SECRET (the "decrypted payload threaded
        # through an object attribute" case).
        self._secret_attrs: Dict[Tuple[str, str], set] = {}
        self._attrs_changed = False
        self._compute_summaries()
        self.flows: List[TaintFlow] = sorted(
            self._report(),
            key=lambda flow: (flow.path, flow.line, flow.column,
                              flow.kind, flow.message))

    # -- shared per-module caches --------------------------------------

    def suppression_index(self, path: str) -> SuppressionIndex:
        if path not in self._suppressions:
            module = next(m for m in self.project.modules if m.path == path)
            self._suppressions[path] = parse_suppressions(module.source)
        return self._suppressions[path]

    def annotated_lines(self, path: str) -> FrozenSet[int]:
        if path not in self._annotated:
            module = next(m for m in self.project.modules if m.path == path)
            lines = set()
            for lineno, line in enumerate(module.lines, start=1):
                if "# reprolint: secret" in line or \
                        "#reprolint: secret" in line:
                    lines.add(lineno)
            self._annotated[path] = frozenset(lines)
        return self._annotated[path]

    def secret_attrs_for(self, info: FunctionInfo) -> FrozenSet[str]:
        if info.class_name is None:
            return frozenset()
        key = (info.module.path, info.class_name)
        return frozenset(self._secret_attrs.get(key, ()))

    def _record_secret_attr(self, info: FunctionInfo, attr: str) -> None:
        key = (info.module.path, str(info.class_name))
        bucket = self._secret_attrs.setdefault(key, set())
        if attr not in bucket:
            bucket.add(attr)
            self._attrs_changed = True

    def _sink_suppressed(self, path: str, kind: str, lineno: int) -> bool:
        index = self.suppression_index(path)
        family = "branch" if kind in BRANCH_KINDS else "address"
        return any(index.is_suppressed(token, lineno)
                   for token in _FAMILY_TOKENS[family])

    # -- Pass A ---------------------------------------------------------

    def _compute_summaries(self) -> None:
        for _ in range(20):
            changed = False
            self._attrs_changed = False
            for qualname in sorted(self.project.functions):
                info = self.project.functions[qualname]
                summary = self._summarize(info)
                if summary != self.summaries.get(qualname):
                    self.summaries[qualname] = summary
                    changed = True
            if not changed and not self._attrs_changed:
                return

    def _summarize(self, info: FunctionInfo) -> FunctionSummary:
        analysis = _FunctionAnalysis(self, info, concrete=False)
        analysis.run()
        if info.class_name is not None:
            self._collect_secret_attrs(info, analysis)
        return_deps: Deps = _EMPTY
        for node in _iter_shallow(getattr(info.node, "body", [])):
            if isinstance(node, ast.Return) and node.value is not None:
                return_deps = return_deps | analysis.expr_deps(node.value)
        sinks: List[SinkRecord] = []
        for kind, node, guarded in analysis.sinks():
            deps = analysis.expr_deps(guarded)
            params = frozenset(token[2:] for token in deps
                               if token.startswith("P:"))
            if not params:
                continue
            lineno = int(getattr(node, "lineno", 1))
            sinks.append(SinkRecord(
                kind=kind, lineno=lineno,
                column=int(getattr(node, "col_offset", 0)) + 1,
                params=params,
                suppressed=self._sink_suppressed(info.path, kind, lineno)))
        return FunctionSummary(return_deps=return_deps,
                               sinks=tuple(sinks))

    def _collect_secret_attrs(self, info: FunctionInfo,
                              analysis: _FunctionAnalysis) -> None:
        """Record ``self.<attr> = <concretely secret>`` assignments."""
        for node in _iter_shallow(getattr(info.node, "body", [])):
            if not isinstance(node, (ast.Assign, ast.AnnAssign,
                                     ast.AugAssign)):
                continue
            value = getattr(node, "value", None)
            if value is None:
                continue
            deps = analysis.expr_deps(value)
            if getattr(node, "lineno", 0) in analysis._annotated:
                deps = deps | _SECRET_ONLY
            if SECRET not in deps:
                continue
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    self._record_secret_attr(info, target.attr)

    # -- Pass B ---------------------------------------------------------

    def _report(self) -> Iterator[TaintFlow]:
        for qualname in sorted(self.project.functions):
            info = self.project.functions[qualname]
            yield from self._report_function(info)
        # Nested defs are not in the function table; analyze them too.
        for module in self.project.modules:
            for info in _nested_functions(self.project, module):
                yield from self._report_function(info)

    def _report_function(self, info: FunctionInfo) -> Iterator[TaintFlow]:
        analysis = _FunctionAnalysis(self, info, concrete=True)
        analysis.run()
        yield from self._in_place_flows(info, analysis)
        yield from self._lifted_flows(info, analysis)

    def _in_place_flows(self, info: FunctionInfo,
                        analysis: _FunctionAnalysis) -> Iterator[TaintFlow]:
        for kind, node, guarded in analysis.sinks():
            deps = analysis.expr_deps(guarded)
            if SECRET not in deps:
                continue
            culprit = analysis.culprit(guarded)
            if kind in BRANCH_KINDS:
                message = (f"{kind} depends on secret-tainted value "
                           f"{culprit!r}; protocol timing must not be a "
                           f"function of secret state")
            else:
                message = (f"{kind} uses secret-tainted value "
                           f"{culprit!r}; memory addressing must be "
                           f"independent of secret state")
            yield TaintFlow(
                kind=kind, path=info.path,
                line=int(getattr(node, "lineno", 1)),
                column=int(getattr(node, "col_offset", 0)) + 1,
                message=message, origin_path=info.path)

    def _lifted_flows(self, info: FunctionInfo,
                      analysis: _FunctionAnalysis) -> Iterator[TaintFlow]:
        for call in _iter_shallow(getattr(info.node, "body", [])):
            if not isinstance(call, ast.Call):
                continue
            callees = self.project.resolve_call(call, info)
            reported_families = set()
            for callee in callees:
                summary = self.summaries.get(callee.qualname)
                if summary is None or not summary.sinks:
                    continue
                mapping = analysis.argument_map(call, callee)
                secret_params = sorted(
                    param for param, argument in sorted(mapping.items())
                    if SECRET in analysis.expr_deps(argument))
                if not secret_params:
                    continue
                for sink in summary.sinks:
                    if sink.suppressed:
                        continue
                    hit = sorted(sink.params & set(secret_params))
                    if not hit:
                        continue
                    family = ("branch" if sink.kind in BRANCH_KINDS
                              else "address")
                    if family in reported_families:
                        continue
                    reported_families.add(family)
                    yield TaintFlow(
                        kind=sink.kind, path=info.path,
                        line=int(getattr(call, "lineno", 1)),
                        column=int(getattr(call, "col_offset", 0)) + 1,
                        message=(f"secret-tainted argument for parameter "
                                 f"{hit[0]!r} of {callee.name}() reaches a "
                                 f"{sink.kind} at "
                                 f"{callee.path}:{sink.lineno}; the call's "
                                 f"observable behavior depends on secret "
                                 f"state"),
                        origin_path=callee.path)


def analyze(project: Project,
            suppressions: Optional[Dict[str, SuppressionIndex]] = None
            ) -> ProgramTaint:
    """Run the whole-program taint analysis (both passes).

    ``suppressions`` lets the runner share its per-file indexes so
    definition-site sink suppressions are recorded as *used* (the
    ``--warn-unused-suppressions`` bookkeeping).
    """
    return ProgramTaint(project, suppressions=suppressions)


# ----------------------------------------------------------------------
# AST helpers
# ----------------------------------------------------------------------

def _iter_shallow(body: Sequence[ast.AST]) -> Iterator[ast.AST]:
    """Every node under ``body`` without descending into nested defs."""
    stack: List[ast.AST] = list(reversed(list(body)))
    while stack:
        node = stack.pop()
        if isinstance(node, _FUNCTION_NODES + (ast.ClassDef, ast.Lambda)):
            continue
        yield node
        children = list(ast.iter_child_nodes(node))
        stack.extend(reversed(children))


def _nested_functions(project: Project,
                      module) -> Iterator[FunctionInfo]:
    indexed = {info.node for info in project.functions.values()
               if info.module is module}
    for node in ast.walk(module.tree):
        if isinstance(node, _FUNCTION_NODES) and node not in indexed:
            arguments = node.args
            params = [a.arg for a in (arguments.posonlyargs + arguments.args
                                      + arguments.kwonlyargs)]
            yield FunctionInfo(
                qualname=f"{module.path}::<nested>.{node.name}"
                         f"@{node.lineno}",
                name=node.name, class_name=None, node=node,
                module=module, params=params)


def _binding_names_of(target: ast.AST) -> List[str]:
    names: List[str] = []
    if isinstance(target, ast.Name):
        names.append(target.id)
    elif isinstance(target, ast.Attribute):
        names.append(target.attr)
    elif isinstance(target, ast.Subscript):
        inner = target.value
        while isinstance(inner, ast.Subscript):
            inner = inner.value
        if isinstance(inner, ast.Name):
            names.append(inner.id)
        elif isinstance(inner, ast.Attribute):
            names.append(inner.attr)
    elif isinstance(target, ast.Starred):
        names.extend(_binding_names_of(target.value))
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            names.extend(_binding_names_of(element))
    return names


def _callee_name(call: ast.Call) -> Optional[str]:
    if isinstance(call.func, ast.Name):
        return call.func.id
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    return None


def _is_declassifier(value: ast.AST) -> bool:
    """Values that never make a vocabulary-named target secret."""
    if isinstance(value, ast.Constant):
        return True
    if isinstance(value, ast.Call):
        name = _callee_name(value)
        if name is None:
            return False
        return name == "len" or "encrypt" in name or name in _FRESH_RNG
    return False


def _is_computed_bound(iterable: ast.AST) -> bool:
    return (isinstance(iterable, ast.Call)
            and isinstance(iterable.func, ast.Name)
            and iterable.func.id in {"range", "len"})


def _is_none_presence_test(condition: ast.AST) -> bool:
    if isinstance(condition, ast.UnaryOp) and \
            isinstance(condition.op, ast.Not):
        return _is_none_presence_test(condition.operand)
    return (isinstance(condition, ast.Compare)
            and len(condition.ops) == 1
            and isinstance(condition.ops[0], (ast.Is, ast.IsNot))
            and any(isinstance(side, ast.Constant) and side.value is None
                    for side in (condition.left, condition.comparators[0])))


def _is_raise_only_guard(node: ast.If) -> bool:
    """``if bad: raise ...`` — a fail-stop integrity check.  The taken
    path aborts the protocol run; it does not shape a continuing trace.
    """
    if node.orelse:
        return False
    return all(isinstance(statement, ast.Raise) for statement in node.body)


def _arms_do_real_work(node: ast.IfExp) -> bool:
    """A ternary is a timing sink only when an arm performs observable
    work (a non-builtin call); pure data selection compiles to a fixed
    shape."""
    for arm in (node.body, node.orelse):
        for sub in ast.walk(arm):
            if isinstance(sub, ast.Call):
                name = _callee_name(sub)
                if name is None or name not in _PURE_BUILTINS:
                    return True
    return False
