"""SARIF 2.1.0 rendering of a lint run.

SARIF (Static Analysis Results Interchange Format) is what code-review
UIs and CI annotation steps ingest.  The document produced here is the
minimal conforming subset: one run, the full rule table in
``tool.driver.rules``, one ``result`` per finding (including LINT000
parse failures), and an ``invocation`` whose ``executionSuccessful``
mirrors the process-level outcome.  Output is fully deterministic —
fixed key order, sorted results — so ``--jobs N`` stays byte-identical
to serial and the artifact diffs cleanly between CI runs.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.lint.findings import Finding, LintResult
from repro.lint.registry import all_rules

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")

_LEVELS = {"error": "error", "warning": "warning"}


def _rule_entry(rule) -> Dict[str, object]:
    return {
        "id": rule.rule_id,
        "name": rule.title,
        "shortDescription": {"text": rule.title},
        "fullDescription": {"text": rule.rationale},
        "defaultConfiguration": {
            "level": _LEVELS.get(rule.severity.value, "error"),
        },
    }


def _result_entry(finding: Finding,
                  baselined: bool = False) -> Dict[str, object]:
    entry: Dict[str, object] = {
        "ruleId": finding.rule_id,
        "level": _LEVELS.get(finding.severity.value, "error"),
        "message": {"text": finding.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {"uri": finding.path},
                "region": {
                    "startLine": finding.line,
                    "startColumn": finding.column,
                },
            },
        }],
    }
    if baselined:
        # SARIF's own change-tracking vocabulary for "known, accepted".
        entry["baselineState"] = "unchanged"
    return entry


def to_sarif(result: LintResult) -> Dict[str, object]:
    """The SARIF document as a plain dict."""
    results: List[Dict[str, object]] = []
    for finding in result.findings:
        results.append(_result_entry(finding))
    for finding in result.baselined:
        results.append(_result_entry(finding, baselined=True))
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "reprolint",
                    "informationUri":
                        "https://example.invalid/repro/docs/lint.md",
                    "rules": [_rule_entry(rule) for rule in all_rules()],
                },
            },
            "invocations": [{
                "executionSuccessful": result.exit_code() != 2,
                "exitCode": result.exit_code(),
            }],
            "results": results,
            "columnKind": "utf16CodeUnits",
        }],
    }


def render_sarif(result: LintResult) -> str:
    return json.dumps(to_sarif(result), indent=2, sort_keys=False)
