"""Shared AST helpers for the rule implementations.

All rules reason about *identifier segments*: ``pmmac_tag`` splits into
``{"pmmac", "tag"}`` so vocabulary matching is whole-word (``mac``
matches ``link_mac`` but not ``machine``).  Dunder names are never
segmented — ``__hash__`` must not look like cryptographic material.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterator, Optional, Set


def identifier_segments(name: str) -> FrozenSet[str]:
    """Lower-cased snake_case segments of an identifier."""
    if name.startswith("__") and name.endswith("__"):
        return frozenset()
    return frozenset(segment for segment in name.lower().split("_")
                     if segment)


def node_name(node: ast.AST) -> Optional[str]:
    """The identifier a Name/Attribute/arg node carries, else None."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.arg):
        return node.arg
    return None


def dotted_name(node: ast.AST) -> Optional[str]:
    """Render a Name/Attribute chain as ``a.b.c`` (None if not a chain)."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> Optional[str]:
    """The (undotted) name of the function a call invokes."""
    return node_name(node.func)


def names_in(node: ast.AST) -> Iterator[str]:
    """Every identifier mentioned anywhere inside an expression."""
    for child in ast.walk(node):
        name = node_name(child)
        if name is not None:
            yield name


def expression_matches_vocabulary(node: ast.AST,
                                  vocabulary: FrozenSet[str]) -> Optional[str]:
    """First identifier in the expression whose segments hit ``vocabulary``.

    Used where *any* mention taints the expression (branch conditions).
    """
    for name in names_in(node):
        if identifier_segments(name) & vocabulary:
            return name
    return None


def head_identifier(node: ast.AST) -> Optional[str]:
    """The identifier that labels the *value* an expression produces.

    ``tag`` -> ``tag``; ``self.link_mac`` -> ``link_mac``;
    ``self.tag(msg)`` -> ``tag`` (a call is named by its callee);
    ``tag[0]`` / ``tag[:8]`` -> ``tag``.  Arithmetic, literals and other
    compound expressions have no head identifier.
    """
    if isinstance(node, (ast.Name, ast.Attribute)):
        return node_name(node)
    if isinstance(node, ast.Call):
        return call_name(node)
    if isinstance(node, ast.Subscript):
        return head_identifier(node.value)
    if isinstance(node, ast.Await):
        return head_identifier(node.value)
    return None


def assignment_target_names(node: ast.AST) -> Set[str]:
    """The names an assignment statement binds (or rebinds through).

    ``self.x = v`` binds ``x`` — not ``self``; ``a[i] = v`` taints ``a``
    but never the index expression.
    """
    targets = []
    if isinstance(node, ast.Assign):
        targets = node.targets
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        targets = [node.target]
    names: Set[str] = set()
    for target in targets:
        _collect_binding_names(target, names)
    return names


def _collect_binding_names(target: ast.AST, names: Set[str]) -> None:
    if isinstance(target, ast.Name):
        names.add(target.id)
    elif isinstance(target, ast.Attribute):
        names.add(target.attr)
    elif isinstance(target, ast.Subscript):
        head = head_identifier(target.value)
        if head:
            names.add(head)
    elif isinstance(target, ast.Starred):
        _collect_binding_names(target.value, names)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            _collect_binding_names(element, names)
