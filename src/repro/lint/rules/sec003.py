"""SEC003 — interprocedural secret flow into branches and loop bounds.

The whole-program successor to SEC002: the same invariant (protocol
control flow must not be a function of secret state, docs/threat_model.md
§3), enforced across function and module boundaries by the taint engine
in :mod:`repro.lint.dataflow`.  Where SEC002 sees one function at a
time, SEC003 sees two things SEC002 cannot:

* a call site whose *argument* is secret flowing into a callee that
  branches on the corresponding parameter — reported at the call site,
  citing the sink's location in the callee ("lifted" findings);
* a local branch whose condition is secret only through interprocedural
  data flow (a helper's return value, a decrypted payload threaded
  through an object attribute).

Taint sources: the secret vocabulary (``leaf``, ``plaintext``,
``secret``), ``# reprolint: secret`` annotations, and ``decrypt*``
return values (the ``crypto/`` session API).  Declassifiers: fresh RNG
draws, ``encrypt*`` results, ``len()``.  Scope matches SEC002 —
protocol layers plus the observability exporters; ``crypto/`` and the
RNG are exempt as *origins* (a sink inside them is constant-time by
their own discipline and separately screened).
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.findings import Finding
from repro.lint.registry import ProjectRule, register


@register
class InterproceduralSecretFlow(ProjectRule):
    rule_id = "SEC003"
    title = "interprocedural secret-dependent control flow"
    rationale = ("whole-program taint: secret values flowing through "
                 "calls, returns and attributes must not reach branch "
                 "conditions or loop bounds; supersedes SEC002 on "
                 "project-wide runs")
    # ``crypto/`` and the RNG are constant-time by their own discipline
    # (and are the taint *sources*); ``faults/`` is the injection
    # harness — its site-selection branches steer test campaigns, not
    # adversary-observable protocol timing.
    path_markers = ("core/", "stash", "obs/")
    exempt_markers = ("crypto/", "utils/rng", "faults/")

    def check_project(self, analysis) -> Iterator[Finding]:
        for flow in analysis.taint.flows:
            if flow.family != "branch":
                continue
            if not self.applies_to(flow.path):
                continue
            if any(marker in flow.origin_path
                   for marker in self.exempt_markers):
                continue
            yield Finding(rule_id=self.rule_id, path=flow.path,
                          line=flow.line, column=flow.column,
                          message=flow.message, severity=self.severity)
