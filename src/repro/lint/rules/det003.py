"""DET003 — cross-process determinism for the pool fan-out layers.

The sweep and serving engines promise byte-identical output for any
``--jobs`` value.  That promise survives exactly as long as three
process-boundary rules hold, and each has a syntactic shadow this rule
checks through the call graph:

* **workers must not mutate module-global state** — a pool worker runs
  in a forked/spawned child; an assignment or mutating method call on a
  module-level container silently diverges between the serial path
  (mutation visible) and the pool path (mutation lost), the classic
  "works with --jobs 1" bug;
* **workers must not read registries other code mutates** — state
  populated in the parent after pool creation may or may not be visible
  in a child depending on start method and timing;
* **results must not be folded in completion order** — an augmented
  accumulation (``total += item``) inside an ``imap_unordered`` loop
  reorders float additions (and list concatenations) by completion,
  which is the nondeterminism the submission-index merge exists to
  remove.  (DET001 flags the ``append``-without-sort shape; this rule
  flags the fold shape.)

The worker function is resolved via :mod:`repro.lint.callgraph` and its
same-module callees are inspected too, so hiding the mutation one call
deep does not evade the rule.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.callgraph import FunctionInfo, Project
from repro.lint.findings import Finding
from repro.lint.registry import ProjectRule, register

_POOL_METHODS = frozenset({"imap_unordered", "imap", "map", "map_async",
                           "starmap", "starmap_async", "apply_async"})

_MUTATING_METHODS = frozenset({"append", "add", "update", "setdefault",
                               "pop", "popitem", "extend", "insert",
                               "remove", "discard", "clear"})


def _is_pool_dispatch(call: ast.Call) -> bool:
    func = call.func
    if not isinstance(func, ast.Attribute) or \
            func.attr not in _POOL_METHODS:
        return False
    if func.attr in ("map",):
        # Require a pool-ish receiver so ``map(f, xs)``/``executor.map``
        # heuristics don't fire on the builtin.
        base = func.value
        head = ""
        while isinstance(base, ast.Attribute):
            head = base.attr
            base = base.value
        if isinstance(base, ast.Name):
            head = head or base.id
        return "pool" in head.lower()
    return True


def _worker_argument(call: ast.Call) -> Optional[ast.AST]:
    return call.args[0] if call.args else None


def _local_bindings(function: ast.AST) -> Set[str]:
    names: Set[str] = set()
    arguments = getattr(function, "args", None)
    if arguments is not None:
        for argument in (arguments.posonlyargs + arguments.args
                         + arguments.kwonlyargs):
            names.add(argument.arg)
        if arguments.vararg:
            names.add(arguments.vararg.arg)
        if arguments.kwarg:
            names.add(arguments.kwarg.arg)
    for node in ast.walk(function):
        if isinstance(node, ast.Name) and \
                isinstance(node.ctx, (ast.Store, ast.Del)):
            names.add(node.id)
        elif isinstance(node, (ast.For, ast.comprehension)):
            target = node.target
            for sub in ast.walk(target):
                if isinstance(sub, ast.Name):
                    names.add(sub.id)
    return names


def _global_mutations(function: ast.AST,
                      candidates: Set[str]) -> List[Tuple[str, int, int]]:
    """(name, line, col) for each mutation of a candidate global."""
    local = _local_bindings(function) - _globals_declared(function)
    hits: List[Tuple[str, int, int]] = []
    for node in ast.walk(function):
        name: Optional[str] = None
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                base = target
                while isinstance(base, ast.Subscript):
                    base = base.value
                if isinstance(base, ast.Name) and base.id in candidates \
                        and (base.id not in local
                             or isinstance(target, ast.Subscript)):
                    name = base.id
        elif isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute) and \
                node.func.attr in _MUTATING_METHODS and \
                isinstance(node.func.value, ast.Name):
            probed = node.func.value.id
            if probed in candidates and probed not in local:
                name = probed
        if name is not None:
            hits.append((name, int(getattr(node, "lineno", 1)),
                         int(getattr(node, "col_offset", 0)) + 1))
    return hits


def _global_reads(function: ast.AST, candidates: Set[str]) -> Set[str]:
    local = _local_bindings(function) - _globals_declared(function)
    reads: Set[str] = set()
    for node in ast.walk(function):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load) \
                and node.id in candidates and node.id not in local:
            reads.add(node.id)
    return reads


def _globals_declared(function: ast.AST) -> Set[str]:
    names: Set[str] = set()
    for node in ast.walk(function):
        if isinstance(node, (ast.Global, ast.Nonlocal)):
            names.update(node.names)
    return names


@register
class CrossProcessDeterminism(ProjectRule):
    rule_id = "DET003"
    title = "cross-process nondeterminism in pool fan-out"
    rationale = ("pool workers must re-derive everything from their "
                 "picklable task: module-global mutation is lost or "
                 "start-method-dependent in children, and folding "
                 "results in completion order breaks --jobs "
                 "byte-identity")
    path_markers = ("parallel/", "serve/")

    def check_project(self, analysis) -> Iterator[Finding]:
        project: Project = analysis.project
        for module in project.modules:
            if not self.applies_to(module.path):
                continue
            yield from self._check_module(project, module)

    def _check_module(self, project: Project, module) -> Iterator[Finding]:
        for info in sorted((f for f in project.functions.values()
                            if f.module is module),
                           key=lambda f: f.qualname):
            for call in ast.walk(info.node):
                if not isinstance(call, ast.Call):
                    continue
                if _is_pool_dispatch(call):
                    yield from self._check_worker(project, module,
                                                 info, call)
                yield from self._check_fold(info, call)

    # -- worker-side checks --------------------------------------------

    def _check_worker(self, project: Project, module, caller: FunctionInfo,
                      call: ast.Call) -> Iterator[Finding]:
        worker_expr = _worker_argument(call)
        if worker_expr is None:
            return
        probe = ast.Call(func=worker_expr, args=[], keywords=[])
        ast.copy_location(probe, call)
        workers = project.resolve_call(probe, caller)
        if not workers:
            return
        dispatch_line = int(getattr(call, "lineno", 1))
        dispatch_col = int(getattr(call, "col_offset", 0)) + 1
        for worker in workers:
            yield from self._check_worker_body(project, worker,
                                               dispatch_line, dispatch_col,
                                               caller)

    def _check_worker_body(self, project: Project, worker: FunctionInfo,
                           dispatch_line: int, dispatch_col: int,
                           caller: FunctionInfo) -> Iterator[Finding]:
        home = worker.module
        mutable = project.module_mutable_globals.get(home.path, set())
        everything = project.module_globals.get(home.path, set())
        # The worker plus its same-module callees (one shape of hiding).
        bodies = [worker]
        for callee in project.reachable_from(worker, max_functions=50):
            if callee.module is home and callee is not worker:
                bodies.append(callee)
        mutated_elsewhere = self._module_mutation_map(project, home,
                                                     mutable,
                                                     exclude=bodies)
        seen: Set[Tuple[str, str]] = set()
        for body in bodies:
            for name, line, _col in _global_mutations(body.node,
                                                      everything):
                key = ("mutates", name)
                if key in seen:
                    continue
                seen.add(key)
                yield Finding(
                    rule_id=self.rule_id, path=caller.path,
                    line=dispatch_line, column=dispatch_col,
                    message=(f"pool worker {worker.name}() mutates "
                             f"module-global {name!r} (at "
                             f"{body.path}:{line}); the mutation is "
                             f"lost in child processes and diverges "
                             f"from the serial path"),
                    severity=self.severity)
            for name in sorted(_global_reads(body.node,
                                             set(mutated_elsewhere))):
                key = ("reads", name)
                if key in seen:
                    continue
                seen.add(key)
                where = mutated_elsewhere[name]
                yield Finding(
                    rule_id=self.rule_id, path=caller.path,
                    line=dispatch_line, column=dispatch_col,
                    message=(f"pool worker {worker.name}() reads "
                             f"module-global {name!r}, which "
                             f"{where} mutates; child visibility "
                             f"depends on pool start method and "
                             f"timing"),
                    severity=self.severity)

    @staticmethod
    def _module_mutation_map(project: Project, module, mutable: Set[str],
                             exclude: List[FunctionInfo]
                             ) -> Dict[str, str]:
        excluded = {info.qualname for info in exclude}
        mutators: Dict[str, str] = {}
        for info in sorted((f for f in project.functions.values()
                            if f.module is module),
                           key=lambda f: f.qualname):
            if info.qualname in excluded:
                continue
            for name, _line, _col in _global_mutations(info.node, mutable):
                mutators.setdefault(name, f"{info.name}()")
        return mutators

    # -- caller-side fold check ----------------------------------------

    def _check_fold(self, info: FunctionInfo,
                    call: ast.Call) -> Iterator[Finding]:
        """Flag augmented folds inside an ``imap_unordered`` loop."""
        if not (isinstance(call.func, ast.Attribute)
                and call.func.attr == "imap_unordered"):
            return
        for loop in ast.walk(info.node):
            if not isinstance(loop, ast.For):
                continue
            if loop.iter is not call:
                continue
            loop_names = {node.id for node in ast.walk(loop.target)
                          if isinstance(node, ast.Name)}
            for node in ast.walk(loop):
                if not isinstance(node, ast.AugAssign):
                    continue
                value_names = {sub.id for sub in ast.walk(node.value)
                               if isinstance(sub, ast.Name)}
                if not (value_names & loop_names):
                    continue
                yield Finding(
                    rule_id=self.rule_id, path=info.path,
                    line=int(getattr(node, "lineno", 1)),
                    column=int(getattr(node, "col_offset", 0)) + 1,
                    message=("result folded with an augmented "
                             "assignment in imap_unordered completion "
                             "order; accumulate by submission index "
                             "and fold after a sorted merge"),
                    severity=self.severity)
