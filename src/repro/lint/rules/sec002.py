"""SEC002 — secret-dependent control flow in protocol handlers.

The Secure DIMM security argument (docs/threat_model.md §3) requires
that the CPU<->buffer message sequence and the buffer<->DRAM command
stream be *shapes* fixed by the protocol — never functions of secret
state.  A branch or loop bound that depends on a leaf ID, a tag, or
stash contents changes instruction timing and message timing with the
secret, which the bus-level adversary observes directly.  MP-SPDZ and
friends make secret-dependent branching a compile-time error; this rule
is the lightweight equivalent for this codebase.

Heuristic taint analysis, per function:

* seeds — any identifier (parameter, local, attribute) whose segments
  hit the secret vocabulary (``leaf``, ``plaintext``, ``secret`` …),
  plus anything annotated ``# reprolint: secret`` on its assignment line;
* propagation — a simple assignment whose right side mentions a tainted
  name taints the bound names (one forward pass per function, repeated
  to a fixpoint);
* sinks — ``if`` / ``while`` / ternary conditions and ``range()`` loop
  bounds mentioning a tainted name anywhere.

Scoped to the protocol layers (``core/``, ``oram/stash.py``) and the
observability subsystem (``obs/``): the former are the state machines
whose timing an adversary can clock; the latter exports traces, where a
secret-tainted branch would mean event *presence* depends on secrets
(and its payloads are separately screened by
:func:`repro.obs.audit.scan_secret_args`).  Trusted on-chip logic whose
timing provably never reaches a bus may suppress with a justification.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Set

from repro.lint.findings import Finding
from repro.lint.registry import FileContext, Rule, register
from repro.lint.rules.common import (assignment_target_names,
                                     identifier_segments, names_in)

_SECRET_VOCABULARY = frozenset({
    "leaf", "leaves", "plaintext", "plaintexts",
    "secret", "secrets",
})

_SECRET_ANNOTATION = re.compile(r"#\s*reprolint:\s*secret\b")


def _vocabulary_hit(name: str) -> bool:
    return bool(identifier_segments(name) & _SECRET_VOCABULARY)


def _is_computed_bound(iterable: ast.AST) -> bool:
    return (isinstance(iterable, ast.Call)
            and isinstance(iterable.func, ast.Name)
            and iterable.func.id in {"range", "len"})


def _is_none_presence_test(condition: ast.AST) -> bool:
    """``x is None`` / ``x is not None`` checks argument *presence*, not
    secret content — a different (and here untainted) signal."""
    if isinstance(condition, ast.UnaryOp) and isinstance(condition.op,
                                                         ast.Not):
        return _is_none_presence_test(condition.operand)
    return (isinstance(condition, ast.Compare)
            and len(condition.ops) == 1
            and isinstance(condition.ops[0], (ast.Is, ast.IsNot))
            and any(isinstance(side, ast.Constant) and side.value is None
                    for side in (condition.left, condition.comparators[0])))


@register
class SecretDependentBranch(Rule):
    rule_id = "SEC002"
    title = "secret-dependent branch or loop bound (per-function)"
    rationale = ("control flow conditioned on leaf IDs, plaintext or other "
                 "secret state modulates observable timing; restructure to "
                 "a fixed shape or justify a suppression")
    path_markers = ("core/", "stash", "obs/")
    # SEC003 runs the same invariant whole-program; on project runs with
    # SEC003 active the runner skips SEC002 so one defect is one finding.
    # Single-file runs (lint_source) and explicit --select still use it.
    superseded_by = "SEC003"

    def check(self, context: FileContext) -> Iterator[Finding]:
        annotated = self._annotated_lines(context)
        for node in ast.walk(context.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(context, node, annotated)

    @staticmethod
    def _annotated_lines(context: FileContext) -> Set[int]:
        lines = set()
        for lineno, line in enumerate(context.lines, start=1):
            if _SECRET_ANNOTATION.search(line):
                lines.add(lineno)
        return lines

    def _check_function(self, context: FileContext, function: ast.AST,
                        annotated: Set[int]) -> Iterator[Finding]:
        tainted = self._taint(function, annotated)
        if not tainted:
            return
        body = getattr(function, "body", [])
        for statement in body:
            for node in ast.walk(statement):
                # Nested defs run their own analysis.
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                condition = None
                kind = None
                if isinstance(node, (ast.If, ast.While)):
                    condition, kind = node.test, "branch condition"
                elif isinstance(node, ast.IfExp):
                    condition, kind = node.test, "conditional expression"
                elif isinstance(node, ast.For):
                    # Iterating a fixed-length structure (an ORAM path is
                    # always `levels` long) has a fixed shape; only an
                    # explicitly computed bound — range()/len() over
                    # tainted values — varies the trip count.
                    if _is_computed_bound(node.iter):
                        condition, kind = node.iter, "loop bound"
                if condition is None or _is_none_presence_test(condition):
                    continue
                culprit = self._tainted_name(condition, tainted)
                if culprit:
                    yield self.finding(
                        context, node,
                        f"{kind} depends on secret-tainted value "
                        f"{culprit!r}; protocol timing must not be a "
                        f"function of secret state")

    @staticmethod
    def _tainted_name(expression: ast.AST, tainted: Set[str]) -> str:
        for name in names_in(expression):
            if name in tainted or _vocabulary_hit(name):
                return name
        return ""

    @staticmethod
    def _taint(function: ast.AST, annotated: Set[int]) -> Set[str]:
        """Forward may-taint over plain assignments, to a fixpoint."""
        tainted: Set[str] = set()
        for argument in ast.walk(getattr(function, "args", ast.arguments(
                posonlyargs=[], args=[], kwonlyargs=[], kw_defaults=[],
                defaults=[]))):
            if isinstance(argument, ast.arg) and _vocabulary_hit(argument.arg):
                tainted.add(argument.arg)
        statements = [node for statement in getattr(function, "body", [])
                      for node in ast.walk(statement)
                      if isinstance(node, (ast.Assign, ast.AugAssign,
                                           ast.AnnAssign))]
        changed = True
        while changed:
            changed = False
            for statement in statements:
                value = getattr(statement, "value", None)
                if value is None:
                    continue
                source_tainted = (
                    statement.lineno in annotated or
                    any(name in tainted or _vocabulary_hit(name)
                        for name in names_in(value)))
                if not source_tainted:
                    continue
                for target in assignment_target_names(statement):
                    if target not in tainted:
                        tainted.add(target)
                        changed = True
        return tainted
