"""Bundled reprolint rules; importing this package registers them all."""

from repro.lint.rules import det001, det002, sec001, sec002  # noqa: F401
