"""Bundled reprolint rules; importing this package registers them all."""

from repro.lint.rules import (det001, det002, det003, meta,  # noqa: F401
                              sec001, sec002, sec003, sec004)
