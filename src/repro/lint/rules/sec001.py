"""SEC001 — non-constant-time comparison of authenticator material.

``==`` / ``!=`` on byte strings short-circuits at the first differing
byte, so the time a MAC/hash verification takes reveals how much of the
forged tag was correct — the classic remote timing oracle (e.g. the
Xbox 360 boot hack and CVE-2009-0696-era HMAC bypasses).  An adversary
with a logic analyzer on the link, which is exactly Secure DIMM's threat
model, gets that timing for free.  Verification of tags, MACs, digests
and derived secrets must go through :func:`hmac.compare_digest`.

The heuristic: flag an equality comparison when either operand's *head*
identifier (the name labelling the value, see
:func:`repro.lint.rules.common.head_identifier`) contains a secret-ish
segment — ``tag``, ``mac``, ``digest``, ``hash``, ``secret`` … .  Using
the head identifier rather than any mention keeps ``len(tag) != 8``
(a length check, constant time) out of scope.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding
from repro.lint.registry import FileContext, Rule, register
from repro.lint.rules.common import head_identifier, identifier_segments

_SECRET_SEGMENTS = frozenset({
    "tag", "tags", "mac", "macs", "pmmac", "hmac",
    "digest", "digests", "hash", "hashes",
    "secret", "secrets", "signature", "signatures", "sig",
})


def _secret_operand(node: ast.AST) -> str:
    name = head_identifier(node)
    if name and identifier_segments(name) & _SECRET_SEGMENTS:
        return name
    return ""


@register
class NonConstantTimeComparison(Rule):
    rule_id = "SEC001"
    title = "non-constant-time comparison of secret material"
    rationale = ("== / != on tags, MACs, digests or secrets leaks a "
                 "byte-position timing oracle; use hmac.compare_digest")

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                culprit = _secret_operand(left) or _secret_operand(right)
                # A length/sentinel check is not a content comparison.
                if culprit and not _compares_sentinel(left, right):
                    yield self.finding(
                        context, node,
                        f"comparison of {culprit!r} with "
                        f"{'!=' if isinstance(op, ast.NotEq) else '=='} is "
                        f"not constant-time; use hmac.compare_digest()")


def _compares_sentinel(left: ast.AST, right: ast.AST) -> bool:
    """True when one side is a public sentinel, not secret content.

    Covers non-bytes literals (``hash_checks == 0``) and the ALL_CAPS
    module-constant convention (``tag != DUMMY_TAG`` — an ORAM slot
    occupancy tag against a published dummy marker, not MAC material).
    """
    for side in (left, right):
        if isinstance(side, ast.Constant) and not isinstance(side.value, bytes):
            return True
        name = head_identifier(side)
        if (name and not isinstance(side, ast.Call)
                and name.upper() == name and any(c.isalpha() for c in name)):
            return True
    return False
