"""DET001 — ambient nondeterminism that breaks reproducibility.

The whole test strategy of this repository — golden-master cycle counts,
byte-identical link traces, cross-tier equivalence — depends on every
run of ``run_simulation(config, seed=...)`` being bit-for-bit identical.
One ``time.time()`` in a hot path or one iteration over an unordered
``set`` silently forks histories between runs (and between Python
builds, since set ordering keys on hash randomization for str/bytes).

Flagged sources:

* wall-clock reads — ``time.time`` / ``monotonic`` / ``perf_counter``,
  ``datetime.now`` / ``utcnow`` / ``today``;
* ambient entropy — ``os.urandom``, ``uuid.uuid1/uuid4``,
  ``secrets.*``, and the *module-level* ``random.*`` functions (the
  process-global generator any import can reseed or advance).
  ``random.Random(seed)`` instances are fine — that is what
  ``utils/rng.py`` wraps;
* unordered iteration — ``for … in`` over a set literal, set
  comprehension or ``set(...)`` call, including comprehension
  generators, and ``list(set(...))`` / ``tuple(set(...))``
  materialization.  Sort first: ``sorted(set(...))``;
* order-dependent pool consumption — ``pool.imap_unordered`` results
  arrive in *completion* order, which depends on host scheduling.
  Flagged: ``list(...)`` / ``tuple(...)`` materialization of an
  ``imap_unordered`` call, and ``for`` loops over one whose body
  appends to a list the enclosing scope never passes through
  ``sorted(...)``.  Index-keyed merges (``slots[index] = payload``) and
  append-then-``sorted`` pipelines — the pattern
  :mod:`repro.parallel.sweep` uses — are order-independent and pass.

``utils/rng.py`` (the sanctioned wrapper) and ``crypto/`` (keyed PRFs,
deterministic by construction; a future hardware backend may genuinely
need entropy) are exempt by path.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.findings import Finding
from repro.lint.registry import FileContext, Rule, register
from repro.lint.rules.common import dotted_name

_CLOCK_SUFFIXES = (
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "datetime.now", "datetime.utcnow", "datetime.today", "date.today",
)
_ENTROPY_SUFFIXES = (
    "os.urandom", "uuid.uuid1", "uuid.uuid4",
    "secrets.token_bytes", "secrets.token_hex", "secrets.token_urlsafe",
    "secrets.randbelow", "secrets.choice", "secrets.randbits",
)
_RANDOM_MODULE_ALLOWED = frozenset({"Random", "seed", "getstate", "setstate"})


def _is_set_expression(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id in {"set", "frozenset"})


def _is_imap_unordered(node: ast.AST) -> bool:
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "imap_unordered")


_SCOPES = (ast.FunctionDef, ast.AsyncFunctionDef)


def _scope_nodes(scope: ast.AST) -> Iterator[ast.AST]:
    """All nodes of ``scope`` without descending into nested functions."""
    stack = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, _SCOPES):
            stack.extend(ast.iter_child_nodes(node))


def _appended_names(loop: ast.For) -> set:
    """Names of lists the loop body grows via ``name.append(...)``."""
    names = set()
    for body_node in loop.body:
        for node in ast.walk(body_node):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in {"append", "extend"}
                    and isinstance(node.func.value, ast.Name)):
                names.add(node.func.value.id)
    return names


def _sorted_names(scope_nodes) -> set:
    """Names that appear as the first argument of a ``sorted(...)`` call."""
    names = set()
    for node in scope_nodes:
        if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
                and node.func.id == "sorted" and node.args
                and isinstance(node.args[0], ast.Name)):
            names.add(node.args[0].id)
    return names


@register
class NondeterminismSource(Rule):
    rule_id = "DET001"
    title = "ambient nondeterminism source"
    rationale = ("wall clocks, ambient entropy and unordered set iteration "
                 "break golden-master and trace reproducibility; route all "
                 "randomness through utils/rng.py and sort before iterating")
    exempt_markers = ("utils/rng", "crypto/")

    def check(self, context: FileContext) -> Iterator[Finding]:
        yield from self._check_pool_consumption(context)
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Call):
                message = self._call_message(node)
                if message:
                    yield self.finding(context, node, message)
            elif isinstance(node, ast.For):
                if _is_set_expression(node.iter):
                    yield self.finding(
                        context, node,
                        "iteration over an unordered set is "
                        "nondeterministic across runs; sort first "
                        "(sorted(...))")
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                for generator in node.generators:
                    if _is_set_expression(generator.iter):
                        yield self.finding(
                            context, node,
                            "comprehension over an unordered set is "
                            "nondeterministic across runs; sort first "
                            "(sorted(...))")

    def _call_message(self, node: ast.Call) -> Optional[str]:
        dotted = dotted_name(node.func)
        if dotted is None:
            return None
        for suffix in _CLOCK_SUFFIXES:
            if dotted == suffix or dotted.endswith("." + suffix):
                return (f"wall-clock read {dotted}() makes runs "
                        f"irreproducible; derive timestamps from the "
                        f"simulation clock or pass them in")
        for suffix in _ENTROPY_SUFFIXES:
            if dotted == suffix or dotted.endswith("." + suffix):
                return (f"ambient entropy {dotted}() is unseedable; use a "
                        f"DeterministicRng stream from utils/rng.py")
        parts = dotted.split(".")
        if (len(parts) == 2 and parts[0] == "random"
                and parts[1] not in _RANDOM_MODULE_ALLOWED):
            return (f"module-level {dotted}() uses the process-global "
                    f"generator; use a DeterministicRng stream from "
                    f"utils/rng.py")
        if (isinstance(node.func, ast.Name)
                and node.func.id in {"list", "tuple"} and node.args
                and _is_set_expression(node.args[0])):
            return (f"{node.func.id}(set(...)) materializes unordered "
                    f"elements; use sorted(...) for a stable order")
        if (isinstance(node.func, ast.Name)
                and node.func.id in {"list", "tuple"} and node.args
                and _is_imap_unordered(node.args[0])):
            return (f"{node.func.id}(imap_unordered(...)) captures pool "
                    f"completion order, which depends on host scheduling; "
                    f"carry a submission index and sorted(...) the results")
        return None

    def _check_pool_consumption(self,
                                context: FileContext) -> Iterator[Finding]:
        """Flag ``for`` loops that consume imap_unordered order-dependently.

        A loop is order-independent when its appends feed an accumulator
        the same scope later re-orders with ``sorted(...)``, or when it
        merges by subscript (``slots[index] = ...``) — only unsorted
        appends leak completion order into results.
        """
        scopes = [context.tree] + [
            node for node in ast.walk(context.tree)
            if isinstance(node, _SCOPES)]
        for scope in scopes:
            nodes = list(_scope_nodes(scope))
            sorted_names = _sorted_names(nodes)
            for node in nodes:
                if not isinstance(node, ast.For):
                    continue
                if not _is_imap_unordered(node.iter):
                    continue
                unsorted = _appended_names(node) - sorted_names
                if unsorted:
                    accumulators = ", ".join(sorted(unsorted))
                    yield self.finding(
                        context, node,
                        f"loop over imap_unordered() appends to "
                        f"'{accumulators}' in completion order and the "
                        f"result is never re-ordered; carry a submission "
                        f"index and sorted(...) before use")
