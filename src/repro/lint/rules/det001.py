"""DET001 — ambient nondeterminism that breaks reproducibility.

The whole test strategy of this repository — golden-master cycle counts,
byte-identical link traces, cross-tier equivalence — depends on every
run of ``run_simulation(config, seed=...)`` being bit-for-bit identical.
One ``time.time()`` in a hot path or one iteration over an unordered
``set`` silently forks histories between runs (and between Python
builds, since set ordering keys on hash randomization for str/bytes).

Flagged sources:

* wall-clock reads — ``time.time`` / ``monotonic`` / ``perf_counter``,
  ``datetime.now`` / ``utcnow`` / ``today``;
* ambient entropy — ``os.urandom``, ``uuid.uuid1/uuid4``,
  ``secrets.*``, and the *module-level* ``random.*`` functions (the
  process-global generator any import can reseed or advance).
  ``random.Random(seed)`` instances are fine — that is what
  ``utils/rng.py`` wraps;
* unordered iteration — ``for … in`` over a set literal, set
  comprehension or ``set(...)`` call, including comprehension
  generators, and ``list(set(...))`` / ``tuple(set(...))``
  materialization.  Sort first: ``sorted(set(...))``.

``utils/rng.py`` (the sanctioned wrapper) and ``crypto/`` (keyed PRFs,
deterministic by construction; a future hardware backend may genuinely
need entropy) are exempt by path.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.findings import Finding
from repro.lint.registry import FileContext, Rule, register
from repro.lint.rules.common import dotted_name

_CLOCK_SUFFIXES = (
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "datetime.now", "datetime.utcnow", "datetime.today", "date.today",
)
_ENTROPY_SUFFIXES = (
    "os.urandom", "uuid.uuid1", "uuid.uuid4",
    "secrets.token_bytes", "secrets.token_hex", "secrets.token_urlsafe",
    "secrets.randbelow", "secrets.choice", "secrets.randbits",
)
_RANDOM_MODULE_ALLOWED = frozenset({"Random", "seed", "getstate", "setstate"})


def _is_set_expression(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id in {"set", "frozenset"})


@register
class NondeterminismSource(Rule):
    rule_id = "DET001"
    title = "ambient nondeterminism source"
    rationale = ("wall clocks, ambient entropy and unordered set iteration "
                 "break golden-master and trace reproducibility; route all "
                 "randomness through utils/rng.py and sort before iterating")
    exempt_markers = ("utils/rng", "crypto/")

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Call):
                message = self._call_message(node)
                if message:
                    yield self.finding(context, node, message)
            elif isinstance(node, ast.For):
                if _is_set_expression(node.iter):
                    yield self.finding(
                        context, node,
                        "iteration over an unordered set is "
                        "nondeterministic across runs; sort first "
                        "(sorted(...))")
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                for generator in node.generators:
                    if _is_set_expression(generator.iter):
                        yield self.finding(
                            context, node,
                            "comprehension over an unordered set is "
                            "nondeterministic across runs; sort first "
                            "(sorted(...))")

    def _call_message(self, node: ast.Call) -> Optional[str]:
        dotted = dotted_name(node.func)
        if dotted is None:
            return None
        for suffix in _CLOCK_SUFFIXES:
            if dotted == suffix or dotted.endswith("." + suffix):
                return (f"wall-clock read {dotted}() makes runs "
                        f"irreproducible; derive timestamps from the "
                        f"simulation clock or pass them in")
        for suffix in _ENTROPY_SUFFIXES:
            if dotted == suffix or dotted.endswith("." + suffix):
                return (f"ambient entropy {dotted}() is unseedable; use a "
                        f"DeterministicRng stream from utils/rng.py")
        parts = dotted.split(".")
        if (len(parts) == 2 and parts[0] == "random"
                and parts[1] not in _RANDOM_MODULE_ALLOWED):
            return (f"module-level {dotted}() uses the process-global "
                    f"generator; use a DeterministicRng stream from "
                    f"utils/rng.py")
        if (isinstance(node.func, ast.Name)
                and node.func.id in {"list", "tuple"} and node.args
                and _is_set_expression(node.args[0])):
            return (f"{node.func.id}(set(...)) materializes unordered "
                    f"elements; use sorted(...) for a stable order")
        return None
