"""SEC004 — obliviousness of memory addressing on the stash/bucket path.

Secure DIMM's access-pattern argument is not only about branches: a
*data-dependent address* leaks through the same bus the branch-timing
rule protects.  The classic failures are a subscript indexed by a
secret (``table[leaf]``), a ``dict``/``set`` membership probe keyed by
one (``if leaf in occupied:`` — hash-bucket access patterns follow the
key), and loop bounds already covered by SEC003.

Scope is deliberately the *hot structures* only — stash and bucket
code.  ORAM path selection by leaf (``core/``) is exactly the part of
the address stream the protocol reveals by design (the randomized path
is public; the *position map* binding is the secret), so flagging it
would make the rule unusable.  Inside the stash and bucket containers,
though, addressing must be oblivious: real implementations scan every
slot; an index or membership shortcut keyed on secret state is a leak.

Sinks and sources come from the same interprocedural engine as SEC003
(:mod:`repro.lint.dataflow`), so a secret index reached through a call
chain is caught at the call site.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.findings import Finding
from repro.lint.registry import ProjectRule, register


@register
class NonObliviousAddressing(ProjectRule):
    rule_id = "SEC004"
    title = "secret-dependent memory addressing"
    rationale = ("subscript indices and membership probes on the "
                 "stash/bucket hot path must not depend on secret "
                 "state; hash-bucket and index access patterns are "
                 "observable")
    path_markers = ("stash", "bucket")
    exempt_markers = ("crypto/", "utils/rng", "faults/")

    def check_project(self, analysis) -> Iterator[Finding]:
        for flow in analysis.taint.flows:
            if flow.family != "address":
                continue
            if not self.applies_to(flow.path):
                continue
            if any(marker in flow.origin_path
                   for marker in self.exempt_markers):
                continue
            yield Finding(rule_id=self.rule_id, path=flow.path,
                          line=flow.line, column=flow.column,
                          message=flow.message, severity=self.severity)
