"""DET002 — float arithmetic leaking into cycle accounting.

Cycle counters are the simulator's ground truth: golden-master tests
pin exact ``execution_cycles`` values, and the paper's figures are
ratios of them.  IEEE-754 doubles hold integers exactly only up to
2^53, and a single true division (``/``) or float literal turns an
exact counter into an approximate one whose rounding can differ across
platforms and refactorings — cycle counts that are *almost* right are
far harder to debug than ones that are exactly wrong.

Flagged: an assignment (``=``, ``+=``, annotated) or call keyword whose
target/parameter is named ``*_cycle`` / ``*_cycles`` (or exactly
``cycle`` / ``cycles``) and whose value expression syntactically
contains a float literal, a true division ``/``, or a ``float(...)``
call.  Use ``//``, integer multiplies, or convert at the *reporting*
boundary instead (``stats.py`` reports means as floats — that is the
right place).

Scoped to the timing-critical layers: ``sim/`` and ``dram/``.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from repro.lint.findings import Finding
from repro.lint.registry import FileContext, Rule, register


def _is_cycle_name(name: Optional[str]) -> bool:
    if not name:
        return False
    lowered = name.lower()
    return (lowered in {"cycle", "cycles"} or
            lowered.endswith("_cycle") or lowered.endswith("_cycles"))


def _float_taint(value: ast.AST) -> Optional[str]:
    """Why the expression may produce a float, or None if it cannot."""
    for node in ast.walk(value):
        if isinstance(node, ast.Constant) and isinstance(node.value, float):
            return f"float literal {node.value!r}"
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
            return "true division '/'"
        if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
                and node.func.id == "float"):
            return "float() conversion"
    return None


@register
class FloatCycleAccounting(Rule):
    rule_id = "DET002"
    title = "float arithmetic in cycle accounting"
    rationale = ("cycle counters must stay exact integers; floats "
                 "accumulate rounding that breaks golden-master counts — "
                 "use // and convert only at the reporting boundary")
    path_markers = ("sim/", "dram/")

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            for target_name, value in self._cycle_bindings(node):
                taint = _float_taint(value)
                if taint:
                    yield self.finding(
                        context, node,
                        f"{target_name!r} is assigned from an expression "
                        f"containing {taint}; cycle accounting must use "
                        f"integer arithmetic (// instead of /)")

    @staticmethod
    def _cycle_bindings(node: ast.AST) -> List[Tuple[str, ast.AST]]:
        """(cycle-named target, value expression) pairs bound by ``node``."""
        bindings: List[Tuple[str, ast.AST]] = []
        if isinstance(node, ast.Assign) and node.value is not None:
            for target in node.targets:
                name = _binding_name(target)
                if _is_cycle_name(name):
                    bindings.append((name, node.value))
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            if node.value is not None:
                name = _binding_name(node.target)
                if _is_cycle_name(name):
                    bindings.append((name, node.value))
        elif isinstance(node, ast.Call):
            for keyword in node.keywords:
                if keyword.arg and _is_cycle_name(keyword.arg):
                    bindings.append((keyword.arg, keyword.value))
        return bindings


def _binding_name(target: ast.AST) -> Optional[str]:
    if isinstance(target, ast.Name):
        return target.id
    if isinstance(target, ast.Attribute):
        return target.attr
    return None
