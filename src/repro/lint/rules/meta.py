"""LINT000/LINT001 — findings about the lint run itself.

Both are *synthetic*: the runner produces them (a rule cannot analyze a
file that failed to parse, and only the runner knows which directives
ended up suppressing nothing).  The classes exist so the ids are
registered, documented in ``--list-rules``, selectable, and carry the
severities the runner attaches.

* **LINT000** — a file the runner could not analyze (unreadable bytes,
  undecodable encoding, syntax error).  Reported as a structured
  finding with the failing path and line instead of a traceback, so one
  broken file degrades the run instead of aborting it.  LINT000
  findings bypass suppression directives: silencing "this file cannot
  be checked" would silence every rule at once.
* **LINT001** — a ``# reprolint: disable=...`` directive that
  suppressed nothing (emitted under ``--warn-unused-suppressions``).
  Stale suppressions are latent holes: the code they excused is gone,
  but the silence stays and will mask the next real finding on that
  line.
"""

from __future__ import annotations

from repro.lint.findings import Severity
from repro.lint.registry import Rule, register


@register
class UnanalyzableFile(Rule):
    rule_id = "LINT000"
    title = "file could not be analyzed"
    rationale = ("an unreadable or syntactically invalid file may hide "
                 "arbitrarily many violations; the runner reports it as "
                 "a structured finding and exits 2")
    severity = Severity.ERROR
    synthetic = True

    def check(self, context):
        return iter(())


@register
class UnusedSuppression(Rule):
    rule_id = "LINT001"
    title = "suppression directive suppresses nothing"
    rationale = ("a stale disable= comment is a latent hole: the code "
                 "it excused is gone but the silence remains; emitted "
                 "under --warn-unused-suppressions")
    severity = Severity.WARNING
    synthetic = True

    def check(self, context):
        return iter(())
