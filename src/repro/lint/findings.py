"""Finding and result types shared by every reprolint rule.

A :class:`Finding` is one diagnostic pinned to a (file, line, column);
a :class:`LintResult` is what one invocation of the runner produces —
the findings that survived suppression plus any files it could not
analyze at all (unreadable or syntactically invalid).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List


class Severity(Enum):
    """How bad a finding is, mirrored into the JSON output verbatim."""

    ERROR = "error"        # violates a security/determinism invariant
    WARNING = "warning"    # suspicious; likely fine but needs a look

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by one rule at one source location."""

    rule_id: str
    path: str
    line: int
    column: int
    message: str
    severity: Severity = Severity.ERROR

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "severity": self.severity.value,
            "message": self.message,
        }

    def render(self) -> str:
        return (f"{self.path}:{self.line}:{self.column}: "
                f"{self.rule_id} [{self.severity.value}] {self.message}")


@dataclass(frozen=True)
class LintError:
    """A file the runner could not analyze (I/O or syntax error)."""

    path: str
    message: str

    def to_dict(self) -> Dict[str, object]:
        return {"path": self.path, "message": self.message}

    def render(self) -> str:
        return f"{self.path}: error: {self.message}"


@dataclass
class LintResult:
    """Everything one lint run produced, before formatting.

    ``baselined`` holds findings matched by a committed baseline file
    (``--baseline``): still known defects, but not regressions — they
    are reported separately and do not affect the exit code.
    """

    findings: List[Finding] = field(default_factory=list)
    errors: List[LintError] = field(default_factory=list)
    files_checked: int = 0
    suppressed_count: int = 0
    baselined: List[Finding] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings and not self.errors

    def exit_code(self) -> int:
        """Stable exit codes: 0 clean, 1 findings, 2 analysis errors.

        Analysis errors dominate findings because a file that cannot be
        parsed may hide arbitrarily many violations.
        """
        if self.errors:
            return 2
        if self.findings:
            return 1
        return 0
