"""Trace records: the L1-miss stream fed to the cycle-level simulator.

A record is (gap, line address, is_write): ``gap`` is the number of CPU
cycles of useful work between the previous L1 miss and this one (the
in-order core of Table II retires roughly one instruction per cycle, so
instruction gaps and cycle gaps coincide).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List


@dataclass(frozen=True)
class TraceRecord:
    """One L1-miss event."""

    gap_cycles: int
    line_address: int
    is_write: bool

    def __post_init__(self):
        if self.gap_cycles < 0:
            raise ValueError("gap must be non-negative")
        if self.line_address < 0:
            raise ValueError("address must be non-negative")


def save_trace(records: Iterable[TraceRecord], path: str) -> int:
    """Write records as `gap address r|w` lines; returns the record count."""
    count = 0
    with open(path, "w") as handle:
        for record in records:
            kind = "w" if record.is_write else "r"
            handle.write(f"{record.gap_cycles} {record.line_address:x} "
                         f"{kind}\n")
            count += 1
    return count


def load_trace(path: str) -> List[TraceRecord]:
    """Read a trace written by :func:`save_trace`.

    Raises:
        ValueError: on malformed lines.
    """
    records = []
    with open(path) as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 3 or parts[2] not in ("r", "w"):
                raise ValueError(f"{path}:{line_number}: malformed trace "
                                 f"line {line!r}")
            records.append(TraceRecord(int(parts[0]), int(parts[1], 16),
                                       parts[2] == "w"))
    return records
