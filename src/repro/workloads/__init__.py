"""Synthetic memory-trace generation (the Simics/SPEC 2006 substitute).

The paper drives USIMM with L1-miss traces of ten SPEC 2006 benchmarks
captured in Simics.  Those traces are not redistributable, so this package
generates synthetic L1-miss streams from parametric profiles that preserve
the properties the evaluation depends on: footprint (LLC hit rate),
spatial/temporal locality, write fraction, memory-level parallelism, and
inter-miss gaps.  :mod:`repro.workloads.spec` defines ten named profiles
with MLP/locality settings matching the paper's narrative (gromacs and
omnetpp are high-MLP and favour INDEP; GemsFDTD is latency-bound and
favours SPLIT).
"""

from repro.workloads.spec import SPEC_PROFILES, WorkloadProfile, get_profile
from repro.workloads.trace import TraceRecord, load_trace, save_trace
from repro.workloads.synthetic import generate_trace

__all__ = [
    "SPEC_PROFILES",
    "TraceRecord",
    "WorkloadProfile",
    "generate_trace",
    "get_profile",
    "load_trace",
    "save_trace",
]
