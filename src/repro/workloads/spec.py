"""Ten SPEC 2006-like workload profiles.

Each profile parameterizes the synthetic generator so the resulting miss
stream exhibits the benchmark's published memory behaviour at the level the
evaluation is sensitive to.  The settings encode the paper's own
characterization where it gives one: gromacs and omnetpp "have high levels
of memory-level parallelism [and] do better with the Indep-4 protocol";
GemsFDTD "benefit[s] more from low latency and the SPLIT-4 protocol".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class WorkloadProfile:
    """Generator knobs for one benchmark-like miss stream."""

    name: str
    #: bytes of distinct memory the trace touches (>> 2 MB LLC = miss-heavy)
    footprint_bytes: int
    #: fraction of misses that are stores (LLC write-allocate; dirty evicts)
    write_fraction: float
    #: maximum overlapped outstanding misses the core can sustain
    mlp: int
    #: mean CPU cycles of compute between consecutive L1 misses
    mean_gap_cycles: float
    #: fraction of records that belong to sequential streaming runs
    sequential_fraction: float
    #: mean run length once streaming (lines)
    run_length: int
    #: fraction of records drawn from a small hot set (temporal locality)
    hot_fraction: float
    #: hot-set size in lines
    hot_lines: int

    def __post_init__(self):
        if not 0 <= self.write_fraction <= 1:
            raise ValueError("write_fraction must be a probability")
        if self.mlp < 1:
            raise ValueError("mlp must be at least 1")
        if self.footprint_bytes < 64:
            raise ValueError("footprint must cover at least one line")
        if self.sequential_fraction + self.hot_fraction > 1:
            raise ValueError("sequential and hot fractions exceed 1")


def _mib(count: float) -> int:
    return int(count * 1024 * 1024)


#: The ten memory-intensive SPEC 2006 benchmarks the evaluation uses.
#: Tuned so the full suite lands near the paper's aggregate behaviour:
#: ~1.4 accessORAMs per LLC miss and a Freecursive slowdown near 8.8x on a
#: single channel, with per-benchmark spread.
SPEC_PROFILES: Dict[str, WorkloadProfile] = {
    profile.name: profile for profile in (
        # pointer-chasing, large footprint, miss-heavy, moderate MLP
        WorkloadProfile("mcf", _mib(512), 0.28, 6, 70.0, 0.2, 8, 0.77,
                        3072),
        # streaming stencil, very regular, high bandwidth demand
        WorkloadProfile("lbm", _mib(256), 0.45, 8, 75.0, 0.5, 32, 0.47,
                        1536),
        # single-stream sequential scan, extreme regularity
        WorkloadProfile("libquantum", _mib(64), 0.25, 4, 80.0, 0.68, 64,
                        0.29, 1024),
        # lattice QCD, strided large arrays
        WorkloadProfile("milc", _mib(256), 0.35, 5, 85.0, 0.42, 16, 0.55,
                        2048),
        # sparse LP solver, mixed locality
        WorkloadProfile("soplex", _mib(128), 0.3, 5, 95.0, 0.25, 8, 0.72,
                        3072),
        # FDTD solver: low MLP, latency-bound -> favours SPLIT
        WorkloadProfile("GemsFDTD", _mib(384), 0.4, 2, 85.0, 0.42, 12,
                        0.55, 2048),
        # discrete-event simulator: high MLP -> favours INDEP
        WorkloadProfile("omnetpp", _mib(96), 0.32, 10, 75.0, 0.15, 4,
                        0.82, 4096),
        # molecular dynamics: high MLP -> favours INDEP
        WorkloadProfile("gromacs", _mib(32), 0.3, 12, 110.0, 0.2, 8, 0.77,
                        4096),
        # implicit CFD, banded matrices
        WorkloadProfile("leslie3d", _mib(128), 0.42, 6, 80.0, 0.48, 24,
                        0.49, 1536),
        # blast-wave CFD, streaming with large working set
        WorkloadProfile("bwaves", _mib(512), 0.38, 7, 70.0, 0.52, 28,
                        0.45, 1536),
    )
}


def get_profile(name: str) -> WorkloadProfile:
    """Look up a profile by benchmark name.

    Raises:
        KeyError: with the list of known names, for typos.
    """
    try:
        return SPEC_PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(SPEC_PROFILES))
        raise KeyError(f"unknown workload {name!r}; choose from {known}")


def profile_names() -> Tuple[str, ...]:
    return tuple(sorted(SPEC_PROFILES))
