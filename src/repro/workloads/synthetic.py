"""The synthetic miss-stream generator.

Blends three access modes according to the profile:

* *streaming runs* — sequential line addresses with geometric run lengths
  (spatial locality; produces LLC hits and DRAM row hits),
* *hot-set references* — Zipf-weighted draws from a small reuse set
  (temporal locality; drives the PLB and LLC hit rates), and
* *cold random* — uniform draws over the whole footprint.

Gaps between misses are exponential around the profile mean, which is what
an in-order core's miss arrivals look like at trace granularity.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.utils.rng import DeterministicRng, ZipfSampler
from repro.workloads.spec import WorkloadProfile
from repro.workloads.trace import TraceRecord

_LINE_BYTES = 64


def generate_trace(profile: WorkloadProfile, length: int,
                   seed: int = 2018) -> List[TraceRecord]:
    """Generate ``length`` miss records for ``profile``."""
    return list(iterate_trace(profile, length, seed))


def iterate_trace(profile: WorkloadProfile, length: int,
                  seed: int = 2018) -> Iterator[TraceRecord]:
    """Stream miss records without materializing the whole trace."""
    rng = DeterministicRng(seed, f"trace-{profile.name}")
    footprint_lines = max(1, profile.footprint_bytes // _LINE_BYTES)
    hot_lines = min(profile.hot_lines, footprint_lines)
    hot_sampler = ZipfSampler(rng.child("hot"), hot_lines, 0.9)
    # The hot set is a contiguous region (heap/stack-like): dense in both
    # LLC sets and PosMap blocks, which is what gives real programs their
    # PLB hit rates.
    hot_base = rng.randrange(max(1, footprint_lines - hot_lines))

    # The profile states record *fractions*; a run of mean length R is
    # started with a lower per-decision probability so that run members
    # make up sequential_fraction of all records.
    fresh_fraction = 1.0 - profile.sequential_fraction
    start_weight = profile.sequential_fraction / profile.run_length
    run_start_probability = (start_weight /
                             (start_weight + fresh_fraction)
                             if fresh_fraction > 0 else 1.0)
    hot_probability = (min(1.0, profile.hot_fraction / fresh_fraction)
                       if fresh_fraction > 0 else 0.0)

    position = rng.randrange(footprint_lines)
    run_remaining = 0
    for _ in range(length):
        if run_remaining > 0:
            run_remaining -= 1
            position = (position + 1) % footprint_lines
        elif rng.bernoulli(run_start_probability):
            run_remaining = max(1, int(rng.expovariate(
                1.0 / profile.run_length)))
            position = (position + 1) % footprint_lines
        elif rng.bernoulli(hot_probability):
            position = (hot_base + hot_sampler.sample()) % footprint_lines
        else:
            position = rng.randrange(footprint_lines)

        gap = int(rng.expovariate(1.0 / profile.mean_gap_cycles))
        is_write = rng.bernoulli(profile.write_fraction)
        yield TraceRecord(gap, position, is_write)
