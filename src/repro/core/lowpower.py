"""Rank power management for the low-power ORAM layout (Section III-E).

With one subtree per rank (:class:`~repro.oram.layout.LowPowerLayout`), an
``accessORAM`` engages exactly one rank; the manager keeps every other rank
in precharge power-down.  Because the next request's rank is known as soon
as the request is dequeued — long before its path burst starts — the rank
wakes early enough to hide the ~24 ns exit latency under the previous
access, which is why the paper measures at most a 4% slowdown (from the
extra bank conflicts of confining a path to one rank).
"""

from __future__ import annotations

from typing import Optional

from repro.dram.channel import Channel


class RankPowerManager:
    """Keeps all but the active rank of a channel powered down."""

    def __init__(self, channel: Channel, enabled: bool = True):
        self.channel = channel
        self.enabled = enabled
        self._active_rank: Optional[int] = None
        self.switches = 0
        if enabled:
            for rank in channel.ranks:
                rank.enter_power_down(0)

    def prepare_access(self, rank_index: int, now: int) -> int:
        """Wake ``rank_index`` and park the previously active rank.

        Returns the cycle at which the target rank is usable.  Callers that
        know the next request early pass an early ``now`` so the exit
        latency overlaps preceding work.
        """
        if not self.enabled:
            return now
        if rank_index == self._active_rank:
            return now
        self.switches += 1
        if self._active_rank is not None:
            self.channel.ranks[self._active_rank].enter_power_down(now)
        self._active_rank = rank_index
        return self.channel.ranks[rank_index].wake(now)

    def finish(self, now: int) -> None:
        """Park the active rank too (end of simulation / long idle)."""
        if self.enabled and self._active_rank is not None:
            self.channel.ranks[self._active_rank].enter_power_down(now)
            self._active_rank = None

    @property
    def active_rank(self) -> Optional[int]:
        return self._active_rank
