"""Shared secure-buffer machinery: the encrypted link and its observables.

Section III-G's privacy argument rests on the *nature* of CPU<->SDIMM
communication being fixed: per request, the same commands, the same
directions, the same payload sizes, regardless of address or operation.
:class:`LinkRecorder` captures exactly what a logic analyzer on the memory
channel would see of the encrypted link — command type, direction, target
SDIMM, payload size — so tests can assert that property directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.commands import SdimmCommand


@dataclass(frozen=True)
class LinkEvent:
    """One command observed on the (encrypted) CPU<->SDIMM link."""

    direction: str           # "up" = CPU->SDIMM, "down" = SDIMM->CPU
    command: Optional[SdimmCommand]
    sdimm: int
    payload_bytes: int

    def shape(self) -> Tuple[str, Optional[SdimmCommand], int]:
        """The content-free part of the event (what obliviousness fixes).

        The target SDIMM is excluded: it is a uniform random function of the
        (secret, freshly remapped) leaf, identical in distribution for every
        access pattern.
        """
        return (self.direction, self.command, self.payload_bytes)


class LinkRecorder:
    """Accumulates link events for obliviousness analysis."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.events: List[LinkEvent] = []

    def up(self, command: SdimmCommand, sdimm: int,
           payload_bytes: int) -> None:
        if self.enabled:
            self.events.append(LinkEvent("up", command, sdimm, payload_bytes))

    def down(self, command: Optional[SdimmCommand], sdimm: int,
             payload_bytes: int) -> None:
        if self.enabled:
            self.events.append(LinkEvent("down", command, sdimm,
                                         payload_bytes))

    def shapes(self) -> List[Tuple[str, Optional[SdimmCommand], int]]:
        return [event.shape() for event in self.events]

    def clear(self) -> None:
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)
