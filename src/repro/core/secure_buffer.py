"""Shared secure-buffer machinery: the encrypted link and its observables.

Section III-G's privacy argument rests on the *nature* of CPU<->SDIMM
communication being fixed: per request, the same commands, the same
directions, the same payload sizes, regardless of address or operation.
:class:`LinkRecorder` captures exactly what a logic analyzer on the memory
channel would see of the encrypted link — command type, direction, target
SDIMM, payload size — so tests can assert that property directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.commands import SdimmCommand
from repro.obs.tracer import CATEGORY_LINK, NULL_TRACER, StepClock, Tracer


@dataclass(frozen=True)
class LinkEvent:
    """One command observed on the (encrypted) CPU<->SDIMM link."""

    direction: str           # "up" = CPU->SDIMM, "down" = SDIMM->CPU
    command: Optional[SdimmCommand]
    sdimm: int
    payload_bytes: int

    def shape(self) -> Tuple[str, Optional[SdimmCommand], int]:
        """The content-free part of the event (what obliviousness fixes).

        The target SDIMM is excluded: it is a uniform random function of the
        (secret, freshly remapped) leaf, identical in distribution for every
        access pattern.
        """
        return (self.direction, self.command, self.payload_bytes)


class LinkRecorder:
    """Accumulates link events for obliviousness analysis.

    When a :class:`~repro.obs.tracer.Tracer` is attached, every link event
    is also mirrored into the trace as an instant on ``lane`` — the same
    content-free view a logic analyzer sees (direction, command, size,
    target), timestamped on the supplied logical ``clock``.
    """

    def __init__(self, enabled: bool = True, tracer: Tracer = NULL_TRACER,
                 lane: str = "link", clock: Optional[StepClock] = None):
        self.enabled = enabled
        self.events: List[LinkEvent] = []
        self.tracer = tracer
        self.lane = lane
        self.clock = clock if clock is not None else StepClock()

    def up(self, command: SdimmCommand, sdimm: int,
           payload_bytes: int) -> None:
        if self.enabled:
            self.events.append(LinkEvent("up", command, sdimm, payload_bytes))
        if self.tracer.enabled:
            self.tracer.instant(
                command.value if command is not None else "data",
                CATEGORY_LINK, self.lane, self.clock.tick(),
                direction="up", sdimm=sdimm, payload_bytes=payload_bytes)

    def down(self, command: Optional[SdimmCommand], sdimm: int,
             payload_bytes: int) -> None:
        if self.enabled:
            self.events.append(LinkEvent("down", command, sdimm,
                                         payload_bytes))
        if self.tracer.enabled:
            self.tracer.instant(
                command.value if command is not None else "data",
                CATEGORY_LINK, self.lane, self.clock.tick(),
                direction="down", sdimm=sdimm, payload_bytes=payload_bytes)

    def shapes(self) -> List[Tuple[str, Optional[SdimmCommand], int]]:
        return [event.shape() for event in self.events]

    def clear(self) -> None:
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)
