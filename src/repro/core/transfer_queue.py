"""The Independent protocol's inter-SDIMM transfer queue (Section IV-C).

Blocks APPENDed from other SDIMMs wait here before entering the normal
stash.  A block leaves the queue in one of two ways:

1. an outgoing block departs the normal stash for another SDIMM, creating a
   vacancy that a queued block fills for free, or
2. with probability *p* per arrival, the buffer spends an extra dummy
   ``accessORAM`` to drain one queued block.

Without (2) the queue is a saturated random walk and overflows with
probability approaching 1 (Figure 13a); with even a small *p* the M/M/1/K
utilization drops below 1 and overflow becomes negligible (Figure 13b).
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional

from repro.oram.bucket import Block
from repro.utils.rng import DeterministicRng


class TransferQueueOverflow(Exception):
    """Raised when an APPEND arrives at a full transfer queue.

    Carries ``capacity`` / ``occupancy`` so failure records
    (:mod:`repro.faults`) can preserve the terminal queue state.
    """

    def __init__(self, message: str, capacity: int = 0, occupancy: int = 0):
        super().__init__(message)
        self.capacity = capacity
        self.occupancy = occupancy


class TransferQueue:
    """Bounded FIFO of in-flight blocks with drain statistics."""

    def __init__(self, capacity: int, drain_probability: float,
                 rng: DeterministicRng):
        if capacity < 1:
            raise ValueError("transfer queue needs capacity >= 1")
        if not 0.0 <= drain_probability <= 1.0:
            raise ValueError("drain probability must be in [0, 1]")
        self.capacity = capacity
        self.drain_probability = drain_probability
        self._rng = rng
        self._queue: deque = deque()
        self.arrivals = 0
        self.vacancy_services = 0
        self.drain_services = 0
        #: drain accesses spent on an empty queue: the caller already paid
        #: one dummy ``accessORAM`` for the lottery win, so the spend must
        #: be visible in stats even though nothing dequeued
        self.wasted_drains = 0
        #: vacancy opportunities that found nothing waiting (also a
        #: service opportunity — the denominator of the measured rho)
        self.idle_vacancies = 0
        self.peak_occupancy = 0
        self.overflows = 0

    def set_drain_probability(self, probability: float) -> None:
        """Re-plan the drain lottery (the adaptive controller's knob).

        Validates exactly like the constructor: a controller can never
        push *p* outside [0, 1] through this setter.
        """
        if not 0.0 <= probability <= 1.0:
            raise ValueError("drain probability must be in [0, 1]")
        self.drain_probability = probability

    def __len__(self) -> int:
        return len(self._queue)

    def __contains__(self, address: int) -> bool:
        return any(block.address == address for block in self._queue)

    def find(self, address: int) -> Optional[Block]:
        for block in self._queue:
            if block.address == address:
                return block
        return None

    def remove(self, address: int) -> Block:
        """Pull a specific block out (it was accessed while in flight)."""
        for index, block in enumerate(self._queue):
            if block.address == address:
                del self._queue[index]
                return block
        raise KeyError(f"address {address} not in transfer queue")

    def push(self, block: Block) -> bool:
        """Enqueue an arriving block.

        Returns True when the arrival also triggered a probabilistic drain
        decision (the caller must then perform one dummy ``accessORAM`` and
        call :meth:`service`).

        A blocked arrival still counts as an arrival — an M/M/1/K overflow
        probability is P(arrival finds the queue full), so the denominator
        of :attr:`overflow_rate` must include the arrivals that bounced.

        The drain lottery is drawn for *every* arrival, before the
        capacity check: the named RNG stream advances once per arrival
        whether or not the push succeeds, so a run that overflowed and
        its analytic replay (which models the bounce instead of raising)
        stay on the same stream and replay byte-identically.  The draw
        for a bounced arrival is discarded — the block never entered the
        queue, so there is nothing its lottery win could drain.

        Raises:
            TransferQueueOverflow: if the queue is already full.
        """
        self.arrivals += 1
        drain = self._rng.bernoulli(self.drain_probability)
        if len(self._queue) >= self.capacity:
            self.overflows += 1
            raise TransferQueueOverflow(
                f"transfer queue full at capacity {self.capacity}",
                capacity=self.capacity, occupancy=len(self._queue))
        self._queue.append(block)
        self.peak_occupancy = max(self.peak_occupancy, len(self._queue))
        return drain

    def service(self, via_drain: bool) -> Optional[Block]:
        """Dequeue the oldest block (vacancy fill or drain access).

        An empty-queue call is still a spent service opportunity: a drain
        caller already performed its dummy ``accessORAM`` before asking,
        and a vacancy caller's departure slot went unused either way.
        Both are counted (:attr:`wasted_drains` / :attr:`idle_vacancies`)
        so the spend is visible in stats and the measured utilization has
        an honest denominator.
        """
        if not self._queue:
            if via_drain:
                self.wasted_drains += 1
            else:
                self.idle_vacancies += 1
            return None
        if via_drain:
            self.drain_services += 1
        else:
            self.vacancy_services += 1
        return self._queue.popleft()

    def blocks(self) -> List[Block]:
        return list(self._queue)

    @property
    def overflow_rate(self) -> float:
        """Fraction of arrivals that found the queue full.

        Comparable to
        :func:`repro.analysis.queueing.transfer_queue_overflow_probability`
        at matched (p, K) once enough arrivals have been observed.
        """
        return self.overflows / self.arrivals if self.arrivals else 0.0

    def utilization_estimate(self, arrival_rate: float = 0.25) -> float:
        """rho = arrival / (arrival + p), the paper's M/M/1/K utilization.

        Delegates to :func:`repro.analysis.queueing.drain_utilization`, so
        the queue's own estimate and the analytical model can never drift
        apart.  The default arrival rate is the paper's 1/4 (one migration
        per four accesses).

        This is the *configured* rho — a pure function of the current
        :attr:`drain_probability`.  Once a controller makes *p*
        time-varying it describes only the instantaneous setting, never
        the run: use :meth:`measured_utilization` for what the queue
        actually experienced.
        """
        from repro.analysis.queueing import drain_utilization

        return drain_utilization(self.drain_probability, arrival_rate)

    @property
    def service_opportunities(self) -> int:
        """Every chance the queue had to dequeue, taken or not."""
        return (self.vacancy_services + self.drain_services
                + self.wasted_drains + self.idle_vacancies)

    def measured_utilization(self) -> Optional[float]:
        """Observed rho: the fraction of service opportunities that found
        work — P(queue non-empty) at service instants, the M/M/1/K
        busy-server estimator.

        Unlike :meth:`utilization_estimate` this is computed from the
        queue's own counters, so it stays honest when a controller varies
        :attr:`drain_probability` over the run.  Returns ``None`` until
        at least one service opportunity has been observed (there is no
        measurement to report, and inventing one from the configured *p*
        would repeat the bug this estimator fixes).
        """
        opportunities = self.service_opportunities
        if not opportunities:
            return None
        return (self.vacancy_services + self.drain_services) / opportunities

    def counters_dict(self) -> dict:
        """The queue's public statistics (what reports and metrics fold).

        Everything here is an aggregate count — arrival/service/overflow
        totals and occupancy extrema — never an address, leaf, or payload.
        The adaptive control plane restricts its inputs to this surface.
        """
        return {
            "arrivals": self.arrivals,
            "vacancy_services": self.vacancy_services,
            "drain_services": self.drain_services,
            "wasted_drains": self.wasted_drains,
            "idle_vacancies": self.idle_vacancies,
            "peak_occupancy": self.peak_occupancy,
            "occupancy": len(self._queue),
            "overflows": self.overflows,
        }
