"""The Independent protocol's inter-SDIMM transfer queue (Section IV-C).

Blocks APPENDed from other SDIMMs wait here before entering the normal
stash.  A block leaves the queue in one of two ways:

1. an outgoing block departs the normal stash for another SDIMM, creating a
   vacancy that a queued block fills for free, or
2. with probability *p* per arrival, the buffer spends an extra dummy
   ``accessORAM`` to drain one queued block.

Without (2) the queue is a saturated random walk and overflows with
probability approaching 1 (Figure 13a); with even a small *p* the M/M/1/K
utilization drops below 1 and overflow becomes negligible (Figure 13b).
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional

from repro.oram.bucket import Block
from repro.utils.rng import DeterministicRng


class TransferQueueOverflow(Exception):
    """Raised when an APPEND arrives at a full transfer queue.

    Carries ``capacity`` / ``occupancy`` so failure records
    (:mod:`repro.faults`) can preserve the terminal queue state.
    """

    def __init__(self, message: str, capacity: int = 0, occupancy: int = 0):
        super().__init__(message)
        self.capacity = capacity
        self.occupancy = occupancy


class TransferQueue:
    """Bounded FIFO of in-flight blocks with drain statistics."""

    def __init__(self, capacity: int, drain_probability: float,
                 rng: DeterministicRng):
        if capacity < 1:
            raise ValueError("transfer queue needs capacity >= 1")
        if not 0.0 <= drain_probability <= 1.0:
            raise ValueError("drain probability must be in [0, 1]")
        self.capacity = capacity
        self.drain_probability = drain_probability
        self._rng = rng
        self._queue: deque = deque()
        self.arrivals = 0
        self.vacancy_services = 0
        self.drain_services = 0
        self.peak_occupancy = 0
        self.overflows = 0

    def __len__(self) -> int:
        return len(self._queue)

    def __contains__(self, address: int) -> bool:
        return any(block.address == address for block in self._queue)

    def find(self, address: int) -> Optional[Block]:
        for block in self._queue:
            if block.address == address:
                return block
        return None

    def remove(self, address: int) -> Block:
        """Pull a specific block out (it was accessed while in flight)."""
        for index, block in enumerate(self._queue):
            if block.address == address:
                del self._queue[index]
                return block
        raise KeyError(f"address {address} not in transfer queue")

    def push(self, block: Block) -> bool:
        """Enqueue an arriving block.

        Returns True when the arrival also triggered a probabilistic drain
        decision (the caller must then perform one dummy ``accessORAM`` and
        call :meth:`service`).

        A blocked arrival still counts as an arrival — an M/M/1/K overflow
        probability is P(arrival finds the queue full), so the denominator
        of :attr:`overflow_rate` must include the arrivals that bounced.

        Raises:
            TransferQueueOverflow: if the queue is already full.
        """
        self.arrivals += 1
        if len(self._queue) >= self.capacity:
            self.overflows += 1
            raise TransferQueueOverflow(
                f"transfer queue full at capacity {self.capacity}",
                capacity=self.capacity, occupancy=len(self._queue))
        self._queue.append(block)
        self.peak_occupancy = max(self.peak_occupancy, len(self._queue))
        return self._rng.bernoulli(self.drain_probability)

    def service(self, via_drain: bool) -> Optional[Block]:
        """Dequeue the oldest block (vacancy fill or drain access)."""
        if not self._queue:
            return None
        if via_drain:
            self.drain_services += 1
        else:
            self.vacancy_services += 1
        return self._queue.popleft()

    def blocks(self) -> List[Block]:
        return list(self._queue)

    @property
    def overflow_rate(self) -> float:
        """Fraction of arrivals that found the queue full.

        Comparable to
        :func:`repro.analysis.queueing.transfer_queue_overflow_probability`
        at matched (p, K) once enough arrivals have been observed.
        """
        return self.overflows / self.arrivals if self.arrivals else 0.0

    def utilization_estimate(self, arrival_rate: float = 0.25) -> float:
        """rho = arrival / (arrival + p), the paper's M/M/1/K utilization.

        Delegates to :func:`repro.analysis.queueing.drain_utilization`, so
        the queue's own estimate and the analytical model can never drift
        apart.  The default arrival rate is the paper's 1/4 (one migration
        per four accesses).
        """
        from repro.analysis.queueing import drain_utilization

        return drain_utilization(self.drain_probability, arrival_rate)
