"""The paper's contribution: Secure DIMMs and the distributed ORAM protocols.

* :mod:`repro.core.commands` — the Table I DDR-compatible command encoding.
* :mod:`repro.core.secure_buffer` — the on-DIMM secure buffer (trusted ASIC).
* :mod:`repro.core.independent` — the Independent protocol: one ORAM subtree
  per SDIMM, APPEND broadcast to hide block migration.
* :mod:`repro.core.split` — the Split protocol: every bucket bit-sliced
  across SDIMMs; data moves locally, metadata goes to the CPU.
* :mod:`repro.core.indep_split` — independent partitions of split groups.
* :mod:`repro.core.transfer_queue` — the Independent protocol's inter-SDIMM
  transfer queue with probabilistic draining (Section IV-C).
* :mod:`repro.core.lowpower` — rank power management for the Section III-E
  one-subtree-per-rank layout.
"""

from repro.core.commands import CommandEncoder, DdrFrame, SdimmCommand
from repro.core.indep_split import IndepSplitProtocol
from repro.core.independent import IndependentProtocol
from repro.core.lowpower import RankPowerManager
from repro.core.split import SplitProtocol
from repro.core.transfer_queue import TransferQueue

__all__ = [
    "CommandEncoder",
    "DdrFrame",
    "IndepSplitProtocol",
    "IndependentProtocol",
    "RankPowerManager",
    "SdimmCommand",
    "SplitProtocol",
    "TransferQueue",
]
