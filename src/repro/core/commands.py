"""Table I: shoehorning SDIMM commands into the DDR interface.

The SDIMM adds no pins.  Instead, the first blocks of each SDIMM's address
space are reserved: RAS/CAS commands targeting them are interpreted by the
secure buffer as SDIMM commands.  *Short* commands need only the
command/address bus (reads at distinguished CAS offsets of block 0); *long*
commands ride a write's data burst (the message is the "written" data).

Because a CAS selects an 8-byte word, each reserved 64-byte block encodes
up to 8 distinct short commands — hence the CAS offsets 0x0, 0x8, 0x10,
0x18 in Table I.  Long commands all write to RAS(0x0)/CAS(0x0) (FETCH_STASH
additionally carries a stash index in a second CAS) and are distinguished
by a type byte inside the encrypted payload.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


class SdimmCommand(enum.Enum):
    """The nine commands of Table I."""

    SEND_PKEY = "SEND_PKEY"
    RECEIVE_SECRET = "RECEIVE_SECRET"
    ACCESS = "ACCESS"
    PROBE = "PROBE"
    FETCH_RESULT = "FETCH_RESULT"
    APPEND = "APPEND"
    FETCH_DATA = "FETCH_DATA"
    FETCH_STASH = "FETCH_STASH"
    RECEIVE_LIST = "RECEIVE_LIST"


@dataclass(frozen=True)
class CommandSpec:
    """One row of Table I."""

    command: SdimmCommand
    is_long: bool          # long commands use the data bus
    is_write: bool         # RD vs WR on the DDR bus
    ras: int
    cas: int
    extra_cas: bool = False  # FETCH_STASH sends a second CAS with an index


#: Table I, verbatim.
TABLE_I: Tuple[CommandSpec, ...] = (
    CommandSpec(SdimmCommand.SEND_PKEY, False, False, 0x0, 0x0),
    CommandSpec(SdimmCommand.RECEIVE_SECRET, True, True, 0x0, 0x0),
    CommandSpec(SdimmCommand.ACCESS, True, True, 0x0, 0x0),
    CommandSpec(SdimmCommand.PROBE, False, False, 0x0, 0x8),
    CommandSpec(SdimmCommand.FETCH_RESULT, False, False, 0x0, 0x10),
    CommandSpec(SdimmCommand.APPEND, True, True, 0x0, 0x0),
    CommandSpec(SdimmCommand.FETCH_DATA, False, False, 0x0, 0x18),
    CommandSpec(SdimmCommand.FETCH_STASH, True, True, 0x0, 0x18,
                extra_cas=True),
    CommandSpec(SdimmCommand.RECEIVE_LIST, True, True, 0x0, 0x0),
)

_SPEC_BY_COMMAND: Dict[SdimmCommand, CommandSpec] = {
    spec.command: spec for spec in TABLE_I}

#: Payload type bytes disambiguating long commands that share RAS/CAS.
_TYPE_BYTES: Dict[SdimmCommand, int] = {
    SdimmCommand.RECEIVE_SECRET: 0x01,
    SdimmCommand.ACCESS: 0x02,
    SdimmCommand.APPEND: 0x03,
    SdimmCommand.RECEIVE_LIST: 0x04,
    SdimmCommand.FETCH_STASH: 0x05,
}
_COMMAND_BY_TYPE_BYTE = {value: key for key, value in _TYPE_BYTES.items()}


@dataclass(frozen=True)
class DdrFrame:
    """What actually appears on the DDR bus for one SDIMM command."""

    is_write: bool
    ras: int
    cas_sequence: Tuple[int, ...]
    payload: bytes = b""

    @property
    def uses_data_bus(self) -> bool:
        return len(self.payload) > 0


class CommandDecodeError(Exception):
    """Raised when a frame does not parse as a valid SDIMM command."""


class CommandEncoder:
    """Encode/decode SDIMM commands onto legacy DDR frames."""

    #: Number of leading blocks reserved for command encoding.
    RESERVED_BLOCKS = 1

    def encode(self, command: SdimmCommand, payload: bytes = b"",
               stash_index: Optional[int] = None) -> DdrFrame:
        """Build the DDR frame for ``command``.

        Raises:
            ValueError: if a payload is given for a short command, missing
                for a long one, or a stash index is (not) supplied when the
                command does (not) expect one.
        """
        spec = _SPEC_BY_COMMAND[command]
        if spec.is_long and not payload:
            raise ValueError(f"{command.value} is a long command and needs "
                             f"a payload")
        if not spec.is_long and payload:
            raise ValueError(f"{command.value} is a short command; it cannot "
                             f"carry a payload")
        if spec.extra_cas and stash_index is None:
            raise ValueError(f"{command.value} requires a stash index")
        if not spec.extra_cas and stash_index is not None:
            raise ValueError(f"{command.value} does not take a stash index")

        cas_sequence: List[int] = [spec.cas]
        if spec.extra_cas:
            cas_sequence.append(stash_index)
        framed_payload = b""
        if spec.is_long:
            framed_payload = bytes([_TYPE_BYTES[command]]) + payload
        return DdrFrame(is_write=spec.is_write, ras=spec.ras,
                        cas_sequence=tuple(cas_sequence),
                        payload=framed_payload)

    def decode(self, frame: DdrFrame) -> Tuple[SdimmCommand, bytes,
                                               Optional[int]]:
        """Parse a DDR frame back into (command, payload, stash index).

        Raises:
            CommandDecodeError: for frames that match no Table I row.
        """
        if frame.ras != 0x0:
            raise CommandDecodeError(
                f"RAS {frame.ras:#x} is outside the reserved command block")
        if not frame.is_write:
            for spec in TABLE_I:
                if (not spec.is_write and not spec.is_long and
                        frame.cas_sequence == (spec.cas,)):
                    return spec.command, b"", None
            raise CommandDecodeError(
                f"no short command at CAS {frame.cas_sequence}")
        if not frame.payload:
            raise CommandDecodeError("long command frame without payload")
        type_byte = frame.payload[0]
        command = _COMMAND_BY_TYPE_BYTE.get(type_byte)
        if command is None:
            raise CommandDecodeError(f"unknown payload type {type_byte:#x}")
        spec = _SPEC_BY_COMMAND[command]
        expected_cas = 2 if spec.extra_cas else 1
        if len(frame.cas_sequence) != expected_cas:
            raise CommandDecodeError(
                f"{command.value} expects {expected_cas} CAS commands")
        if frame.cas_sequence[0] != spec.cas:
            raise CommandDecodeError(
                f"{command.value} must target CAS {spec.cas:#x}")
        stash_index = frame.cas_sequence[1] if spec.extra_cas else None
        return command, frame.payload[1:], stash_index

    @staticmethod
    def spec(command: SdimmCommand) -> CommandSpec:
        return _SPEC_BY_COMMAND[command]

    @staticmethod
    def table() -> Tuple[CommandSpec, ...]:
        """The full Table I, for the reproduction benchmark."""
        return TABLE_I
