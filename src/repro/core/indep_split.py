"""The combined Independent + Split design (Figure 7e).

Four SDIMMs form two *groups*; the tree is partitioned across groups by
leaf MSBs (Independent semantics: parallel, APPEND broadcast, transfer
queues), and within each group every bucket is 2-way split (Split
semantics: halved per-access latency).  This is the configuration the paper
finds "the best balance in terms of latency and parallelism in every
benchmark" — INDEP-SPLIT, the headline 47.4% improvement.

Each group exposes the same access/append surface an Independent SDIMM
does; internally a group *is* a Split protocol instance over its subtree.
Blocks migrate between groups through the CPU exactly as in the
Independent protocol: the arriving block's slices are appended to both
member buffers' stashes plus the group's shadow, paced by a transfer queue
whose probabilistic drain triggers a dummy split access.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.commands import SdimmCommand
from repro.core.secure_buffer import LinkRecorder
from repro.core.split import SplitProtocol, _ShadowEntry, _StashSlice
from repro.core.transfer_queue import TransferQueue
from repro.obs.tracer import (
    CATEGORY_PROTOCOL,
    NULL_TRACER,
    StepClock,
    Tracer,
)
from repro.oram.bucket import Block
from repro.oram.path_oram import Op
from repro.oram.posmap import PositionMap
from repro.utils.bitops import bit_slice, log2_exact
from repro.utils.rng import DeterministicRng


class SplitGroup:
    """One independent partition served by a split pair of SDIMMs."""

    def __init__(self, group_id: int, groups: int, global_levels: int,
                 ways: int, blocks_per_bucket: int, block_bytes: int,
                 stash_capacity: int, transfer_queue_capacity: int,
                 drain_probability: float, rng: DeterministicRng,
                 key: bytes, record_link: bool = False,
                 tracer: Tracer = NULL_TRACER):
        self.group_id = group_id
        self.groups = groups
        self._partition_bits = log2_exact(groups)
        local_levels = global_levels - self._partition_bits
        if local_levels < 1:
            raise ValueError("tree too shallow for this many groups")
        self.split = SplitProtocol(
            levels=local_levels,
            ways=ways,
            blocks_per_bucket=blocks_per_bucket,
            block_bytes=block_bytes,
            stash_capacity=stash_capacity,
            seed=rng.randint(0, 2**31),
            key=key + bytes([group_id]),
            record_link=record_link,
            tracer=tracer,
            trace_lane=f"group{group_id}",
        )
        self._local_leaf_bits = local_levels - 1
        self._global_leaf_count = (self.split.geometry.leaf_count * groups)
        self.queue = TransferQueue(transfer_queue_capacity,
                                   drain_probability,
                                   rng.child(f"group-queue{group_id}"))
        self._rng = rng.child(f"group{group_id}")
        self.accesses = 0

    # ------------------------------------------------------------------

    def owner_of(self, global_leaf: int) -> int:
        return global_leaf >> self._local_leaf_bits

    def _local(self, global_leaf: int) -> int:
        return global_leaf & ((1 << self._local_leaf_bits) - 1)

    # ------------------------------------------------------------------

    def access(self, address: int, old_global_leaf: int, op: Op,
               data: Optional[bytes]) -> "GroupOutcome":
        """An Independent-style access executed split-wise in the group."""
        if self.owner_of(old_global_leaf) != self.group_id:
            raise ValueError(f"leaf {old_global_leaf} not owned by "
                             f"group {self.group_id}")
        self.accesses += 1
        split = self.split
        if address in self.queue:
            # The block is accessed while still in flight: pull it out of
            # the transfer queue straight into the split stashes.
            waiting = self.queue.remove(address)
            split.shadow.append(_ShadowEntry(address,
                                             self._local(old_global_leaf)))
            for buffer in split.buffers:
                buffer.stash.append(_StashSlice(
                    plaintext=bit_slice(waiting.data, buffer.way,
                                        buffer.ways)))
        split.posmap.set(address, self._local(old_global_leaf))

        new_global_leaf = self._rng.random_leaf(self._global_leaf_count)
        stays = self.owner_of(new_global_leaf) == self.group_id
        result = split.access(
            address, op, data,
            override_new_leaf=self._local(new_global_leaf) if stays else None,
            remove_after=not stays,
        )
        moved: Optional[Block] = None
        if not stays:
            payload = data if op is Op.WRITE else result
            moved = Block(address, new_global_leaf, payload)
            # A departure opens a stash vacancy; fill it from the queue.
            self._service_queue(via_drain=False)
        return GroupOutcome(result, new_global_leaf, moved)

    def _service_queue(self, via_drain: bool) -> None:
        serviced = self.queue.service(via_drain=via_drain)
        if serviced is None:
            return
        local_leaf = self._local(serviced.leaf)
        self.split.shadow.append(_ShadowEntry(serviced.address, local_leaf))
        self.split.posmap.set(serviced.address, local_leaf)
        for buffer in self.split.buffers:
            buffer.stash.append(_StashSlice(
                plaintext=bit_slice(serviced.data, buffer.way,
                                    buffer.ways)))

    def append(self, block: Optional[Block]) -> int:
        """Absorb an APPEND; real blocks enter the split stashes sliced.

        A probabilistic drain spends one dummy split access, keeping queue
        utilization below 1 (Section IV-C).
        """
        if block is None:
            return 0
        drain_now = self.queue.push(block)
        if drain_now:
            self._service_queue(via_drain=True)
            self.split.dummy_access()
            return 1
        return 0

    def holds(self, address: int) -> bool:
        """Whether the block is anywhere in this group (tests/debugging)."""
        in_shadow = any(entry.address == address
                        for entry in self.split.shadow)
        return in_shadow or address in self.queue


class GroupOutcome:
    """Result of a group access (mirrors the Independent outcome)."""

    def __init__(self, data: bytes, new_global_leaf: int,
                 moved_block: Optional[Block]):
        self.data = data
        self.new_global_leaf = new_global_leaf
        self.moved_block = moved_block


class IndepSplitProtocol:
    """CPU-side orchestration of the combined design."""

    def __init__(self, global_levels: int, groups: int = 2, ways: int = 2,
                 blocks_per_bucket: int = 4, block_bytes: int = 64,
                 stash_capacity: int = 200,
                 transfer_queue_capacity: int = 128,
                 drain_probability: float = 0.05,
                 seed: int = 2018,
                 key: bytes = b"indep-split-key!",
                 record_link: bool = False,
                 tracer: Tracer = NULL_TRACER):
        rng = DeterministicRng(seed, "indep-split")
        self.block_bytes = block_bytes
        self.tracer = tracer
        self.clock = StepClock()
        self.groups: List[SplitGroup] = [
            SplitGroup(
                group_id=index,
                groups=groups,
                global_levels=global_levels,
                ways=ways,
                blocks_per_bucket=blocks_per_bucket,
                block_bytes=block_bytes,
                stash_capacity=stash_capacity,
                transfer_queue_capacity=transfer_queue_capacity,
                drain_probability=drain_probability,
                rng=rng,
                key=key,
                record_link=record_link,
                tracer=tracer,
            )
            for index in range(groups)
        ]
        leaf_count = self.groups[0].split.geometry.leaf_count * groups
        self._global_leaf_count = leaf_count
        self.posmap = PositionMap(leaf_count, rng.child("posmap"))
        self.link = LinkRecorder(enabled=record_link, tracer=tracer,
                                 lane="indep-split-link", clock=self.clock)
        self.accesses = 0
        self._seed = seed
        #: Groups whose retry budget was exhausted (see IndependentProtocol).
        self.quarantined: set = set()
        self._degraded_rng: Optional[DeterministicRng] = None
        self.degraded_accesses = 0
        self.lost_appends = 0

    # ------------------------------------------------------------------
    # Fault-injection / resilience seams (repro.faults)
    # ------------------------------------------------------------------

    def attach_resilience(self, handle) -> None:
        """Install one retry policy handle on every group's Split core."""
        for group in self.groups:
            group.split.attach_resilience(handle)

    def quarantine(self, group_id: int) -> None:
        """Mark a whole split group failed: its accesses run degraded."""
        self.quarantined.add(group_id)

    def _degraded(self) -> DeterministicRng:
        # Lazy for the same reason as IndependentProtocol._degraded: an
        # eager rng would consume parent entropy and shift every stream.
        if self._degraded_rng is None:
            self._degraded_rng = DeterministicRng(self._seed,
                                                  "indep-split/degraded")
        return self._degraded_rng

    def _degraded_access(self, address: int, owner: int) -> bytes:
        """Quarantined-group access: normal link shape, zeroes served."""
        self.degraded_accesses += 1
        lane = "indep-split"
        traced = self.tracer.enabled
        start = self.clock.now
        self.link.up(SdimmCommand.ACCESS, owner, self.block_bytes)
        new_leaf = self._degraded().random_leaf(self._global_leaf_count)
        self.posmap.set(address, new_leaf)
        if traced:
            self.tracer.span("ACCESS", CATEGORY_PROTOCOL, lane, start,
                             max(start + 1, self.clock.now))
        start = self.clock.now
        self.link.down(SdimmCommand.FETCH_RESULT, owner, self.block_bytes)
        if traced:
            self.tracer.span("FETCH_RESULT", CATEGORY_PROTOCOL, lane, start,
                             max(start + 1, self.clock.now))
        start = self.clock.now
        for index in range(len(self.groups)):
            self.link.up(SdimmCommand.APPEND, index, self.block_bytes)
        if traced:
            self.tracer.span("APPEND", CATEGORY_PROTOCOL, lane, start,
                             max(start + 1, self.clock.now))
        return bytes(self.block_bytes)

    # ------------------------------------------------------------------

    def read(self, address: int) -> bytes:
        """Oblivious read of one block."""
        return self.access(address, Op.READ)

    def write(self, address: int, data: bytes) -> None:
        """Oblivious write of one block."""
        self.access(address, Op.WRITE, data)

    def access(self, address: int, op: Op,
               data: Optional[bytes] = None) -> bytes:
        """One end-to-end request through the combined protocol."""
        if op is Op.WRITE and data is None:
            raise ValueError("write requires data")
        self.accesses += 1
        old_leaf = self.posmap.lookup(address)
        owner = self.groups[0].owner_of(old_leaf)
        if owner in self.quarantined:  # reprolint: disable=SEC003 -- owner is leaf-derived but a failed group is physically observable to any adversary; the degraded path emits the identical link shape, so this branch reveals nothing beyond the (public) failure itself
            return self._degraded_access(address, owner)
        traced = self.tracer.enabled
        lane = "indep-split"

        start = self.clock.now
        self.link.up(SdimmCommand.ACCESS, owner, self.block_bytes)
        outcome = self.groups[owner].access(address, old_leaf, op, data)
        self.posmap.set(address, outcome.new_global_leaf)
        if traced:
            self.tracer.span("ACCESS", CATEGORY_PROTOCOL, lane, start,
                             max(start + 1, self.clock.now))
        start = self.clock.now
        self.link.down(SdimmCommand.FETCH_RESULT, owner, self.block_bytes)
        if traced:
            self.tracer.span("FETCH_RESULT", CATEGORY_PROTOCOL, lane, start,
                             max(start + 1, self.clock.now))

        start = self.clock.now
        new_owner = self.groups[0].owner_of(outcome.new_global_leaf)
        for index, group in enumerate(self.groups):
            payload = (outcome.moved_block
                       if index == new_owner and outcome.moved_block
                       else None)
            self.link.up(SdimmCommand.APPEND, index, self.block_bytes)
            if index in self.quarantined:
                if payload is not None:
                    self.lost_appends += 1
                continue
            group.append(payload)
        if traced:
            self.tracer.span("APPEND", CATEGORY_PROTOCOL, lane, start,
                             max(start + 1, self.clock.now))
        return outcome.data
