"""The Independent ORAM protocol (Section III-C).

The ORAM tree is partitioned into one subtree per SDIMM by the most
significant bits of the leaf ID.  Each SDIMM runs a complete Path ORAM
backend over its subtree: the CPU sends an ``accessORAM`` to the owning
SDIMM, the SDIMM shuffles its path locally, and only the requested block —
plus one APPEND per SDIMM (all but one carrying dummies) to hide the
block's new home — crosses the main memory channel.

The six protocol steps map directly onto methods here:

1.  CPU front end picks the request, looks up the leaf, sends ACCESS (+ one
    always-present data block) to the owning SDIMM
    (:meth:`IndependentProtocol.access`).
2-4. the SDIMM performs the local path access and write-back
    (:meth:`IndependentBuffer.access`).
5.  the CPU polls with PROBE and collects the block with FETCH_RESULT.
6.  the CPU APPENDs one block to *every* SDIMM; real only at the new owner
    (:meth:`IndependentBuffer.append`), feeding the transfer queue.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.commands import SdimmCommand
from repro.core.secure_buffer import LinkRecorder
from repro.core.transfer_queue import TransferQueue
from repro.obs.tracer import (
    CATEGORY_PROTOCOL,
    NULL_TRACER,
    StepClock,
    Tracer,
)
from repro.oram.bucket import Block
from repro.oram.path_oram import Op, PathOram
from repro.oram.posmap import PositionMap
from repro.utils.bitops import log2_exact
from repro.utils.rng import DeterministicRng


@dataclass
class AccessOutcome:
    """What one SDIMM-local accessORAM produced."""

    data: bytes
    new_global_leaf: int
    moved_block: Optional[Block]   # set when the block left this SDIMM
    drain_accesses: int            # extra dummy accesses spent on the queue


class IndependentBuffer:
    """One SDIMM's secure buffer running the Independent backend."""

    def __init__(self, sdimm_id: int, total_sdimms: int, global_levels: int,
                 blocks_per_bucket: int, block_bytes: int,
                 stash_capacity: int, transfer_queue_capacity: int,
                 drain_probability: float, rng: DeterministicRng,
                 record_trace: bool = False,
                 encryption_key: Optional[bytes] = None):
        self.sdimm_id = sdimm_id
        self.total_sdimms = total_sdimms
        self._partition_bits = log2_exact(total_sdimms)
        local_levels = global_levels - self._partition_bits
        if local_levels < 1:
            raise ValueError("tree too shallow for this many SDIMMs")
        store = None
        if encryption_key is not None:
            # The DRAM chips behind the secure buffer are untrusted: the
            # buffer encrypts and PMMACs every bucket it writes on-DIMM.
            from repro.oram.integrity import EncryptedBucketStore

            store = EncryptedBucketStore(
                bucket_count=(1 << local_levels) - 1,
                bucket_capacity=blocks_per_bucket,
                block_bytes=block_bytes,
                key=encryption_key + bytes([sdimm_id]))
        self.oram = PathOram(
            levels=local_levels,
            blocks_per_bucket=blocks_per_bucket,
            block_bytes=block_bytes,
            stash_capacity=stash_capacity,
            rng=rng.child(f"sdimm{sdimm_id}"),
            store=store,
            record_trace=record_trace,
        )
        self._local_leaf_bits = local_levels - 1
        self._global_leaf_count = (self.oram.geometry.leaf_count *
                                   total_sdimms)
        self.queue = TransferQueue(transfer_queue_capacity,
                                   drain_probability,
                                   rng.child(f"queue{sdimm_id}"))
        self.accesses = 0

    # ------------------------------------------------------------------

    def owner_of(self, global_leaf: int) -> int:
        return global_leaf >> self._local_leaf_bits

    def _local(self, global_leaf: int) -> int:
        return global_leaf & ((1 << self._local_leaf_bits) - 1)

    # ------------------------------------------------------------------

    def access(self, address: int, old_global_leaf: int, op: Op,
               new_data: Optional[bytes]) -> AccessOutcome:
        """Steps 2-4: local path access, remap, conditional removal.

        The new leaf is drawn by the SDIMM over the *global* leaf space; if
        it maps to another SDIMM the block is removed from the local stash
        and handed back for migration.
        """
        if self.owner_of(old_global_leaf) != self.sdimm_id:
            raise ValueError(f"leaf {old_global_leaf} not owned by "
                             f"SDIMM {self.sdimm_id}")
        self.accesses += 1
        oram = self.oram
        old_local = self._local(old_global_leaf)
        oram.read_path_into_stash(old_local)

        if address in oram.stash:
            block = oram.stash.get(address)
        elif address in self.queue:
            block = self.queue.remove(address)
            block.leaf = self._local(block.leaf)
            oram.stash.add(block)
        else:
            block = Block(address, old_local, bytes(oram.block_bytes))
            oram.stash.add(block)

        result = block.data
        if op is Op.WRITE:
            if new_data is None or len(new_data) != oram.block_bytes:
                raise ValueError("write requires a full-size payload")
            block.data = new_data

        new_global_leaf = oram.rng.random_leaf(self._global_leaf_count)
        moved: Optional[Block] = None
        if self.owner_of(new_global_leaf) == self.sdimm_id:
            block.leaf = self._local(new_global_leaf)
        else:
            moved = oram.stash.remove(address)
            moved.leaf = new_global_leaf
            # Step 6's counterpart: a departure opens a stash vacancy that
            # services one waiting transfer-queue block for free.
            freed = self.queue.service(via_drain=False)
            if freed is not None:
                freed.leaf = self._local(freed.leaf)
                oram.stash.add(freed)

        oram.write_path_from_stash(old_local)
        oram.relieve_pressure()
        return AccessOutcome(result, new_global_leaf, moved, 0)

    def append(self, block: Optional[Block]) -> int:
        """Step 6 receiver: absorb an APPEND (dummy blocks are dropped).

        Returns how many drain accesses (extra dummy accessORAMs) were
        spent; each one also moves a queued block into the stash.
        """
        if block is None:
            return 0
        local_block = Block(block.address, block.leaf, block.data)
        drain_now = self.queue.push(local_block)
        if not drain_now:
            return 0
        serviced = self.queue.service(via_drain=True)
        if serviced is not None:
            serviced.leaf = self._local(serviced.leaf)
            self.oram.stash.add(serviced)
        self.oram.dummy_access()
        return 1

    def holds(self, address: int) -> bool:
        """Whether the block is anywhere in this SDIMM (tests/debugging)."""
        return address in self.oram.stash or address in self.queue


class IndependentProtocol:
    """CPU-side orchestration of the Independent design."""

    def __init__(self, global_levels: int, sdimm_count: int,
                 blocks_per_bucket: int = 4, block_bytes: int = 64,
                 stash_capacity: int = 200,
                 transfer_queue_capacity: int = 128,
                 drain_probability: float = 0.05,
                 seed: int = 2018,
                 record_link: bool = False,
                 record_trace: bool = False,
                 encryption_key: Optional[bytes] = None,
                 tracer: Tracer = NULL_TRACER):
        rng = DeterministicRng(seed, "independent")
        self.block_bytes = block_bytes
        self.tracer = tracer
        self.clock = StepClock()
        self.sdimms: List[IndependentBuffer] = [
            IndependentBuffer(
                sdimm_id=index,
                total_sdimms=sdimm_count,
                global_levels=global_levels,
                blocks_per_bucket=blocks_per_bucket,
                block_bytes=block_bytes,
                stash_capacity=stash_capacity,
                transfer_queue_capacity=transfer_queue_capacity,
                drain_probability=drain_probability,
                rng=rng,
                record_trace=record_trace,
                encryption_key=encryption_key,
            )
            for index in range(sdimm_count)
        ]
        global_leaf_count = (self.sdimms[0].oram.geometry.leaf_count *
                             sdimm_count)
        self._global_leaf_count = global_leaf_count
        self.posmap = PositionMap(global_leaf_count, rng.child("posmap"))
        self.link = LinkRecorder(enabled=record_link, tracer=tracer,
                                 lane="independent-link", clock=self.clock)
        self.accesses = 0
        self._seed = seed
        #: SDIMMs whose retry budget was exhausted: their accesses degrade
        #: to link-shape-preserving zero reads instead of crashing the run.
        self.quarantined: set = set()
        self._degraded_rng: Optional[DeterministicRng] = None
        self.degraded_accesses = 0
        self.lost_appends = 0

    # ------------------------------------------------------------------
    # Fault-injection / resilience seams (repro.faults)
    # ------------------------------------------------------------------

    def wrap_stores(self, wrapper) -> None:
        """Replace each SDIMM's bucket store with ``wrapper(sdimm_id, store)``.

        Only meaningful when the buffers encrypt (a ``PlainBucketStore``
        has no adversarial surface); plain stores are wrapped all the same
        so retry accounting stays uniform.
        """
        for index, sdimm in enumerate(self.sdimms):
            sdimm.oram.store = wrapper(index, sdimm.oram.store)

    def wrap_link(self, wrapper) -> None:
        """Replace the link recorder with ``wrapper(link)`` (fault proxy)."""
        self.link = wrapper(self.link)

    def quarantine(self, sdimm_id: int) -> None:
        """Mark an SDIMM failed: later accesses to it run degraded."""
        self.quarantined.add(sdimm_id)

    def _degraded(self) -> DeterministicRng:
        # Built lazily from the stored seed: DeterministicRng.child() draws
        # entropy from the parent stream, so creating this eagerly in the
        # constructor would perturb every existing stream and break
        # zero-fault byte-identity with pre-resilience runs.
        if self._degraded_rng is None:
            self._degraded_rng = DeterministicRng(self._seed,
                                                  "independent/degraded")
        return self._degraded_rng

    def _degraded_access(self, address: int, owner: int) -> bytes:
        """Serve an access whose owner is quarantined.

        Emits the exact link shape of a healthy access — ACCESS, PROBE,
        FETCH_RESULT up/down, one APPEND per SDIMM — so a bus adversary
        cannot tell a degraded access from a normal one; the data served
        is zeroes and the block is remapped without migration.
        """
        self.degraded_accesses += 1
        lane = "independent"
        traced = self.tracer.enabled
        start = self.clock.now
        self.link.up(SdimmCommand.ACCESS, owner, self.block_bytes)
        new_leaf = self._degraded().random_leaf(self._global_leaf_count)
        self.posmap.set(address, new_leaf)
        if traced:
            self.tracer.span("ACCESS", CATEGORY_PROTOCOL, lane, start,
                             max(start + 1, self.clock.now))
        start = self.clock.now
        self.link.up(SdimmCommand.PROBE, owner, 0)
        if traced:
            self.tracer.span("PROBE", CATEGORY_PROTOCOL, lane, start,
                             max(start + 1, self.clock.now))
        start = self.clock.now
        self.link.up(SdimmCommand.FETCH_RESULT, owner, 0)
        self.link.down(SdimmCommand.FETCH_RESULT, owner, self.block_bytes)
        if traced:
            self.tracer.span("FETCH_RESULT", CATEGORY_PROTOCOL, lane, start,
                             max(start + 1, self.clock.now))
        start = self.clock.now
        for index in range(len(self.sdimms)):
            # Broadcast shape only: there is no migrated block to deliver,
            # and a dummy APPEND is a no-op inside every buffer.
            self.link.up(SdimmCommand.APPEND, index, self.block_bytes)
        if traced:
            self.tracer.span("APPEND", CATEGORY_PROTOCOL, lane, start,
                             max(start + 1, self.clock.now))
        return bytes(self.block_bytes)

    # ------------------------------------------------------------------

    def access(self, address: int, op: Op,
               data: Optional[bytes] = None) -> bytes:
        """One end-to-end request through the Independent protocol."""
        if op is Op.WRITE and data is None:
            raise ValueError("write requires data")
        self.accesses += 1
        old_leaf = self.posmap.lookup(address)
        owner = self.sdimms[0].owner_of(old_leaf)
        if owner in self.quarantined:  # reprolint: disable=SEC003 -- owner is leaf-derived but a failed DIMM is physically observable to any adversary; the degraded path emits the identical link shape, so this branch reveals nothing beyond the (public) failure itself
            return self._degraded_access(address, owner)
        traced = self.tracer.enabled
        lane = "independent"

        # Step 1: ACCESS always carries one block (dummy for reads) so the
        # operation type is hidden.
        start = self.clock.now
        self.link.up(SdimmCommand.ACCESS, owner, self.block_bytes)
        outcome = self.sdimms[owner].access(address, old_leaf, op, data)
        self.posmap.set(address, outcome.new_global_leaf)
        if traced:
            self.tracer.span("ACCESS", CATEGORY_PROTOCOL, lane, start,
                             max(start + 1, self.clock.now))

        # Step 5: PROBE until ready, then FETCH_RESULT.  The SDIMM always
        # returns one block (dummy only for a local-stay write).
        start = self.clock.now
        self.link.up(SdimmCommand.PROBE, owner, 0)
        if traced:
            self.tracer.span("PROBE", CATEGORY_PROTOCOL, lane, start,
                             max(start + 1, self.clock.now))
        start = self.clock.now
        self.link.up(SdimmCommand.FETCH_RESULT, owner, 0)
        self.link.down(SdimmCommand.FETCH_RESULT, owner, self.block_bytes)
        if traced:
            self.tracer.span("FETCH_RESULT", CATEGORY_PROTOCOL, lane, start,
                             max(start + 1, self.clock.now))

        # Step 6: one APPEND to every SDIMM; real block only at the new
        # owner (and only if the block actually migrated).
        start = self.clock.now
        new_owner = self.sdimms[0].owner_of(outcome.new_global_leaf)
        for index, sdimm in enumerate(self.sdimms):
            payload = (outcome.moved_block
                       if index == new_owner and outcome.moved_block
                       else None)
            self.link.up(SdimmCommand.APPEND, index, self.block_bytes)
            if index in self.quarantined:
                # The wire still carries the APPEND (shape preserved); the
                # dead buffer just cannot absorb it.  A real migrated block
                # landing here is lost — recorded, not raised.
                if payload is not None:
                    self.lost_appends += 1
                continue
            sdimm.append(payload)
        if traced:
            self.tracer.span("APPEND", CATEGORY_PROTOCOL, lane, start,
                             max(start + 1, self.clock.now))

        return outcome.data

    def read(self, address: int) -> bytes:
        """Oblivious read of one block."""
        return self.access(address, Op.READ)

    def write(self, address: int, data: bytes) -> None:
        """Oblivious write of one block."""
        self.access(address, Op.WRITE, data)

    # ------------------------------------------------------------------

    def locate(self, address: int) -> int:
        """Which SDIMM currently owns the block (tests/debugging)."""
        return self.sdimms[0].owner_of(self.posmap.lookup(address))

    @property
    def total_drain_accesses(self) -> int:
        return sum(sdimm.queue.drain_services for sdimm in self.sdimms)
