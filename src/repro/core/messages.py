"""Wire formats for the CPU <-> secure-buffer link, end to end.

This module closes the loop between three pieces that the protocol classes
otherwise use abstractly: the session crypto (:mod:`repro.crypto.session`),
the Table I command encoding (:mod:`repro.core.commands`), and the
Independent-protocol buffer logic.  A :class:`CpuPort` serializes a
message, encrypts it under the upstream session key, and wraps it in the
DDR frame its command dictates; an :class:`SdimmPort` does the reverse and
drives an :class:`~repro.core.independent.IndependentBuffer`.

Every message kind serializes to a *fixed* length — ACCESS and APPEND
always carry a full block whether or not they are dummies — because the
frame sizes are part of what the bus adversary sees.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.commands import CommandEncoder, DdrFrame, SdimmCommand
from repro.core.independent import IndependentBuffer
from repro.crypto.session import SecureSession
from repro.oram.bucket import Block
from repro.oram.path_oram import Op

_OP_READ = 0
_OP_WRITE = 1


class ReplayError(Exception):
    """A link message with a stale counter was replayed on the bus."""


@dataclass(frozen=True)
class AccessMessage:
    """The accessORAM request: address, leaf, operation, one block."""

    address: int
    leaf: int
    op: Op
    payload: bytes  # a dummy block for reads (same size, same look)

    def serialize(self) -> bytes:
        op_byte = _OP_WRITE if self.op is Op.WRITE else _OP_READ
        return (self.address.to_bytes(8, "little") +
                self.leaf.to_bytes(8, "little") +
                bytes([op_byte]) + self.payload)

    @classmethod
    def parse(cls, raw: bytes, block_bytes: int) -> "AccessMessage":
        if len(raw) != 17 + block_bytes:
            raise ValueError(f"ACCESS message must be {17 + block_bytes} "
                             f"bytes, got {len(raw)}")
        op = Op.WRITE if raw[16] == _OP_WRITE else Op.READ
        return cls(int.from_bytes(raw[:8], "little"),
                   int.from_bytes(raw[8:16], "little"), op, raw[17:])


@dataclass(frozen=True)
class ResultMessage:
    """FETCH_RESULT response: the block (or a dummy) plus its new leaf."""

    payload: bytes
    new_leaf: int
    is_dummy: bool

    def serialize(self) -> bytes:
        return (self.new_leaf.to_bytes(8, "little") +
                bytes([1 if self.is_dummy else 0]) + self.payload)

    @classmethod
    def parse(cls, raw: bytes, block_bytes: int) -> "ResultMessage":
        if len(raw) != 9 + block_bytes:
            raise ValueError("RESULT message has the wrong size")
        return cls(raw[9:], int.from_bytes(raw[:8], "little"),
                   raw[8] == 1)


@dataclass(frozen=True)
class AppendMessage:
    """APPEND: a (possibly dummy) block headed for a transfer queue."""

    is_dummy: bool
    address: int
    leaf: int
    payload: bytes

    def serialize(self) -> bytes:
        return (bytes([1 if self.is_dummy else 0]) +
                self.address.to_bytes(8, "little") +
                self.leaf.to_bytes(8, "little") + self.payload)

    @classmethod
    def parse(cls, raw: bytes, block_bytes: int) -> "AppendMessage":
        if len(raw) != 17 + block_bytes:
            raise ValueError("APPEND message has the wrong size")
        return cls(raw[0] == 1, int.from_bytes(raw[1:9], "little"),
                   int.from_bytes(raw[9:17], "little"), raw[17:])

    @classmethod
    def dummy(cls, block_bytes: int) -> "AppendMessage":
        return cls(True, 0, 0, bytes(block_bytes))


class CpuPort:
    """CPU-side endpoint: message -> ciphertext -> DDR frame."""

    def __init__(self, session: SecureSession, block_bytes: int):
        self._session = session
        self._encoder = CommandEncoder()
        self.block_bytes = block_bytes
        self.frames_sent = 0

    def send(self, command: SdimmCommand, message) -> DdrFrame:
        ciphertext, tag = self._session.encrypt_upstream(message.serialize())
        self.frames_sent += 1
        counter = (self._session.upstream_counter - 1).to_bytes(8, "little")
        return self._encoder.encode(command, counter + tag + ciphertext)

    def send_probe(self) -> DdrFrame:
        self.frames_sent += 1
        return self._encoder.encode(SdimmCommand.PROBE)

    def send_fetch_result(self) -> DdrFrame:
        self.frames_sent += 1
        return self._encoder.encode(SdimmCommand.FETCH_RESULT)

    def receive_result(self, ciphertext_frame: bytes) -> ResultMessage:
        counter = int.from_bytes(ciphertext_frame[:8], "little")
        tag = ciphertext_frame[8:16]
        plaintext = self._session.decrypt_downstream(
            ciphertext_frame[16:], tag, counter)
        return ResultMessage.parse(plaintext, self.block_bytes)


class SdimmPort:
    """Buffer-side endpoint: DDR frame -> plaintext -> buffer operation.

    Wraps one :class:`IndependentBuffer`; the pending result is buffered
    until the CPU's PROBE/FETCH_RESULT pair collects it, exactly as a DDR
    slave that cannot initiate transfers must behave.
    """

    def __init__(self, buffer: IndependentBuffer, session: SecureSession):
        self.buffer = buffer
        self._session = session
        self._encoder = CommandEncoder()
        self._pending_result: Optional[bytes] = None
        self._highest_counter = -1
        self.frames_handled = 0

    def handle(self, frame: DdrFrame) -> Optional[bytes]:
        """Process one frame; returns response bytes for short reads."""
        self.frames_handled += 1
        command, payload, _ = self._encoder.decode(frame)
        if command is SdimmCommand.PROBE:
            return b"\x01" if self._pending_result is not None else b"\x00"
        if command is SdimmCommand.FETCH_RESULT:
            if self._pending_result is None:
                raise LookupError("FETCH_RESULT with no pending response")
            result, self._pending_result = self._pending_result, None
            return result
        plaintext = self._decrypt(payload)
        if command is SdimmCommand.ACCESS:
            self._handle_access(plaintext)
            return None
        if command is SdimmCommand.APPEND:
            self._handle_append(plaintext)
            return None
        raise ValueError(f"unsupported command {command}")

    def _decrypt(self, payload: bytes) -> bytes:
        counter = int.from_bytes(payload[:8], "little")
        if counter <= self._highest_counter:
            raise ReplayError(f"message counter {counter} already seen "
                              f"(highest: {self._highest_counter})")
        tag = payload[8:16]
        plaintext = self._session.decrypt_upstream(payload[16:], tag,
                                                   counter)
        self._highest_counter = counter
        return plaintext

    def _handle_access(self, plaintext: bytes) -> None:
        message = AccessMessage.parse(plaintext, self.buffer.oram.block_bytes)
        data = message.payload if message.op is Op.WRITE else None
        outcome = self.buffer.access(message.address, message.leaf,
                                     message.op, data)
        stays_local = outcome.moved_block is None
        dummy = message.op is Op.WRITE and stays_local
        result = ResultMessage(
            payload=bytes(len(message.payload)) if dummy else outcome.data,
            new_leaf=outcome.new_global_leaf,
            is_dummy=dummy)
        ciphertext, tag = self._session.encrypt_downstream(
            result.serialize())
        counter = (self._session.downstream_counter - 1).to_bytes(8,
                                                                  "little")
        self._pending_result = counter + tag + ciphertext

    def _handle_append(self, plaintext: bytes) -> None:
        message = AppendMessage.parse(plaintext,
                                      self.buffer.oram.block_bytes)
        if message.is_dummy:
            self.buffer.append(None)
        else:
            self.buffer.append(Block(message.address, message.leaf,
                                     message.payload))


class WiredIndependentProtocol:
    """The Independent protocol with every byte travelling as DDR frames.

    Functionally equivalent to
    :class:`~repro.core.independent.IndependentProtocol`, but the CPU and
    the buffers communicate exclusively through encrypted, Table I-framed
    messages — the executable proof that the protocol fits the legacy DDR
    interface with no new pins.
    """

    def __init__(self, global_levels: int, sdimm_count: int,
                 block_bytes: int = 64, stash_capacity: int = 200,
                 seed: int = 2018):
        from repro.crypto.session import (CertificateAuthority,
                                          establish_session)
        from repro.oram.posmap import PositionMap
        from repro.utils.rng import DeterministicRng

        rng = DeterministicRng(seed, "wired-independent")
        authority = CertificateAuthority()
        self.block_bytes = block_bytes
        self.cpu_ports = []
        self.sdimm_ports = []
        for index in range(sdimm_count):
            cpu_session, buffer_session = establish_session(
                index, rng.random_bytes(16), rng.random_bytes(16),
                authority)
            buffer = IndependentBuffer(
                sdimm_id=index, total_sdimms=sdimm_count,
                global_levels=global_levels,
                blocks_per_bucket=4, block_bytes=block_bytes,
                stash_capacity=stash_capacity,
                transfer_queue_capacity=128, drain_probability=0.05,
                rng=rng)
            self.cpu_ports.append(CpuPort(cpu_session, block_bytes))
            self.sdimm_ports.append(SdimmPort(buffer, buffer_session))
        leaf_count = (self.sdimm_ports[0].buffer.oram.geometry.leaf_count *
                      sdimm_count)
        self.posmap = PositionMap(leaf_count, rng.child("posmap"))
        self.probes_sent = 0

    def read(self, address: int) -> bytes:
        """Oblivious read, every byte as encrypted DDR frames."""
        return self._access(address, Op.READ, bytes(self.block_bytes))

    def write(self, address: int, data: bytes) -> None:
        """Oblivious write, every byte as encrypted DDR frames."""
        self._access(address, Op.WRITE, data)

    def _access(self, address: int, op: Op, payload: bytes) -> bytes:
        old_leaf = self.posmap.lookup(address)
        owner = self.sdimm_ports[0].buffer.owner_of(old_leaf)
        cpu = self.cpu_ports[owner]
        port = self.sdimm_ports[owner]

        frame = cpu.send(SdimmCommand.ACCESS,
                         AccessMessage(address, old_leaf, op, payload))
        port.handle(frame)
        # PROBE until ready (immediate here; the timing tier models delay)
        while port.handle(cpu.send_probe()) != b"\x01":
            self.probes_sent += 1
        raw = port.handle(cpu.send_fetch_result())
        result = cpu.receive_result(raw)
        self.posmap.set(address, result.new_leaf)

        # APPEND one block to every SDIMM; the real one to the new owner.
        new_owner = self.sdimm_ports[0].buffer.owner_of(result.new_leaf)
        moved = not result.is_dummy and new_owner != owner
        for index, target in enumerate(self.sdimm_ports):
            if index == new_owner and moved:  # reprolint: disable=SEC003 -- new_owner derives from the fresh remap leaf; every SDIMM receives an identically shaped APPEND frame and real-vs-dummy sits under the link encryption, so the branch is invisible on the bus
                message = AppendMessage(False, address, result.new_leaf,
                                        result.payload if op is Op.READ
                                        else payload)
            else:
                message = AppendMessage.dummy(self.block_bytes)
            target.handle(self.cpu_ports[index].send(SdimmCommand.APPEND,
                                                     message))
        return result.payload
