"""The Split ORAM protocol (Section III-D).

Every bucket of one logical tree is bit-sliced across N SDIMMs: each SDIMM
stores 1/N of every data block, 1/N of every tag and leaf ID, 1/N of the
shared write counter, and its *own* MAC over its own slice (the N-fold MAC
overhead the paper accepts).  One access proceeds as:

1. FETCH_DATA — each SDIMM pulls its data slices of the whole path into its
   local stash.  Data never crosses the main channel.
2. Metadata reads — each SDIMM returns its metadata slices (tag/leaf slices
   plus its plaintext counter slice) to the CPU.
3. The CPU merges slices, reconstructs tags/leaves/counters, and locates
   the requested block; its *shadow stash* mirrors the SDIMM stashes
   index-for-index but holds only tags.
4. FETCH_STASH(index) — each SDIMM returns that stash slot's data slice;
   the CPU merges and decrypts.
5. RECEIVE_LIST — the CPU ships the eviction plan (which stash indices go
   to which path bucket slots), fresh metadata slices, the reassembled old
   counters (needed by the buffers to decrypt their fetched slices), and
   the updated slice of the accessed block.  Each SDIMM re-encrypts,
   re-MACs, and writes its slices back; both sides discard dummy and placed
   entries identically, keeping the stashes aligned.

Stash state inside the buffer chip is trusted SRAM, so slices live there in
plaintext once the counters arrive; DRAM only ever sees ciphertext.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.commands import SdimmCommand
from repro.core.secure_buffer import LinkRecorder
from repro.crypto.ctr import CounterModeCipher
from repro.crypto.mac import MacError, PmmacAuthenticator
from repro.obs.tracer import (
    CATEGORY_PROTOCOL,
    NULL_TRACER,
    StepClock,
    Tracer,
)
from repro.oram.bucket import Block
from repro.oram.posmap import PositionMap
from repro.oram.path_oram import Op
from repro.oram.stash import Stash
from repro.oram.tree import TreeGeometry
from repro.utils.bitops import (
    bit_slice,
    merge_bit_slices,
    merge_bits_round_robin,
    split_bits_round_robin,
)
from repro.utils.rng import DeterministicRng

#: Serialized metadata entry per block slot: 8-byte tag + 8-byte leaf.
_META_ENTRY_BYTES = 16
#: Tag marking a dummy slot, matching repro.oram.bucket.DUMMY_TAG.
_DUMMY_TAG = (1 << 64) - 1


class SplitIntegrityError(Exception):
    """A slice failed its per-SDIMM MAC or desynchronized the counter chain.

    Structured fields mirror :class:`repro.oram.integrity.IntegrityError`
    so failure records treat both uniformly: ``bucket`` is the logical
    bucket index, ``way`` the SDIMM slice that failed (None for merged
    checks), ``kind`` is ``"mac"`` or ``"counter"``.
    """

    def __init__(self, message: str, bucket: Optional[int] = None,
                 way: Optional[int] = None, kind: str = "mac"):
        super().__init__(message)
        self.bucket = bucket
        self.way = way
        self.kind = kind


#: Bit width of the shared bucket counter whose slices the SDIMMs store.
_COUNTER_BITS = 32


@dataclass
class _StoreCell:
    """One bucket's slice as it sits in untrusted DRAM.

    Only this way's *slice* of the shared counter is stored (the paper:
    "half the counter"); the CPU reassembles the full value from all ways.
    """

    counter_slice: int
    metadata_ciphertext: bytes
    data_ciphertexts: List[bytes]
    mac: bytes


@dataclass
class _StashSlice:
    """One stash slot inside a buffer: ciphertext until counters arrive."""

    plaintext: Optional[bytes] = None
    ciphertext: Optional[bytes] = None
    origin_bucket: Optional[int] = None


@dataclass
class _ShadowEntry:
    """The CPU's view of the same stash slot: tag-level only."""

    address: Optional[int]   # None = dummy slot
    leaf: int = 0


@dataclass
class BucketMetadata:
    """Merged metadata of one bucket, as reconstructed by the CPU."""

    tags: List[int]
    leaves: List[int]
    counter: int


class SplitBuffer:
    """One SDIMM's secure buffer holding slice ``way`` of every bucket."""

    def __init__(self, way: int, ways: int, geometry: TreeGeometry,
                 blocks_per_bucket: int, block_bytes: int, key: bytes,
                 record_trace: bool = False):
        if block_bytes % ways:
            raise ValueError("block size must divide evenly across ways")
        self.way = way
        self.ways = ways
        self.geometry = geometry
        self.blocks_per_bucket = blocks_per_bucket
        self.block_bytes = block_bytes
        self.slice_bytes = block_bytes // ways
        self.meta_slice_bytes = (blocks_per_bucket * _META_ENTRY_BYTES) // ways
        self._cipher = CounterModeCipher(key + bytes([way]))
        self._mac = PmmacAuthenticator(key + bytes([way]))
        self._store: Dict[int, _StoreCell] = {}
        self.stash: List[_StashSlice] = []
        self.local_line_transfers = 0
        self.writes = 0
        self.record_trace = record_trace
        #: what a probe on this DIMM's internal bus sees: (kind, bucket)
        self.bucket_trace: List[Tuple[str, int]] = []

    # ------------------------------------------------------------------
    # Step 1: FETCH_DATA
    # ------------------------------------------------------------------

    def fetch_data(self, leaf: int) -> None:
        """Pull this way's data slices of the whole path into the stash."""
        for bucket in self.geometry.path(leaf):
            if self.record_trace:
                self.bucket_trace.append(("read", bucket))
            cell = self._store.get(bucket)
            for slot in range(self.blocks_per_bucket):
                entry = _StashSlice(origin_bucket=bucket)
                if cell is None:
                    entry.plaintext = bytes(self.slice_bytes)
                else:
                    entry.ciphertext = cell.data_ciphertexts[slot]
                self.stash.append(entry)
                self.local_line_transfers += 1

    # ------------------------------------------------------------------
    # Step 2: metadata reads (regular RAS/CAS, data returns to the CPU)
    # ------------------------------------------------------------------

    def read_metadata_slice(self, bucket: int) -> Tuple[int,
                                                        Optional[bytes]]:
        """(plaintext counter slice, metadata-slice *ciphertext*).

        The slice MAC is verified here with this way's own counter slice —
        the per-SDIMM PMMAC of the Split design.  The metadata travels to
        the CPU still encrypted: only after merging every way's counter
        slice can anyone (the CPU, which holds the keys) derive the pad.
        ``None`` ciphertext marks a never-written bucket.
        """
        cell = self._store.get(bucket)
        if cell is None:
            return 0, None
        payload = cell.metadata_ciphertext + b"".join(cell.data_ciphertexts)
        try:
            self._mac.verify(self._mac_index(bucket), cell.counter_slice,
                             payload, cell.mac)
        except MacError as error:
            raise SplitIntegrityError(
                f"bucket {bucket} slice failed its way-{self.way} MAC: "
                f"{error}", bucket=bucket, way=self.way,
                kind="mac") from error
        return cell.counter_slice, cell.metadata_ciphertext

    def _mac_index(self, bucket: int) -> int:
        return bucket * self.ways + self.way

    # ------------------------------------------------------------------
    # Step 4: FETCH_STASH
    # ------------------------------------------------------------------

    def fetch_stash(self, index: int, counter_hints: Dict[int, int]) -> bytes:
        """Return the data slice at ``index``, decrypting via the hint map.

        ``counter_hints`` maps origin bucket -> full counter; within one
        access the CPU has just reassembled them from the metadata reads.
        """
        entry = self.stash[index]
        self._materialize(entry, counter_hints)
        return entry.plaintext

    def _materialize(self, entry: _StashSlice,
                     counters: Dict[int, int]) -> None:
        if entry.plaintext is not None:
            return
        counter = counters[entry.origin_bucket]
        entry.plaintext = self._cipher.decrypt(entry.ciphertext,
                                               entry.origin_bucket, counter)
        entry.ciphertext = None

    # ------------------------------------------------------------------
    # Step 5: RECEIVE_LIST
    # ------------------------------------------------------------------

    def receive_list(self, path_buckets: List[int],
                     placements: List[List[Optional[int]]],
                     metadata_slices: List[bytes],
                     new_counters: List[int],
                     old_counters: Dict[int, int],
                     updated_index: int, updated_slice: bytes,
                     discard_indices: List[int]) -> None:
        """Execute the CPU's write-back order.

        ``placements[i][slot]`` names the stash index whose slice fills
        ``path_buckets[i]``'s ``slot`` (None = dummy).  All referenced
        slices are decrypted with ``old_counters``, re-encrypted under the
        bucket's ``new_counters[i]``, and stored with fresh MACs.  Placed
        and discarded indices are then removed, keeping this stash aligned
        with the CPU's shadow.
        """
        # Decrypt everything fetched this access while its counters are at
        # hand; leftovers from earlier accesses are already plaintext, so
        # after every RECEIVE_LIST the whole (trusted-SRAM) stash is clear.
        for entry in self.stash:
            self._materialize(entry, old_counters)
        if 0 <= updated_index < len(self.stash):
            entry = self.stash[updated_index]
            entry.plaintext = updated_slice
            entry.ciphertext = None
        consumed = set(discard_indices)
        for bucket, slots, metadata, counter in zip(
                path_buckets, placements, metadata_slices, new_counters):
            if self.record_trace:
                self.bucket_trace.append(("write", bucket))
            data_ciphertexts = []
            for slot_index in slots:
                if slot_index is None:
                    plaintext = bytes(self.slice_bytes)
                else:
                    entry = self.stash[slot_index]
                    self._materialize(entry, old_counters)
                    plaintext = entry.plaintext
                    consumed.add(slot_index)
                data_ciphertexts.append(
                    self._cipher.encrypt(plaintext, bucket, counter))
            metadata_ciphertext = self._cipher.encrypt(metadata, bucket,
                                                       counter)
            counter_slice = split_bits_round_robin(
                counter, _COUNTER_BITS, self.ways)[self.way]
            payload = metadata_ciphertext + b"".join(data_ciphertexts)
            mac = self._mac.tag(self._mac_index(bucket), counter_slice,
                                payload)
            self._store[bucket] = _StoreCell(counter_slice,
                                             metadata_ciphertext,
                                             data_ciphertexts, mac)
            self.writes += 1
        self.stash = [entry for index, entry in enumerate(self.stash)
                      if index not in consumed]

    # ------------------------------------------------------------------

    def tamper_bucket(self, bucket: int) -> None:
        """Adversarial hook: flip a bit of a stored data slice."""
        cell = self._store[bucket]
        first = cell.data_ciphertexts[0]
        cell.data_ciphertexts[0] = bytes([first[0] ^ 1]) + first[1:]

    def snapshot_bucket(self, bucket: int) -> Optional[_StoreCell]:
        """Copy one bucket's raw cell (fault-injection save point)."""
        cell = self._store.get(bucket)
        if cell is None:
            return None
        return _StoreCell(cell.counter_slice, cell.metadata_ciphertext,
                          list(cell.data_ciphertexts), cell.mac)

    def restore_bucket(self, bucket: int,
                       cell: Optional[_StoreCell]) -> None:
        """Put back a snapshot (a transient fault healing on re-read)."""
        if cell is None:
            self._store.pop(bucket, None)
        else:
            self._store[bucket] = cell

    @property
    def stash_occupancy(self) -> int:
        return len(self.stash)


class SplitProtocol:
    """CPU-side orchestration of the Split design over N SDIMMs."""

    def __init__(self, levels: int, ways: int = 2,
                 blocks_per_bucket: int = 4, block_bytes: int = 64,
                 stash_capacity: int = 200, seed: int = 2018,
                 key: bytes = b"split-protocol-key",
                 record_link: bool = False,
                 record_trace: bool = False,
                 tracer: Tracer = NULL_TRACER,
                 trace_lane: str = "split"):
        self.geometry = TreeGeometry(levels)
        self.tracer = tracer
        self.trace_lane = trace_lane
        self.clock = StepClock()
        self.ways = ways
        self.blocks_per_bucket = blocks_per_bucket
        self.block_bytes = block_bytes
        self.stash_capacity = stash_capacity
        rng = DeterministicRng(seed, "split")
        self.rng = rng
        self.posmap = PositionMap(self.geometry.leaf_count,
                                  rng.child("posmap"))
        self.buffers: List[SplitBuffer] = [
            SplitBuffer(way, ways, self.geometry, blocks_per_bucket,
                        block_bytes, key, record_trace=record_trace)
            for way in range(ways)
        ]
        # The CPU holds the same per-way keys (it is in the TCB): it
        # decrypts metadata slices itself once the merged counter is known.
        self._way_ciphers = [CounterModeCipher(key + bytes([way]))
                             for way in range(ways)]
        # Trusted expected-counter chain (the PMMAC recursion stand-in):
        # a replayed stale slice desynchronizes the merged counter, which
        # this mirror catches even though each slice's own MAC verifies.
        self._expected_counters: Dict[int, int] = {}
        self.shadow: List[_ShadowEntry] = []
        self.link = LinkRecorder(enabled=record_link, tracer=tracer,
                                 lane=f"{trace_lane}-link", clock=self.clock)
        self.accesses = 0
        self.stash_peak = 0
        #: Optional resilience handle (repro.faults.recovery) consulted when
        #: a metadata merge fails verification; None = fail fast (today's
        #: behavior, byte-identical when no handle is attached).
        self.resilience = None

    def attach_resilience(self, handle) -> None:
        """Install a retry/backoff policy for failed metadata merges."""
        self.resilience = handle

    # ------------------------------------------------------------------

    def read(self, address: int) -> bytes:
        """Oblivious read of one block."""
        return self.access(address, Op.READ)

    def write(self, address: int, data: bytes) -> None:
        """Oblivious write of one block."""
        self.access(address, Op.WRITE, data)

    def access(self, address: int, op: Op,
               data: Optional[bytes] = None,
               override_new_leaf: Optional[int] = None,
               remove_after: bool = False) -> bytes:
        """One end-to-end request through the Split protocol.

        ``override_new_leaf`` lets an outer protocol (the Independent layer
        of INDEP-SPLIT) dictate the remap target; ``remove_after`` drops the
        accessed block from both stash sides instead of writing it back —
        the block is migrating to another partition.
        """
        if op is Op.WRITE and (data is None or
                               len(data) != self.block_bytes):
            raise ValueError("write requires a full-size payload")
        self.accesses += 1
        old_leaf = self.posmap.lookup(address)
        if override_new_leaf is not None:
            new_leaf = override_new_leaf
        else:
            new_leaf = self.rng.random_leaf(self.geometry.leaf_count)
        self.posmap.set(address, new_leaf)
        path = self.geometry.path(old_leaf)

        # Step 1: FETCH_DATA to every buffer (command only on the channel).
        start = self.clock.now
        for way, buffer in enumerate(self.buffers):
            self.link.up(SdimmCommand.FETCH_DATA, way, 0)
            buffer.fetch_data(old_leaf)
        self._phase_span("FETCH_DATA", start)

        # Step 2+3: metadata reads; merge slices and extend the shadow.
        start = self.clock.now
        old_counters: Dict[int, int] = {}
        for bucket in path:
            metadata = self._read_bucket_metadata(bucket)
            old_counters[bucket] = metadata.counter
            for slot in range(self.blocks_per_bucket):
                tag = metadata.tags[slot]
                if tag == _DUMMY_TAG:
                    self.shadow.append(_ShadowEntry(None))
                else:
                    self.shadow.append(_ShadowEntry(tag,
                                                    metadata.leaves[slot]))
        self._phase_span("METADATA", start)

        # Step 3b: find the requested block among the real tags.
        found_index = None
        for index, entry in enumerate(self.shadow):
            if entry.address == address:
                found_index = index
                break
        if found_index is None:
            self.shadow.append(_ShadowEntry(address, new_leaf))
            found_index = len(self.shadow) - 1
            for buffer in self.buffers:
                buffer.stash.append(_StashSlice(
                    plaintext=bytes(buffer.slice_bytes)))
        else:
            self.shadow[found_index].leaf = new_leaf

        # Step 4: FETCH_STASH from every buffer; merge the data slices.
        start = self.clock.now
        slices = []
        for way, buffer in enumerate(self.buffers):
            self.link.up(SdimmCommand.FETCH_STASH, way, 8)
            piece = buffer.fetch_stash(found_index, old_counters)
            self.link.down(SdimmCommand.FETCH_STASH, way,
                           buffer.slice_bytes)
            slices.append(piece)
        self._phase_span("FETCH_STASH", start)
        merged = merge_bit_slices(slices)
        result = merged
        if op is Op.WRITE:
            merged = data
        if remove_after:
            # The block is leaving this partition: turn its slot into a
            # dummy so the write-back discards it on every side at once.
            self.shadow[found_index].address = None

        # Step 5: plan eviction on the shadow, ship RECEIVE_LIST.
        start = self.clock.now
        self._write_back(path, old_counters, found_index, merged)
        self._phase_span("RECEIVE_LIST", start)
        self.stash_peak = max(self.stash_peak, len(self.shadow))
        return result

    def _phase_span(self, name: str, start: int) -> None:
        """Close one protocol-phase span over the logical link clock."""
        if self.tracer.enabled:
            self.tracer.span(name, CATEGORY_PROTOCOL, self.trace_lane,
                             start, max(start + 1, self.clock.now))

    def dummy_access(self) -> None:
        """A structurally identical access serving no block (queue drains).

        Fetches a uniformly random path, reads metadata, fetches one stash
        slot, and writes the path back — on the bus it looks exactly like a
        real access.
        """
        leaf = self.rng.random_leaf(self.geometry.leaf_count)
        path = self.geometry.path(leaf)
        self.accesses += 1
        start = self.clock.now
        for way, buffer in enumerate(self.buffers):
            self.link.up(SdimmCommand.FETCH_DATA, way, 0)
            buffer.fetch_data(leaf)
        self._phase_span("FETCH_DATA", start)
        base_index = len(self.shadow)
        start = self.clock.now
        old_counters: Dict[int, int] = {}
        for bucket in path:
            metadata = self._read_bucket_metadata(bucket)
            old_counters[bucket] = metadata.counter
            for slot in range(self.blocks_per_bucket):
                tag = metadata.tags[slot]
                if tag == _DUMMY_TAG:
                    self.shadow.append(_ShadowEntry(None))
                else:
                    self.shadow.append(_ShadowEntry(tag,
                                                    metadata.leaves[slot]))
        self._phase_span("METADATA", start)
        start = self.clock.now
        for way, buffer in enumerate(self.buffers):
            self.link.up(SdimmCommand.FETCH_STASH, way, 8)
            piece = buffer.fetch_stash(base_index, old_counters)
            self.link.down(SdimmCommand.FETCH_STASH, way,
                           buffer.slice_bytes)
        self._phase_span("FETCH_STASH", start)
        start = self.clock.now
        self._write_back(path, old_counters, -1, bytes(self.block_bytes))
        self._phase_span("RECEIVE_LIST", start)
        self.stash_peak = max(self.stash_peak, len(self.shadow))

    # ------------------------------------------------------------------

    def _read_bucket_metadata(self, bucket: int) -> BucketMetadata:
        """Merge one bucket's metadata, retrying on verification failure.

        Without a resilience handle this is exactly ``_merge_metadata`` —
        the first failure propagates.  With one, each failed merge is
        reported to the handle, which decides (by retry budget and backoff)
        whether to re-issue the metadata read.  A retry replays the same
        per-way link events as the original read, so on the bus it is
        indistinguishable from any other metadata fetch.
        """
        handle = self.resilience
        if handle is None:
            return self._merge_metadata(bucket)
        attempt = 0
        while True:
            try:
                return self._merge_metadata(bucket)
            except SplitIntegrityError as error:
                attempt += 1
                if not handle.on_integrity_failure("split", bucket, error,
                                                   attempt):
                    raise

    def _merge_metadata(self, bucket: int) -> BucketMetadata:
        """Reassemble one bucket's metadata from every way's slice.

        Each way returns its plaintext counter slice and its *encrypted*
        metadata slice; the CPU merges the counter slices round-robin into
        the full counter, derives each way's pad, decrypts, and interleaves
        the plaintext slices (Section III-D steps 2-3).
        """
        counter_slices = []
        ciphertexts = []
        for buffer in self.buffers:
            counter_slice, ciphertext = buffer.read_metadata_slice(bucket)
            counter_slices.append(counter_slice)
            ciphertexts.append(ciphertext)
            self.link.down(None, buffer.way,
                           (len(ciphertext) if ciphertext else
                            self.buffers[0].meta_slice_bytes) + 8)
        counter = merge_bits_round_robin(counter_slices, _COUNTER_BITS)
        expected = self._expected_counters.get(bucket, 0)
        if counter != expected:
            raise SplitIntegrityError(
                f"bucket {bucket} counter {counter} does not match the "
                f"trusted chain ({expected}): stale or desynchronized "
                f"slices", bucket=bucket, kind="counter")
        metadata_slices = []
        for buffer, ciphertext in zip(self.buffers, ciphertexts):
            if ciphertext is None:
                metadata_slices.append(
                    self._empty_metadata_slice(buffer.way))
            else:
                metadata_slices.append(
                    self._way_ciphers[buffer.way].decrypt(
                        ciphertext, bucket, counter))
        full = merge_bit_slices(metadata_slices)
        tags = []
        leaves = []
        for slot in range(self.blocks_per_bucket):
            offset = slot * _META_ENTRY_BYTES
            tags.append(int.from_bytes(full[offset:offset + 8], "little"))
            leaves.append(int.from_bytes(full[offset + 8:offset + 16],
                                         "little"))
        return BucketMetadata(tags, leaves, counter)

    def _empty_metadata_slice(self, way: int) -> bytes:
        full = b""
        for _ in range(self.blocks_per_bucket):
            full += _DUMMY_TAG.to_bytes(8, "little") + bytes(8)
        return bit_slice(full, way, self.ways)

    def _write_back(self, path: List[int], old_counters: Dict[int, int],
                    updated_index: int, updated_data: bytes) -> None:
        # Greedy eviction over the shadow (tags only), reusing the standard
        # Path ORAM planner via throwaway Block records.
        planner = Stash(self.stash_capacity)
        index_of = {}
        for index, entry in enumerate(self.shadow):
            if entry.address is not None:
                planner.add(Block(entry.address, entry.leaf, b""))
                index_of[entry.address] = index
        leaf = self._leaf_of_path(path)
        placement = planner.plan_eviction(self.geometry, leaf,
                                          self.blocks_per_bucket)

        placements: List[List[Optional[int]]] = []
        metadata_full: List[bytes] = []
        new_counters: List[int] = []
        for level, bucket in enumerate(path):
            slots: List[Optional[int]] = []
            chosen = placement.get(level, [])
            metadata = b""
            for slot in range(self.blocks_per_bucket):
                if slot < len(chosen):
                    block = chosen[slot]
                    slots.append(index_of[block.address])
                    metadata += block.address.to_bytes(8, "little")
                    metadata += block.leaf.to_bytes(8, "little")
                else:
                    slots.append(None)
                    metadata += _DUMMY_TAG.to_bytes(8, "little") + bytes(8)
            placements.append(slots)
            metadata_full.append(metadata)
            new_counters.append(old_counters[bucket] + 1)
            self._expected_counters[bucket] = new_counters[-1]

        placed = {index for slots in placements for index in slots
                  if index is not None}
        discard = [index for index, entry in enumerate(self.shadow)
                   if entry.address is None]

        for way, buffer in enumerate(self.buffers):
            metadata_slices = [bit_slice(metadata, way, self.ways)
                               for metadata in metadata_full]
            updated_slice = bit_slice(updated_data, way, self.ways)
            payload = sum(len(m) for m in metadata_slices) + \
                len(updated_slice) + 8 * len(path)
            self.link.up(SdimmCommand.RECEIVE_LIST, way, payload)
            buffer.receive_list(path, placements, metadata_slices,
                                new_counters, old_counters,
                                updated_index, updated_slice, discard)

        consumed = placed | set(discard)
        self.shadow = [entry for index, entry in enumerate(self.shadow)
                       if index not in consumed]

    def _leaf_of_path(self, path: List[int]) -> int:
        leaf_bucket = path[-1]
        return self.geometry.position_of(leaf_bucket)

    # ------------------------------------------------------------------

    @property
    def shadow_occupancy(self) -> int:
        return len(self.shadow)

    def stashes_aligned(self) -> bool:
        """Invariant: every buffer stash matches the shadow, slot for slot."""
        return all(len(buffer.stash) == len(self.shadow)
                   for buffer in self.buffers)
