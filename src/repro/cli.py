"""Command-line interface: ``python -m repro <subcommand>``.

Subcommands:

* ``simulate`` — run one (design, workload) pair through the cycle-level
  simulator and print the measurements.
* ``compare``  — run the full design space of Figures 8/9 on one workload.
* ``sweep``    — run every SPEC-like workload for one design.
* ``overflow`` — print the Figure 13 transfer-queue analysis.
* ``coresident`` — non-secure VM latency next to each secure design.
* ``trace``    — generate a synthetic miss trace to a file.
* ``audit-trace`` — replay runs with different address streams and check
  that the adversary-visible trace is indistinguishable (Section III-G).
* ``faults``   — run a seeded fault-injection campaign against a secure
  protocol and report detection / recovery / quarantine accounting
  (``docs/faults.md``); exits non-zero if any injected integrity fault
  escaped detection.
* ``serve-bench`` — open-loop rate sweep through the serving layer
  (``docs/serving.md``): bounded admission, batching with read
  coalescing, p50/p95/p99/p999 sojourn times, shed rates against the
  Section IV-C M/M/1/K prediction; exits non-zero if any report shows
  the queue-depth bound violated.
* ``serve-sharded`` — the sharded serving tier: leaf-MSB consistent-hash
  routing to one worker process per shard, per-shard bounded admission,
  aggregate SLO folding, transfer-queue migration accounting, and an
  optional quarantined (degraded) shard; same exit contract as
  ``serve-bench``, applied per shard.
* ``perf-report`` — summarize a performance-ledger trajectory file and
  optionally render the static HTML dashboard (``docs/observability.md``).
* ``perf-gate``  — re-measure the fixed gate suite and compare against
  the committed trajectory; exits non-zero on any cycle drift or a
  wall-clock regression beyond tolerance.
* ``cache``   — ``stats`` inventories the on-disk run cache (entries,
  staleness vs the current code fingerprint, disk bytes); ``prune``
  deletes entries recorded under other fingerprints.
* ``designs`` / ``workloads`` — list what is available.
* ``lint``     — run reprolint, the repository's own static analyzer
  (obliviousness / constant-time / determinism invariants).

``simulate --trace-out FILE`` additionally records every layer's events
through a :class:`~repro.obs.tracer.CollectingTracer` and writes a
Chrome trace-event JSON loadable in Perfetto (``docs/observability.md``).

Every measuring verb accepts ``--ledger FILE`` (default:
``$REPRO_LEDGER``; ``REPRO_NO_LEDGER=1`` silences both) and appends one
append-only JSONL record per executed point — the performance-ledger
trail ``perf-gate`` and ``perf-report`` consume.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.queueing import transfer_queue_overflow_probability
from repro.analysis.random_walk import displacement_exceedance_probability
from repro.config import DesignPoint, table2_config
from repro.energy.dram_power import DramEnergyModel
from repro.sim.stats import RunResult
from repro.sim.system import run_simulation
from repro.workloads.spec import get_profile, profile_names
from repro.workloads.synthetic import generate_trace
from repro.workloads.trace import save_trace


def _design(name: str) -> DesignPoint:
    for design in DesignPoint:
        if design.value == name:
            return design
    known = ", ".join(design.value for design in DesignPoint)
    raise argparse.ArgumentTypeError(f"unknown design {name!r}; "
                                     f"choose from {known}")


def _print_result(result: RunResult, energy_pj: Optional[float]) -> None:
    print(f"design              {result.design}")
    print(f"workload            {result.workload}")
    print(f"execution cycles    {result.execution_cycles:,}")
    print(f"LLC misses          {result.miss_count:,} "
          f"(hit rate {result.llc_hit_rate:.1%})")
    print(f"accessORAMs/miss    {result.accessorams_per_miss:.2f}")
    print(f"mean miss latency   {result.miss_latency.mean:,.0f} cycles "
          f"(p95 {result.miss_latency.percentile(0.95):,})")
    print(f"main-bus lines      {result.main_bus_lines:,}")
    if energy_pj is not None:
        print(f"memory energy       {energy_pj / 1e6:,.1f} uJ")


def _run(design: DesignPoint, workload: str, channels: int,
         trace_length: int, seed: int, tracer=None,
         window_cycles: int = 0):
    from repro.obs.tracer import NULL_TRACER

    config = table2_config(design, channels=channels, seed=seed)
    result = run_simulation(config, workload, trace_length=trace_length,
                            trace_seed=seed,
                            tracer=tracer if tracer is not None
                            else NULL_TRACER,
                            window_cycles=window_cycles)
    model = DramEnergyModel(config.power, config.timing,
                            config.organization,
                            config.cpu.cpu_cycles_per_mem_cycle)
    return result, model.report(result).total_pj, config


def _ledger(args):
    """The run ledger this invocation appends to (or ``None``)."""
    from repro.obs.ledger import resolve_ledger

    return resolve_ledger(getattr(args, "ledger", None))


def cmd_simulate(args) -> int:
    """Handle ``repro simulate``."""
    from repro.obs.ledger import host_clock_s

    tracer = None
    if args.trace_out or args.hotspots:
        from repro.obs.tracer import CollectingTracer

        tracer = CollectingTracer()
    started = host_clock_s()
    if args.trace_file:
        from repro.obs.tracer import NULL_TRACER
        from repro.sim.system import run_trace_file

        config = table2_config(args.design, channels=args.channels,
                               seed=args.seed)
        result = run_trace_file(config, args.trace_file, mlp=args.mlp,
                                tracer=tracer if tracer is not None
                                else NULL_TRACER)
        model = DramEnergyModel(config.power, config.timing,
                                config.organization,
                                config.cpu.cpu_cycles_per_mem_cycle)
        energy = model.report(result).total_pj
    else:
        result, energy, config = _run(args.design, args.workload,
                                      args.channels, args.trace_length,
                                      args.seed, tracer=tracer,
                                      window_cycles=args.window_cycles)
    wall_ms = (host_clock_s() - started) * 1000.0
    ledger = _ledger(args)
    if ledger is not None and not args.trace_file:
        # trace-file replays have no canonical point identity (the
        # point is a local file), so they stay off the trajectory
        from repro.obs.ledger import (config_digest_hex, make_record,
                                      simulation_core)

        core = simulation_core(args.design.value, args.workload, result,
                               config_digest_hex(config),
                               channels=args.channels,
                               trace_length=args.trace_length,
                               seed=args.seed)
        ledger.append(make_record("simulate", core, wall_ms=wall_ms))
    if args.trace_out:
        from repro.obs.chrome import write_chrome_trace

        count = write_chrome_trace(args.trace_out, tracer.events)
        print(f"wrote {count} trace events to {args.trace_out}",
              file=sys.stderr)
    if args.hotspots:
        from repro.obs.profile import hotspots, render_hotspots

        print(render_hotspots(hotspots(tracer.events,
                                       top_n=args.hotspots)))
    if args.json:
        import json

        summary = result.to_dict()
        summary["memory_energy_pj"] = energy
        if args.window_cycles:
            summary["windows"] = result.windows
        print(json.dumps(summary, indent=2))
        return 0
    _print_result(result, energy)
    if args.window_cycles:
        print(f"windows             {len(result.windows)} x "
              f"{args.window_cycles:,} cycles")
    return 0


def cmd_audit_trace(args) -> int:
    """Handle ``repro audit-trace``; exit 0 only if the audit is sound.

    Sound means every secure design's adversary trace is indistinguishable
    across address streams *and* the negative control (the non-secure
    baseline, plus an injected-leak protocol run when ``--inject-leak``)
    is correctly flagged as distinguishable — proving the comparison has
    teeth rather than vacuously passing.
    """
    from repro.obs.audit import (audit_address_streams,
                                 audit_independent_protocol, run_full_audit)

    results = run_full_audit(misses=args.misses, accesses=args.accesses,
                             seed=args.seed, with_faults=args.with_faults)
    if args.inject_leak:
        stream_a, stream_b = audit_address_streams(args.accesses,
                                                   seed=args.seed,
                                                   span=1 << 10)
        leak = audit_independent_protocol(stream_a, stream_b,
                                          inject_leak=True)
        leak.name = "negative-control:" + leak.name
        results.append(leak)
    sound = True
    for result in results:
        expected_fail = result.name.startswith("negative-control:")
        ok = (not result.passed) if expected_fail else result.passed
        sound = sound and ok
        marker = "ok  " if ok else "BAD "
        print(f"{marker} {result.describe()}")
    print("audit sound" if sound else "audit UNSOUND", file=sys.stderr)
    return 0 if sound else 1


def cmd_faults(args) -> int:
    """Handle ``repro faults``.

    Runs one seeded fault-injection campaign per requested (design, seed)
    pair — through :func:`~repro.faults.run_campaign_sweep`, so points
    run in parallel with ``--jobs`` and hit the persistent run cache —
    and prints a detection/recovery summary.  Exit code 0 means every
    campaign finished without a traceback *and* every applied integrity
    fault was detected by a verifier; anything less is a 1.
    """
    from repro.faults import CampaignSpec, run_campaign_sweep

    designs = (list(args.design) if args.design
               else ["independent", "split", "indep-split"])
    seeds = list(args.seeds) if args.seeds else [args.seed]
    specs = [CampaignSpec(design=design, accesses=args.accesses,
                          levels=args.levels, sites=args.sites, seed=seed,
                          bit_flips=args.bit_flips, replays=args.replays,
                          stuck_cells=args.stuck_cells,
                          link_drops=args.link_drops,
                          link_duplicates=args.link_duplicates,
                          link_delays=args.link_delays,
                          buffer_stalls=args.buffer_stalls,
                          max_retries=args.retries)
             for design in designs for seed in seeds]
    reports = run_campaign_sweep(specs, jobs=args.jobs,
                                 cache=_sweep_cache(args))
    ledger = _ledger(args)
    if ledger is not None:
        from repro.obs.ledger import campaign_core, make_record
        from repro.parallel.fingerprint import code_fingerprint

        fingerprint = code_fingerprint()
        for report in reports:
            ledger.append(make_record(
                "faults", campaign_core(report, fingerprint=fingerprint),
                jobs=args.jobs))
    import json

    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            json.dump(reports, handle, sort_keys=True,
                      separators=(",", ":"))
            handle.write("\n")
        print(f"wrote {len(reports)} campaign reports to {args.report}",
              file=sys.stderr)
    if args.json:
        print(json.dumps(reports, indent=2, sort_keys=True))
    else:
        print(f"{'design':12s} {'seed':>6s} {'inj':>4s} {'det':>4s} "
              f"{'rate':>6s} {'retry':>6s} {'quar':>5s} {'status':>10s}")
        for report in reports:
            detection = report["detection"]["integrity"]
            resilience = report["resilience"]
            status = ("complete" if report["completed"]
                      else "terminal")
            print(f"{report['spec']['design']:12s} "
                  f"{report['spec']['seed']:6d} "
                  f"{detection['applied']:4d} {detection['detected']:4d} "
                  f"{detection['rate']:6.2f} {resilience['retries']:6d} "
                  f"{resilience['quarantines']:5d} {status:>10s}")
    clean = all(report["all_detected"] for report in reports)
    print("all injected integrity faults detected" if clean
          else "UNDETECTED integrity faults escaped a verifier",
          file=sys.stderr)
    return 0 if clean else 1


def cmd_serve_bench(args) -> int:
    """Handle ``repro serve-bench``.

    One :class:`~repro.serve.ServeSpec` per (design, rate) pair, swept
    through :func:`~repro.serve.run_serve_sweep` — cached, parallel with
    ``--jobs``, byte-identical reports either way.  Exit code 0 requires
    every report's peak queue depth to respect the admission bound (the
    backpressure contract: overload sheds, it never buffers unboundedly).
    """
    import json

    from repro.serve import ServeSpec, canonical_json, render_table
    from repro.serve import run_serve_sweep

    designs = list(args.design) if args.design else ["split"]
    rates = list(args.rates) if args.rates else [0.002, 0.008, 0.02]
    specs = [ServeSpec(design=design, levels=args.levels, sites=args.sites,
                       rate=rate, requests=args.requests,
                       capacity=args.capacity, batch=args.batch,
                       tenants=args.tenants, arrival=args.arrival,
                       zipf_exponent=args.zipf,
                       write_fraction=args.write_fraction,
                       profile=args.profile, seed=args.seed,
                       adapt=args.adapt, slo_p99=args.slo_target,
                       window_ticks=args.window_ticks,
                       declassified=tuple(args.declassify or ()))
             for design in designs for rate in rates]
    meta: List[dict] = []
    reports = run_serve_sweep(specs, jobs=args.jobs,
                              cache=_sweep_cache(args), meta=meta)
    ledger = _ledger(args)
    if ledger is not None:
        from repro.obs.ledger import make_record, serve_core
        from repro.parallel.fingerprint import code_fingerprint

        fingerprint = code_fingerprint()
        for report, info in zip(reports, meta):
            ledger.append(make_record(
                "serve", serve_core(report, fingerprint=fingerprint),
                wall_ms=float(info["wall_ms"]), jobs=args.jobs,
                from_cache=bool(info["from_cache"])))
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            handle.write("[")
            handle.write(",".join(canonical_json(report)
                                  for report in reports))
            handle.write("]\n")
        print(f"wrote {len(reports)} serving reports to {args.report}",
              file=sys.stderr)
    if args.json:
        print(json.dumps(reports, indent=2, sort_keys=True))
    else:
        for design in designs:
            block = [report for report in reports
                     if report["spec"]["design"] == design]
            print(render_table(block, title=design))
        for report in reports:
            control = report.get("control")
            if not control:
                continue
            spec = report["spec"]
            final = control["final"]
            print(f"  control[{spec['design']} rate={spec['rate']}]: "
                  f"{len(control['decisions'])} decisions, "
                  f"{control['applied']} applied over "
                  f"{control['windows']} windows; final "
                  f"batch={final.get('batch')} limit={final.get('limit')}"
                  + (f" modes={final['modes']}" if "modes" in final
                     else ""))
    bounded = all(report["queue"]["depth_bounded"] for report in reports)
    print("queue depth bounded by K everywhere" if bounded
          else "queue-depth bound VIOLATED", file=sys.stderr)
    return 0 if bounded else 1


def cmd_serve_sharded(args) -> int:
    """Handle ``repro serve-sharded``.

    One :class:`~repro.serve.ShardSpec` per offered rate, fanned out to
    one worker process per shard through
    :func:`~repro.serve.run_sharded`, then folded into one aggregate
    report (``docs/serving.md``).  The ledger gets one ``serve-shard``
    record per shard plus one ``serve-sharded`` record per point.  Exit
    code 0 requires every shard's peak queue depth to respect the
    per-shard admission bound.
    """
    import json

    from repro.serve import (ShardSpec, canonical_json, render_table,
                             run_sharded_sweep)

    rates = list(args.rates) if args.rates else [0.002, 0.008, 0.02]
    quarantined = tuple(args.quarantine_shard or ())
    specs = [ShardSpec(design=args.design, levels=args.levels,
                       sites=args.sites, rate=rate, requests=args.requests,
                       capacity=args.capacity, batch=args.batch,
                       tenants=args.tenants, arrival=args.arrival,
                       zipf_exponent=args.zipf,
                       write_fraction=args.write_fraction,
                       profile=args.profile, seed=args.seed,
                       shards=args.shards, subtrees=args.subtrees,
                       quarantined=quarantined,
                       adapt=args.adapt, slo_p99=args.slo_target,
                       window_ticks=args.window_ticks,
                       declassified=tuple(args.declassify or ()))
             for rate in rates]
    meta: List[dict] = []
    reports = run_sharded_sweep(specs, jobs=args.jobs,
                                cache=_sweep_cache(args), meta=meta)
    ledger = _ledger(args)
    if ledger is not None:
        from repro.obs.ledger import make_record, serve_core
        from repro.parallel.fingerprint import code_fingerprint

        fingerprint = code_fingerprint()
        for report, info in zip(reports, meta):
            for shard_report in report["shards"]:
                core = serve_core(shard_report, fingerprint=fingerprint)
                core["point"]["shard"] = shard_report["spec"].get("shard")
                ledger.append(make_record(
                    "serve-shard", core, jobs=args.jobs,
                    from_cache=bool(info["from_cache"])))
            core = serve_core(report, fingerprint=fingerprint)
            core["point"]["shards"] = report["spec"].get("shards")
            ledger.append(make_record(
                "serve-sharded", core, wall_ms=float(info["wall_ms"]),
                jobs=args.jobs, from_cache=bool(info["from_cache"])))
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            handle.write("[")
            handle.write(",".join(canonical_json(report)
                                  for report in reports))
            handle.write("]\n")
        print(f"wrote {len(reports)} sharded reports to {args.report}",
              file=sys.stderr)
    if args.json:
        print(json.dumps(reports, indent=2, sort_keys=True))
    else:
        for report in reports:
            rate = report["spec"]["rate"]
            print(render_table(
                report["shards"],
                title=f"{args.design} rate={rate} "
                      f"(per shard; {args.shards} shards)"))
            degraded = report["degraded"]
            if degraded["quarantined"]:
                print(f"  degraded: shards {degraded['quarantined']} "
                      f"quarantined, "
                      f"{degraded['degraded_accesses']} degraded accesses, "
                      f"{degraded['lost_appends']} lost appends")
            migration = report["migration"]
            print(f"  migration: {migration['migrations']} cross-shard "
                  f"moves ({migration['migration_fraction']:.1%}, "
                  f"expected {migration['expected_migration_fraction']:.1%}"
                  f"), {migration['overflows']} overflows")
            control = report.get("control")
            if control:
                finals = (control.get("migration") or {}).get("final", {})
                print(f"  control: {control['decisions']} decisions, "
                      f"{control['applied']} applied (shards + migration); "
                      f"final drain p per shard {finals}")
    bounded = all(report["queue"]["depth_bounded"] for report in reports)
    print("queue depth bounded by K on every shard" if bounded
          else "queue-depth bound VIOLATED", file=sys.stderr)
    return 0 if bounded else 1


def _sweep_cache(args):
    """Build the run cache a sweep/compare invocation asked for."""
    if args.no_cache:
        return None
    from repro.parallel import RunCache, default_cache_dir

    return RunCache(args.cache_dir or default_cache_dir())


def _append_sweep_records(ledger, kind: str, outcome) -> None:
    """One ledger record per executed sweep point (submission order)."""
    if ledger is None:
        return
    from repro.obs.ledger import (config_digest_hex, make_record,
                                  simulation_core)
    from repro.parallel.fingerprint import code_fingerprint

    fingerprint = code_fingerprint()
    for entry in outcome.results:
        point = entry.point
        core = simulation_core(point.design.value, point.workload,
                               entry.result,
                               config_digest_hex(point.system_config()),
                               channels=point.channels,
                               trace_length=point.trace_length,
                               seed=point.seed,
                               window_policy=point.window_policy,
                               fingerprint=fingerprint)
        ledger.append(make_record(kind, core, wall_ms=entry.wall_ms,
                                  jobs=outcome.jobs,
                                  from_cache=entry.from_cache))


def cmd_compare(args) -> int:
    """Handle ``repro compare``."""
    from repro.parallel import SweepPoint, run_sweep

    designs: List[DesignPoint] = [DesignPoint.NONSECURE,
                                  DesignPoint.FREECURSIVE]
    if args.channels == 1:
        designs += [DesignPoint.INDEP_2, DesignPoint.SPLIT_2]
    else:
        designs += [DesignPoint.INDEP_4, DesignPoint.SPLIT_4,
                    DesignPoint.INDEP_SPLIT]
    points = [SweepPoint(design, args.workload, channels=args.channels,
                         trace_length=args.trace_length, seed=args.seed)
              for design in designs]
    outcome = run_sweep(points, jobs=args.jobs, cache=_sweep_cache(args))
    _append_sweep_records(_ledger(args), "compare", outcome)
    print(f"{'design':12s} {'cycles':>12s} {'vs freec':>9s} "
          f"{'latency':>9s} {'energy uJ':>10s} {'wall ms':>8s}")
    baseline = None
    for entry in outcome.results:
        result = entry.result
        design = entry.point.design
        config = entry.point.system_config()
        model = DramEnergyModel(config.power, config.timing,
                                config.organization,
                                config.cpu.cpu_cycles_per_mem_cycle)
        energy = model.report(result).total_pj
        if design is DesignPoint.FREECURSIVE:
            baseline = result
        normalized = (f"{result.normalized_time(baseline):8.3f}"
                      if baseline else "       -")
        wall = "   cache" if entry.from_cache else f"{entry.wall_ms:8.0f}"
        print(f"{design.value:12s} {result.execution_cycles:12,} "
              f"{normalized:>9s} {result.miss_latency.mean:9.0f} "
              f"{energy / 1e6:10.1f} {wall}")
    return 0


def cmd_sweep(args) -> int:
    """Handle ``repro sweep``.

    The table is produced from the merged sweep outcome, so it is
    byte-identical for any ``--jobs`` value (the determinism contract
    ``tests/test_parallel_sweep.py`` pins).
    """
    from repro.parallel import SweepPoint, run_sweep

    points = [SweepPoint(args.design, workload, channels=args.channels,
                         trace_length=args.trace_length, seed=args.seed)
              for workload in profile_names()]
    outcome = run_sweep(points, jobs=args.jobs, cache=_sweep_cache(args))
    _append_sweep_records(_ledger(args), "sweep", outcome)
    print(f"{'workload':12s} {'cycles':>12s} {'hit':>5s} {'ap/ms':>6s} "
          f"{'latency':>9s}")
    for entry in outcome.results:
        result = entry.result
        print(f"{entry.point.workload:12s} {result.execution_cycles:12,} "
              f"{result.llc_hit_rate:5.2f} "
              f"{result.accessorams_per_miss:6.2f} "
              f"{result.miss_latency.mean:9.0f}")
    return 0


def cmd_overflow(args) -> int:
    """Handle ``repro overflow``."""
    print("Figure 13a: P(queue displacement > size) after "
          f"{args.steps:,} steps")
    for size in (16, 64, 256, 1024):
        probability = displacement_exceedance_probability(size, args.steps)
        print(f"  {size:5d}  {probability:7.1%}")
    print("\nFigure 13b: M/M/1/K overflow probability")
    print("  K \\ p " + "".join(f"{p:>10.2f}" for p in
                                (0.01, 0.05, 0.1, 0.2)))
    for capacity in (8, 32, 128):
        row = "".join(
            f"{transfer_queue_overflow_probability(p, capacity):>10.1e}"
            for p in (0.01, 0.05, 0.1, 0.2))
        print(f"  {capacity:5d}{row}")
    return 0


def cmd_coresident(args) -> int:
    """Handle ``repro coresident``."""
    from repro.sim.coresident import CoResidentExperiment

    designs = (DesignPoint.NONSECURE, DesignPoint.FREECURSIVE,
               DesignPoint.SPLIT_2, DesignPoint.INDEP_2)
    print(f"{'design under load':18s} {'VM latency':>11s} {'vs idle':>9s}")
    floor = None
    for design in designs:
        result = CoResidentExperiment(design, seed=args.seed).run(
            oram_requests=args.requests, vm_requests=args.requests)
        if floor is None:
            floor = result.mean_latency
        print(f"{design.value:18s} {result.mean_latency:11.0f} "
              f"{result.mean_latency / floor:9.1f}x")
    return 0


def cmd_trace(args) -> int:
    """Handle ``repro trace``."""
    records = generate_trace(get_profile(args.workload), args.length,
                             seed=args.seed)
    count = save_trace(records, args.output)
    print(f"wrote {count} records of {args.workload!r} to {args.output}")
    return 0


def cmd_lint(args) -> int:
    """Handle ``repro lint``; exit codes 0 clean / 1 findings / 2 errors."""
    from repro.lint import (apply_baseline, lint_paths, load_baseline,
                            render_baseline, render_json, render_rule_list,
                            render_sarif, render_text)

    if args.list_rules:
        print(render_rule_list())
        return 0
    selected = (args.select.split(",") if args.select else None)
    try:
        result = lint_paths(args.paths, selected_rules=selected,
                            jobs=args.jobs, cache_dir=args.cache_dir,
                            warn_unused_suppressions=args.warn_unused_suppressions)
    except FileNotFoundError as error:
        print(f"reprolint: no such path: {error.args[0]}", file=sys.stderr)
        return 2
    except KeyError as error:
        print(f"reprolint: unknown rule {error.args[0]!r} "
              f"(see --list-rules)", file=sys.stderr)
        return 2
    if args.write_baseline:
        with open(args.write_baseline, "w", encoding="utf-8") as handle:
            handle.write(render_baseline(result))
        print(f"reprolint: wrote {len(result.findings)} finding(s) to "
              f"baseline {args.write_baseline}")
        return 0 if not result.errors else 2
    if args.baseline:
        try:
            with open(args.baseline, "r", encoding="utf-8") as handle:
                baseline = load_baseline(handle.read())
        except (OSError, ValueError) as error:
            print(f"reprolint: cannot read baseline {args.baseline}: "
                  f"{error}", file=sys.stderr)
            return 2
        apply_baseline(result, baseline)
    if args.format == "json":
        print(render_json(result))
    elif args.format == "sarif":
        print(render_sarif(result))
    else:
        print(render_text(result))
    return result.exit_code()


#: Default committed trajectory file (relative to the invoking CWD —
#: CI and the repo Makefile run from the repository root).
DEFAULT_TRAJECTORY = "benchmarks/results/perf_trajectory.jsonl"


def cmd_perf_report(args) -> int:
    """Handle ``repro perf-report``: summarize a trajectory, render HTML."""
    from repro.obs.ledger import Ledger
    from repro.obs.regress import render_dashboard, trajectory_summary

    ledger = Ledger(args.trajectory)
    records = ledger.read()
    if not records and ledger.skipped_lines == 0:
        print(f"perf-report: no records in {args.trajectory}",
              file=sys.stderr)
    if ledger.skipped_lines:
        print(f"perf-report: skipped {ledger.skipped_lines} corrupt "
              f"line(s)", file=sys.stderr)
    print(trajectory_summary(records))
    if args.html:
        html_text = render_dashboard(records)
        with open(args.html, "w", encoding="utf-8") as handle:
            handle.write(html_text)
        print(f"wrote dashboard to {args.html}", file=sys.stderr)
    return 0


def cmd_perf_gate(args) -> int:
    """Handle ``repro perf-gate``: exit 0 only when the tree holds its
    recorded performance trajectory.

    The optional ``--html`` dashboard renders the *committed* trajectory
    (not the fresh records), so its bytes are identical across
    ``--jobs`` values and cached replays.
    """
    from repro.obs.ledger import Ledger
    from repro.obs.regress import render_dashboard, run_gate

    report, records, wall_s = run_gate(args.trajectory, jobs=args.jobs,
                                       cache=_sweep_cache(args),
                                       ledger=_ledger(args),
                                       wall_tolerance=args.wall_tolerance)
    print(report.render())
    print(f"perf-gate: measured {len(records)} point(s) in {wall_s:.1f}s",
          file=sys.stderr)
    if args.html:
        html_text = render_dashboard(Ledger(args.trajectory).read())
        with open(args.html, "w", encoding="utf-8") as handle:
            handle.write(html_text)
        print(f"wrote dashboard to {args.html}", file=sys.stderr)
    return 0 if report.ok else 1


def cmd_cache(args) -> int:
    """Handle ``repro cache``: inspect or prune the on-disk run cache.

    ``stats`` prints the inventory (entries, how many are stale under
    the current code fingerprint, disk bytes); ``prune`` deletes the
    stale entries and reports how many went.
    """
    from repro.parallel import RunCache, default_cache_dir

    directory = args.cache_dir or default_cache_dir()
    cache = RunCache(directory)
    if args.cache_command == "stats":
        stats = cache.disk_stats()
        print(f"cache directory: {directory}")
        print(f"entries:         {stats['entries']}")
        print(f"stale:           {stats['stale']} "
              "(different code fingerprint; prune reclaims these)")
        print(f"unreadable:      {stats['unreadable']}")
        print(f"disk bytes:      {stats['bytes']}")
        return 0
    removed = cache.prune_stale()
    remaining = cache.entry_count()
    print(f"cache prune: removed {removed} stale entr"
          f"{'y' if removed == 1 else 'ies'} from {directory}; "
          f"{remaining} current entr"
          f"{'y' if remaining == 1 else 'ies'} kept")
    return 0


def cmd_designs(_args) -> int:
    """Handle ``repro designs``."""
    for design in DesignPoint:
        print(design.value)
    return 0


def cmd_workloads(_args) -> int:
    """Handle ``repro workloads``."""
    for name in profile_names():
        profile = get_profile(name)
        print(f"{name:12s} footprint={profile.footprint_bytes >> 20:4d}MiB "
              f"mlp={profile.mlp:2d} writes={profile.write_fraction:.0%}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Secure DIMM (HPCA 2018) reproduction toolkit")
    subparsers = parser.add_subparsers(dest="command", required=True)

    def common(sub):
        sub.add_argument("--channels", type=int, default=1,
                         choices=(1, 2))
        sub.add_argument("--trace-length", type=int, default=4000)
        sub.add_argument("--seed", type=int, default=2018)

    def concurrency(sub):
        sub.add_argument("--jobs", type=int, default=1, metavar="N",
                         help="worker processes for independent points "
                              "(1 = in-process serial; output is "
                              "identical for any value)")
        sub.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="persistent run-cache directory (default: "
                              "$REPRO_CACHE_DIR or ./.repro-cache)")
        sub.add_argument("--no-cache", action="store_true",
                         help="always re-simulate; do not read or write "
                              "the run cache")

    def ledger_opt(sub):
        sub.add_argument("--ledger", default=None, metavar="FILE",
                         help="append one performance-ledger record per "
                              "executed point to this JSONL file "
                              "(default: $REPRO_LEDGER; "
                              "REPRO_NO_LEDGER=1 disables)")

    def adaptive_opts(sub):
        sub.add_argument("--adapt", action="store_true",
                         help="close the loop: admission/batch (and, with "
                              "--declassify, morph) controllers re-plan at "
                              "every window boundary; decisions ride in "
                              "the report's control section")
        sub.add_argument("--slo-target", type=int, default=0,
                         metavar="TICKS",
                         help="p99 sojourn target the admission controller "
                              "steers toward (0 = default)")
        sub.add_argument("--window-ticks", type=int, default=0,
                         metavar="TICKS",
                         help="control window length in ticks "
                              "(0 = default)")
        sub.add_argument("--declassify", action="append", default=None,
                         metavar="TENANT",
                         help="allow TENANT to morph into non-secure mode "
                              "under sustained load (repeatable; "
                              "requires --adapt)")

    simulate = subparsers.add_parser(
        "simulate", help="run one design on one workload")
    simulate.add_argument("design", type=_design)
    simulate.add_argument("workload", nargs="?", default="mcf")
    simulate.add_argument("--json", action="store_true",
                          help="emit machine-readable results")
    simulate.add_argument("--trace-file", default=None,
                          help="replay a saved trace instead of a profile")
    simulate.add_argument("--mlp", type=int, default=4,
                          help="miss window for --trace-file replays")
    simulate.add_argument("--trace-out", default=None, metavar="FILE",
                          help="write a Chrome trace-event JSON "
                               "(load in Perfetto / chrome://tracing)")
    simulate.add_argument("--hotspots", type=int, default=0, metavar="N",
                          help="print the top-N exclusive-cycle hotspot "
                               "table (implies trace collection)")
    simulate.add_argument("--window-cycles", type=int, default=0,
                          metavar="C",
                          help="fold metrics into tumbling C-cycle "
                               "windows (0 = off); --json includes the "
                               "snapshots")
    common(simulate)
    ledger_opt(simulate)
    simulate.set_defaults(handler=cmd_simulate)

    compare = subparsers.add_parser(
        "compare", help="run the whole design space on one workload")
    compare.add_argument("workload")
    common(compare)
    concurrency(compare)
    ledger_opt(compare)
    compare.set_defaults(handler=cmd_compare)

    sweep = subparsers.add_parser(
        "sweep", help="run every workload for one design")
    sweep.add_argument("design", type=_design)
    common(sweep)
    concurrency(sweep)
    ledger_opt(sweep)
    sweep.set_defaults(handler=cmd_sweep)

    overflow = subparsers.add_parser(
        "overflow", help="print the Figure 13 queue analysis")
    overflow.add_argument("--steps", type=int, default=800_000)
    overflow.set_defaults(handler=cmd_overflow)

    coresident = subparsers.add_parser(
        "coresident", help="VM latency next to each secure design")
    coresident.add_argument("--requests", type=int, default=120)
    coresident.add_argument("--seed", type=int, default=2018)
    coresident.set_defaults(handler=cmd_coresident)

    trace = subparsers.add_parser(
        "trace", help="generate a synthetic miss trace file")
    trace.add_argument("workload")
    trace.add_argument("output")
    trace.add_argument("--length", type=int, default=10_000)
    trace.add_argument("--seed", type=int, default=2018)
    trace.set_defaults(handler=cmd_trace)

    audit = subparsers.add_parser(
        "audit-trace",
        help="check adversary-trace indistinguishability across "
             "address streams (the threat model, executed)")
    audit.add_argument("--misses", type=int, default=12,
                       help="misses per timing-tier run")
    audit.add_argument("--accesses", type=int, default=48,
                       help="accesses per functional-tier run")
    audit.add_argument("--seed", type=int, default=2018)
    audit.add_argument("--inject-leak", action="store_true",
                       help="also run the LeakyLink fault injection and "
                            "require the audit to catch it")
    audit.add_argument("--with-faults", action="store_true",
                       help="also audit faulted runs: the same fault plan "
                            "applied to two address streams must leave "
                            "secure designs bus-indistinguishable")
    audit.set_defaults(handler=cmd_audit_trace)

    faults = subparsers.add_parser(
        "faults",
        help="run seeded fault-injection campaigns and report "
             "detection / recovery / quarantine accounting")
    faults.add_argument("--design", action="append", default=None,
                        choices=("independent", "split", "indep-split"),
                        help="protocol to fault (repeatable; default: all)")
    faults.add_argument("--accesses", type=int, default=64)
    faults.add_argument("--levels", type=int, default=5)
    faults.add_argument("--sites", type=int, default=2,
                        help="SDIMM count (independent) or group count "
                             "(indep-split)")
    faults.add_argument("--seed", type=int, default=2018)
    faults.add_argument("--seeds", type=int, nargs="+", default=None,
                        metavar="N", help="sweep several seeds "
                        "(overrides --seed)")
    faults.add_argument("--bit-flips", type=int, default=2)
    faults.add_argument("--replays", type=int, default=1)
    faults.add_argument("--stuck-cells", type=int, default=0)
    faults.add_argument("--link-drops", type=int, default=1)
    faults.add_argument("--link-duplicates", type=int, default=1)
    faults.add_argument("--link-delays", type=int, default=1)
    faults.add_argument("--buffer-stalls", type=int, default=1)
    faults.add_argument("--retries", type=int, default=3,
                        help="retry budget per verified-failed read")
    faults.add_argument("--report", default=None, metavar="FILE",
                        help="write the canonical JSON campaign reports "
                             "(byte-identical across replays)")
    faults.add_argument("--json", action="store_true",
                        help="emit machine-readable reports on stdout")
    concurrency(faults)
    ledger_opt(faults)
    faults.set_defaults(handler=cmd_faults)

    serve = subparsers.add_parser(
        "serve-bench",
        help="open-loop serving rate sweep: admission, batching, "
             "backpressure, SLO quantiles (docs/serving.md)")
    serve.add_argument("--design", action="append", default=None,
                       choices=("independent", "split", "indep-split"),
                       help="protocol to serve through (repeatable; "
                            "default: split)")
    serve.add_argument("--rates", type=float, nargs="+", default=None,
                       metavar="R", help="offered rates in requests per "
                       "tick (default: 0.002 0.008 0.02)")
    serve.add_argument("--requests", type=int, default=512,
                       help="offered requests per point")
    serve.add_argument("--capacity", type=int, default=32,
                       help="admission queue capacity K")
    serve.add_argument("--batch", type=int, default=8,
                       help="requests drained per scheduling round")
    serve.add_argument("--tenants", type=int, default=1,
                       help="independent tenant streams sharing the rate")
    serve.add_argument("--arrival", default="poisson",
                       choices=("poisson", "burst", "uniform"))
    serve.add_argument("--zipf", type=float, default=0.0,
                       help="Zipf exponent over each tenant's addresses "
                            "(0 = uniform)")
    serve.add_argument("--write-fraction", type=float, default=0.25)
    serve.add_argument("--profile", default=None,
                       help="borrow a workload profile's locality knobs "
                            "(see `repro workloads`)")
    serve.add_argument("--levels", type=int, default=9)
    serve.add_argument("--sites", type=int, default=2,
                       help="SDIMM count (independent) or group count "
                            "(indep-split)")
    serve.add_argument("--seed", type=int, default=2018)
    serve.add_argument("--report", default=None, metavar="FILE",
                       help="write the canonical JSON reports "
                            "(byte-identical across --jobs and replays)")
    serve.add_argument("--json", action="store_true",
                       help="emit machine-readable reports on stdout")
    adaptive_opts(serve)
    concurrency(serve)
    ledger_opt(serve)
    serve.set_defaults(handler=cmd_serve_bench)

    sharded = subparsers.add_parser(
        "serve-sharded",
        help="sharded serving tier: leaf-MSB consistent-hash routing to "
             "one worker process per shard (docs/serving.md)")
    sharded.add_argument("--design", default="independent",
                         choices=("independent", "split", "indep-split"),
                         help="protocol every shard runs "
                              "(default: independent)")
    sharded.add_argument("--shards", type=int, default=2,
                         help="worker shard count (power of two)")
    sharded.add_argument("--subtrees", type=int, default=16,
                         help="leaf-MSB subtrees on the hash ring "
                              "(power of two, >= shards)")
    sharded.add_argument("--quarantine-shard", type=int, action="append",
                         default=None, metavar="S",
                         help="run shard S in degraded quarantine mode "
                              "(repeatable; independent/indep-split only)")
    sharded.add_argument("--rates", type=float, nargs="+", default=None,
                         metavar="R", help="offered rates in requests per "
                         "tick (default: 0.002 0.008 0.02)")
    sharded.add_argument("--requests", type=int, default=512,
                         help="offered requests per point (pre-routing)")
    sharded.add_argument("--capacity", type=int, default=32,
                         help="admission queue capacity K, per shard")
    sharded.add_argument("--batch", type=int, default=8,
                         help="requests drained per scheduling round")
    sharded.add_argument("--tenants", type=int, default=1,
                         help="independent tenant streams sharing the rate")
    sharded.add_argument("--arrival", default="poisson",
                         choices=("poisson", "burst", "uniform"))
    sharded.add_argument("--zipf", type=float, default=0.0,
                         help="Zipf exponent over each tenant's addresses "
                              "(0 = uniform)")
    sharded.add_argument("--write-fraction", type=float, default=0.25)
    sharded.add_argument("--profile", default=None,
                         help="borrow a workload profile's locality knobs "
                              "(see `repro workloads`)")
    sharded.add_argument("--levels", type=int, default=9)
    sharded.add_argument("--sites", type=int, default=2,
                         help="SDIMM count (independent) or group count "
                              "(indep-split), per shard")
    sharded.add_argument("--seed", type=int, default=2018)
    sharded.add_argument("--report", default=None, metavar="FILE",
                         help="write the canonical JSON aggregate reports "
                              "(byte-identical across --jobs and replays)")
    sharded.add_argument("--json", action="store_true",
                         help="emit machine-readable reports on stdout")
    adaptive_opts(sharded)
    concurrency(sharded)
    ledger_opt(sharded)
    sharded.set_defaults(handler=cmd_serve_sharded)

    perf_report = subparsers.add_parser(
        "perf-report",
        help="summarize a performance-ledger trajectory and render the "
             "static HTML dashboard")
    perf_report.add_argument("--trajectory", default=DEFAULT_TRAJECTORY,
                             metavar="FILE",
                             help="ledger JSONL to read (default: "
                                  f"{DEFAULT_TRAJECTORY})")
    perf_report.add_argument("--html", default=None, metavar="FILE",
                             help="write the self-contained dashboard "
                                  "(deterministic bytes)")
    perf_report.set_defaults(handler=cmd_perf_report)

    perf_gate = subparsers.add_parser(
        "perf-gate",
        help="re-measure the gate suite and fail on any drift from the "
             "committed trajectory (cycles exact, wall-clock banded)")
    perf_gate.add_argument("--trajectory", default=DEFAULT_TRAJECTORY,
                           metavar="FILE",
                           help="baseline ledger JSONL (default: "
                                f"{DEFAULT_TRAJECTORY})")
    perf_gate.add_argument("--wall-tolerance", type=float, default=2.5,
                           metavar="X",
                           help="fail when fresh wall-clock exceeds X "
                                "times the recorded baseline on a "
                                "matching host (default: 2.5)")
    perf_gate.add_argument("--html", default=None, metavar="FILE",
                           help="also render the trajectory dashboard")
    concurrency(perf_gate)
    ledger_opt(perf_gate)
    perf_gate.set_defaults(handler=cmd_perf_gate)

    lint = subparsers.add_parser(
        "lint", help="run reprolint over source trees")
    lint.add_argument("paths", nargs="*", default=["src"],
                      help="files or directories to lint (default: src)")
    lint.add_argument("--format", choices=("text", "json", "sarif"),
                      default="text", help="report format")
    lint.add_argument("--select", default=None, metavar="RULES",
                      help="comma-separated rule ids to run (default: all)")
    lint.add_argument("--list-rules", action="store_true",
                      help="describe every registered rule and exit")
    lint.add_argument("--jobs", type=int, default=1, metavar="N",
                      help="lint files in N worker processes "
                           "(output is identical to --jobs 1)")
    lint.add_argument("--cache-dir", default=None, metavar="DIR",
                      help="reuse per-file results keyed on file bytes "
                           "and the analyzer's own fingerprint")
    lint.add_argument("--baseline", default=None, metavar="FILE",
                      help="demote findings recorded in FILE to "
                           "baselined (they no longer fail the run)")
    lint.add_argument("--write-baseline", default=None, metavar="FILE",
                      help="record current findings to FILE and exit 0")
    lint.add_argument("--warn-unused-suppressions", action="store_true",
                      help="report directives that no longer suppress "
                           "anything (LINT001)")
    lint.set_defaults(handler=cmd_lint)

    cache = subparsers.add_parser(
        "cache", help="inspect or prune the on-disk run cache")
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    cache_stats = cache_sub.add_parser(
        "stats", help="entry counts, staleness, and disk usage")
    cache_prune = cache_sub.add_parser(
        "prune", help="delete entries from other code fingerprints")
    for sub in (cache_stats, cache_prune):
        sub.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="cache directory (default: $REPRO_CACHE_DIR "
                              "or ./.repro-cache)")
        sub.set_defaults(handler=cmd_cache)

    subparsers.add_parser("designs", help="list design points") \
        .set_defaults(handler=cmd_designs)
    subparsers.add_parser("workloads", help="list workload profiles") \
        .set_defaults(handler=cmd_workloads)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
