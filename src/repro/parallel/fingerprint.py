"""Code fingerprint: one hash over every source file that can move a run.

The run cache's contract is "a hit equals a re-run".  Simulation results
depend on the *code*, not just the configuration, so the cache key folds
in a digest of the whole ``repro`` package source.  Any committed change
— a timing parameter, a scheduler tweak, a new RNG draw — changes the
fingerprint, every old key becomes unreachable, and the cache cold-starts
instead of serving stale cycles.  (``RunCache.prune_stale`` reclaims the
orphaned entries.)

Hashing the entire package is deliberately coarse: a docstring edit also
invalidates, but a false cold start costs seconds while a false hit
silently corrupts golden-master comparisons.
"""

from __future__ import annotations

import hashlib
import os
from typing import Optional

_cached_fingerprint: Optional[str] = None


def package_root() -> str:
    """Directory of the installed ``repro`` package sources."""
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def code_fingerprint(root: Optional[str] = None) -> str:
    """Hex digest over all ``.py`` files under the package (sorted walk).

    Computed once per process for the default root; the simulator cannot
    change underneath a running interpreter.
    """
    global _cached_fingerprint
    if root is None and _cached_fingerprint is not None:
        return _cached_fingerprint
    base = root if root is not None else package_root()
    digest = hashlib.sha256()
    for directory, subdirs, files in sorted(os.walk(base)):
        subdirs.sort()
        for name in sorted(files):
            if not name.endswith(".py"):
                continue
            path = os.path.join(directory, name)
            relative = os.path.relpath(path, base)
            digest.update(relative.encode())
            digest.update(b"\0")
            with open(path, "rb") as handle:
                digest.update(handle.read())
            digest.update(b"\0")
    fingerprint = digest.hexdigest()
    if root is None:
        _cached_fingerprint = fingerprint
    return fingerprint
