"""Full-fidelity serialization of :class:`RunResult` for the run cache.

:meth:`RunResult.to_dict` is a human-facing *summary* (it collapses the
latency reservoir into two percentiles); the cache needs the opposite — a
lossless round-trip, so a cache hit is indistinguishable from re-running
the simulation.  The only field that does not survive is the latency
reservoir's RNG handle: by the time a result is serialized the run is
over and the reservoir is frozen, so the restored ``LatencyStats`` keeps
its exact samples with ``sample_rng=None``.

The canonical JSON form (sorted keys, no whitespace) doubles as the
content digest input for corruption detection in :mod:`.cache`.
"""

from __future__ import annotations

import json
from typing import Dict

from repro.sim.stats import LatencyStats, RunResult

#: Bump when the serialized shape changes; mismatched entries are misses.
#: 2: RunResult grew ``windows`` (cycle-window time-series snapshots).
SCHEMA_VERSION = 2


def latency_to_dict(latency: LatencyStats) -> Dict[str, object]:
    return {
        "count": latency.count,
        "total": latency.total,
        "maximum": latency.maximum,
        "samples": list(latency.samples),
        "sample_cap": latency.sample_cap,
    }


def latency_from_dict(payload: Dict[str, object]) -> LatencyStats:
    return LatencyStats(
        count=int(payload["count"]),
        total=int(payload["total"]),
        maximum=int(payload["maximum"]),
        samples=[int(value) for value in payload["samples"]],
        sample_cap=int(payload["sample_cap"]),
        sample_rng=None,
    )


def run_result_to_dict(result: RunResult) -> Dict[str, object]:
    """Lossless dictionary form of one run (inverse of
    :func:`run_result_from_dict`)."""
    return {
        "schema": SCHEMA_VERSION,
        "design": result.design,
        "workload": result.workload,
        "execution_cycles": result.execution_cycles,
        "miss_count": result.miss_count,
        "accessoram_count": result.accessoram_count,
        "llc_hit_rate": result.llc_hit_rate,
        "miss_latency": latency_to_dict(result.miss_latency),
        "channel_counters": [dict(entry)
                             for entry in result.channel_counters],
        "on_dimm_counters": [dict(entry)
                             for entry in result.on_dimm_counters],
        "main_bus_lines": result.main_bus_lines,
        "probe_commands": result.probe_commands,
        "drain_accesses": result.drain_accesses,
        "rank_residencies": [dict(entry)
                             for entry in result.rank_residencies],
        "phase_cycles": dict(result.phase_cycles),
        "extras": dict(result.extras),
        "failures": [dict(record) for record in result.failures],
        "windows": [dict(snapshot) for snapshot in result.windows],
    }


def run_result_from_dict(payload: Dict[str, object]) -> RunResult:
    """Rebuild a :class:`RunResult`; raises ``KeyError``/``ValueError`` on
    malformed payloads (the cache maps those to a miss)."""
    if payload.get("schema") != SCHEMA_VERSION:
        raise ValueError(f"unsupported result schema {payload.get('schema')!r}")
    return RunResult(
        design=str(payload["design"]),
        workload=str(payload["workload"]),
        execution_cycles=int(payload["execution_cycles"]),
        miss_count=int(payload["miss_count"]),
        accessoram_count=int(payload["accessoram_count"]),
        llc_hit_rate=float(payload["llc_hit_rate"]),
        miss_latency=latency_from_dict(payload["miss_latency"]),
        channel_counters=[dict(entry)
                          for entry in payload["channel_counters"]],
        on_dimm_counters=[dict(entry)
                          for entry in payload["on_dimm_counters"]],
        main_bus_lines=int(payload["main_bus_lines"]),
        probe_commands=int(payload["probe_commands"]),
        drain_accesses=int(payload["drain_accesses"]),
        rank_residencies=[dict(entry)
                          for entry in payload["rank_residencies"]],
        phase_cycles={str(k): int(v)
                      for k, v in payload["phase_cycles"].items()},
        extras={str(k): float(v) for k, v in payload["extras"].items()},
        # tolerant default: entries written before the resilience layer
        # landed have no failures field (and were clean by construction)
        failures=[dict(record) for record in payload.get("failures", [])],
        windows=[dict(snapshot) for snapshot in payload.get("windows", [])],
    )


def canonical_json(payload: Dict[str, object]) -> str:
    """Deterministic JSON rendering (sorted keys, fixed separators)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))
