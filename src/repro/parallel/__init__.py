"""Parallel sweep execution and the persistent run cache.

Public surface:

* :class:`~repro.parallel.sweep.SweepPoint` /
  :func:`~repro.parallel.sweep.run_sweep` — fan independent simulation
  points over a process pool with deterministic, order-independent
  merging (``docs/performance.md``);
* :class:`~repro.parallel.cache.RunCache` — content-addressed on-disk
  cache keyed on config + workload + seed + trace length + code
  fingerprint;
* :func:`~repro.parallel.fingerprint.code_fingerprint` — the source
  digest that invalidates the cache whenever the simulator changes.
"""

from repro.parallel.cache import (CACHE_DIR_ENV, CachedRun, RunCache,
                                  default_cache_dir)
from repro.parallel.fingerprint import code_fingerprint
from repro.parallel.serialize import (run_result_from_dict,
                                      run_result_to_dict)
from repro.parallel.sweep import (PointResult, SweepOutcome, SweepPoint,
                                  execute_point, fold_metrics, run_sweep)

__all__ = [
    "CACHE_DIR_ENV",
    "CachedRun",
    "PointResult",
    "RunCache",
    "SweepOutcome",
    "SweepPoint",
    "code_fingerprint",
    "default_cache_dir",
    "execute_point",
    "fold_metrics",
    "run_result_from_dict",
    "run_result_to_dict",
    "run_sweep",
]
