"""The sweep engine: fan independent simulation points over processes.

Every figure of the paper is a sweep over (design x workload x
trace-length) points, and each point is an independent, deterministic
simulation — embarrassingly parallel work.  The engine:

* executes points through a **warm** ``multiprocessing`` pool (``jobs``
  workers, kept alive across ``run_sweep`` calls and torn down at
  interpreter exit), falling back to the exact same in-process code path
  when ``jobs <= 1`` or a pool cannot be created (restricted
  environments, missing sem support);
* merges results **by submission index**, never by completion order, so
  the output is bit-identical no matter how the pool interleaves — the
  property the golden-master parity tests pin (and reprolint's DET001
  ``imap_unordered`` check enforces syntactically);
* consults a :class:`~repro.parallel.cache.RunCache` before spawning any
  work, and writes every fresh result back, so repeated sweeps cost one
  disk read per point;
* folds each worker's metrics into a single
  :class:`~repro.obs.metrics.MetricsRegistry` for the caller.

Workers re-derive everything from the :class:`SweepPoint` (a small
picklable description), never from parent state, which is what makes the
serial and parallel paths indistinguishable.
"""

from __future__ import annotations

import time  # host-side wall-clock only; simulated time lives in EventQueue
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import DesignPoint, SystemConfig, table2_config
from repro.obs.metrics import MetricsRegistry
from repro.parallel.cache import RunCache
from repro.parallel.fingerprint import code_fingerprint
from repro.parallel.serialize import (run_result_from_dict,
                                      run_result_to_dict)
from repro.sim.stats import RunResult


@dataclass(frozen=True)
class SweepPoint:
    """One independent simulation request (picklable, hashable).

    ``config`` overrides the default Table II configuration when given —
    tests sweep :func:`~repro.config.small_config` trees this way.
    """

    design: DesignPoint
    workload: str
    channels: int = 1
    trace_length: int = 4000
    seed: int = 2018
    oram_cache_enabled: bool = True
    window_policy: str = "in-order"
    collect_trace: bool = False
    #: tumbling time-series window size in cycles (0 = no windows);
    #: snapshots ride on ``RunResult.windows`` and round-trip the cache
    window_cycles: int = 0
    config: Optional[SystemConfig] = None

    def system_config(self) -> SystemConfig:
        if self.config is not None:
            return self.config
        return table2_config(self.design, channels=self.channels,
                             oram_cache_enabled=self.oram_cache_enabled,
                             seed=self.seed)


@dataclass
class PointResult:
    """One executed (or cache-served) sweep point."""

    point: SweepPoint
    result: RunResult
    from_cache: bool
    wall_ms: float
    chrome_json: Optional[str] = None


@dataclass
class SweepOutcome:
    """Everything one sweep produced, in submission order."""

    results: List[PointResult]
    metrics: MetricsRegistry
    jobs: int
    cache_stats: Dict[str, int] = field(default_factory=dict)

    def run_results(self) -> List[RunResult]:
        return [entry.result for entry in self.results]

    def fold_windows(self) -> MetricsRegistry:
        """Fold every point's time-series windows into one registry.

        Submission order, then window order — deterministic regardless
        of ``jobs`` or cache hits, so the folded view is byte-identical
        serial vs. pool (``tests/test_obs_timeseries.py`` pins it).
        """
        from repro.obs.timeseries import fold_windows

        snapshots: List[Dict[str, object]] = []
        for entry in self.results:
            snapshots.extend(entry.result.windows)
        return fold_windows(snapshots)


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------

def execute_point(point: SweepPoint) -> Dict[str, object]:
    """Run one point; returns a picklable payload.

    Used verbatim by the serial path and by pool workers, which is the
    determinism argument in one line: both paths run *this* function.
    """
    from repro.sim.system import run_simulation

    tracer = None
    started = time.perf_counter()  # reprolint: disable=DET001 -- host wall-clock for throughput metrics, never enters simulated state
    if point.collect_trace:
        from repro.obs.tracer import CollectingTracer

        tracer = CollectingTracer()
    config = point.system_config()
    if tracer is not None:
        result = run_simulation(config, point.workload,
                                trace_length=point.trace_length,
                                trace_seed=point.seed,
                                window_policy=point.window_policy,
                                tracer=tracer,
                                window_cycles=point.window_cycles)
    else:
        result = run_simulation(config, point.workload,
                                trace_length=point.trace_length,
                                trace_seed=point.seed,
                                window_policy=point.window_policy,
                                window_cycles=point.window_cycles)
    wall_ms = (time.perf_counter() - started) * 1000.0  # reprolint: disable=DET001 -- host wall-clock for throughput metrics, never enters simulated state
    chrome_json = None
    worker_metrics = MetricsRegistry()
    worker_metrics.counter("sweep/executed").inc()
    worker_metrics.histogram("sweep/wall_ms").record(int(wall_ms))
    if tracer is not None:
        from repro.obs.chrome import render_chrome_trace

        chrome_json = render_chrome_trace(tracer.events)
        worker_metrics.from_events(tracer.events)
    return {
        "result": run_result_to_dict(result),
        "wall_ms": wall_ms,
        "chrome_json": chrome_json,
        "metrics": worker_metrics.as_dict(),
    }


def _pool_worker(task: Tuple[int, SweepPoint]) -> Tuple[int, Dict[str, object]]:
    index, point = task
    return index, execute_point(point)


# ----------------------------------------------------------------------
# Metrics folding
# ----------------------------------------------------------------------

def fold_metrics(target: MetricsRegistry, payload: Dict[str, object]) -> None:
    """Fold one worker's ``MetricsRegistry.as_dict()`` into ``target``.

    The merge semantics live in
    :func:`repro.obs.metrics.fold_metrics_dict` — shared with the
    time-series window fold so workers and windows merge identically.
    """
    from repro.obs.metrics import fold_metrics_dict

    fold_metrics_dict(target, payload)


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------

def make_pool(jobs: int, initializer=None, initargs=()):
    """A worker pool, or ``None`` when the platform cannot provide one.

    Shared by every fan-out in the tree (sweeps, serve benchmarks, the
    lint runner): one place encodes the "pool or identical serial
    fallback" contract.  ``initializer`` runs once in each worker at
    pool start — the warm-pool layer uses it to resynchronize the A/B
    switch environment (see :func:`_pool_initializer`).
    """
    try:
        import multiprocessing

        return multiprocessing.get_context().Pool(jobs,
                                                  initializer=initializer,
                                                  initargs=initargs)
    except (ImportError, OSError, ValueError):
        return None


#: Backwards-compatible alias (earlier callers imported the private name).
_make_pool = make_pool


# ----------------------------------------------------------------------
# Warm pools: reuse workers across run_sweep calls
# ----------------------------------------------------------------------

#: Live pools keyed by (worker count, A/B switch-env signature).  A
#: benchmark session runs many sweeps back to back; keeping the workers
#: alive amortizes process start-up and lets worker-side memo caches
#: (pattern memos, delta tables) stay warm.  Workers re-derive every
#: result from the pickled :class:`SweepPoint` alone, so a warm worker
#: returns byte-identical payloads to a cold one — the jobs-parity tests
#: pin this.  The signature half of the key is the A/B-toggle guard: a
#: worker forked under ``REPRO_DISABLE_FASTPATH`` (or the reference-core
#: / memo switches) would silently keep running that core after the
#: parent toggled the variable, so a toggle must retire the pool rather
#: than reuse it (``tests/test_parallel_sweep.py`` pins the differential).
_WARM_POOLS: Dict[Tuple[int, Tuple[str, ...]], object] = {}
_ATEXIT_REGISTERED = False


def _pool_initializer(signature: Tuple[str, ...]) -> None:
    """Runs once in every pool worker: re-apply the A/B switch env.

    Fork inherits the parent's *imported module state*, and the switch
    flags are read once at import and copied by value into consumer
    modules — so even a freshly created pool can carry settings computed
    under an environment that no longer holds.  Re-applying the snapshot
    and refreshing the switches makes the worker run exactly the cores
    the signature promises, on every start method.
    """
    import os

    from repro.utils import memo

    for name, value in zip(memo.SWITCH_ENVS, signature):
        if value == "":
            os.environ.pop(name, None)
        else:
            os.environ[name] = value
    memo.refresh_switches()


def warm_pool(jobs: int):
    """The persistent pool for ``jobs`` workers (``None`` if unavailable).

    Pools are created on first use and reused on every later call with
    the same ``jobs`` *and* the same A/B switch-env signature
    (:func:`repro.utils.memo.switch_env_signature`); toggling a switch
    retires the old pool and starts fresh workers under the new setting.
    Pools are torn down at interpreter exit (or explicitly via
    :func:`shutdown_pools`).  Callers must not ``close()`` the returned
    pool; on a worker exception they should hand it to
    :func:`discard_pool` so the next sweep starts from a fresh pool.
    """
    global _ATEXIT_REGISTERED
    from repro.utils.memo import switch_env_signature

    signature = switch_env_signature()
    key = (jobs, signature)
    pool = _WARM_POOLS.get(key)
    if pool is not None:
        return pool
    # a pool for the same jobs under a previous signature is stale by
    # construction — terminate it rather than let it linger
    for stale in [entry for entry in _WARM_POOLS if entry[0] == jobs]:
        _discard_entry(stale)
    pool = _make_pool(jobs, initializer=_pool_initializer,
                      initargs=(signature,))
    if pool is not None:
        _WARM_POOLS[key] = pool
        if not _ATEXIT_REGISTERED:
            import atexit

            atexit.register(shutdown_pools)
            _ATEXIT_REGISTERED = True
    return pool


def _discard_entry(key: Tuple[int, Tuple[str, ...]]) -> None:
    pool = _WARM_POOLS.pop(key, None)
    if pool is not None:
        pool.terminate()
        pool.join()


def discard_pool(jobs: int) -> None:
    """Terminate and forget every warm pool for ``jobs`` (error recovery)."""
    for key in [entry for entry in _WARM_POOLS if entry[0] == jobs]:
        _discard_entry(key)


def shutdown_pools() -> None:
    """Terminate every warm pool (atexit hook; also used by tests)."""
    for key in list(_WARM_POOLS):
        _discard_entry(key)


def run_sweep(points: Sequence[SweepPoint], jobs: int = 1,
              cache: Optional[RunCache] = None) -> SweepOutcome:
    """Execute every point; results come back in submission order.

    ``jobs <= 1`` (or an unavailable pool) degrades to the in-process
    serial path — same worker function, same merge, same output.
    """
    points = list(points)
    metrics = MetricsRegistry()
    metrics.gauge("sweep/jobs").set(max(1, jobs))
    metrics.counter("sweep/points").inc(len(points))
    fingerprint = code_fingerprint() if cache is not None else None

    slots: List[Optional[PointResult]] = [None] * len(points)
    pending: List[Tuple[int, SweepPoint]] = []
    keys: Dict[int, str] = {}

    for index, point in enumerate(points):
        if cache is None:
            pending.append((index, point))
            continue
        key = cache.key_for(point.system_config(), point.workload,
                            point.trace_length, trace_seed=point.seed,
                            window_policy=point.window_policy,
                            collect_trace=point.collect_trace,
                            window_cycles=point.window_cycles,
                            fingerprint=fingerprint)
        keys[index] = key
        cached = cache.get(key)
        if cached is not None:
            metrics.counter("sweep/cache_hits").inc()
            slots[index] = PointResult(point=point, result=cached.result,
                                       from_cache=True, wall_ms=0.0,
                                       chrome_json=cached.chrome_json)
        else:
            metrics.counter("sweep/cache_misses").inc()
            pending.append((index, point))

    payloads: List[Tuple[int, Dict[str, object]]] = []
    pool = warm_pool(jobs) if jobs > 1 and len(pending) > 1 else None
    if pool is None:
        for task in pending:
            payloads.append(_pool_worker(task))
    else:
        try:
            # completion order is nondeterministic; the sorted index-keyed
            # merge below is what makes the sweep order-independent
            for index, payload in pool.imap_unordered(_pool_worker, pending):
                payloads.append((index, payload))
        except BaseException:
            # a raising worker leaves the pool in an unknown state; drop
            # it so the next sweep starts from fresh workers
            discard_pool(jobs)
            raise

    for index, payload in sorted(payloads, key=lambda item: item[0]):
        point = points[index]
        result = run_result_from_dict(payload["result"])
        chrome_json = payload["chrome_json"]
        slots[index] = PointResult(point=point, result=result,
                                   from_cache=False,
                                   wall_ms=float(payload["wall_ms"]),
                                   chrome_json=chrome_json)
        fold_metrics(metrics, payload["metrics"])
        if cache is not None:
            cache.put(keys[index], result, chrome_json=chrome_json,
                      fingerprint=fingerprint)

    results = [entry for entry in slots if entry is not None]
    assert len(results) == len(points), "sweep lost a point"
    return SweepOutcome(results=results, metrics=metrics,
                        jobs=max(1, jobs),
                        cache_stats=cache.stats.as_dict() if cache else {})
