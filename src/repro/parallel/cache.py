"""Content-addressed persistent cache of simulation runs.

Layout: one JSON file per run at ``<dir>/<key[:2]>/<key>.json``, where
``key`` is the SHA-256 of the canonical request description —

* the full :class:`~repro.config.SystemConfig` (every dataclass field,
  recursively, enums by value),
* the workload name, trace length, warm-up record count, trace seed and
  window policy,
* whether the run collected a trace (a traced ``RunResult`` carries
  ``phase_cycles`` and a Chrome export, so it is a different artifact),
* the :func:`~repro.parallel.fingerprint.code_fingerprint` of the
  ``repro`` package sources.

Because the code fingerprint is *inside* the key, a source change makes
every existing entry unreachable — stale cycles can never be served.
Entries additionally embed a digest of their payload; a file that fails
to parse, fails digest verification, or carries an unknown schema is
treated as a miss, deleted, and recomputed (corruption heals itself).

Writes are atomic (temp file + ``os.replace``) so a killed worker never
leaves a half-written entry for the next process to trip over.
"""

from __future__ import annotations

import dataclasses
import hashlib
import hmac
import json
import os
import tempfile
from typing import Dict, Optional

from repro.config import SystemConfig
from repro.parallel.fingerprint import code_fingerprint
from repro.parallel.serialize import (SCHEMA_VERSION, canonical_json,
                                      run_result_from_dict,
                                      run_result_to_dict)
from repro.sim.stats import RunResult

#: Environment override consulted by CLI/benchmark entry points.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Default directory name (relative to the invoking tool's anchor).
DEFAULT_CACHE_DIRNAME = ".repro-cache"


def default_cache_dir(anchor: Optional[str] = None) -> str:
    """Resolve the cache directory: env override, else ``anchor`` dir."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return override
    return os.path.join(anchor or os.getcwd(), DEFAULT_CACHE_DIRNAME)


def _encode_value(value: object) -> object:
    # enums carry .value; anything else must already be JSON-friendly
    return getattr(value, "value", str(value))


def config_digest_payload(config: SystemConfig) -> Dict[str, object]:
    """The configuration as a canonical, JSON-friendly dictionary."""
    return dataclasses.asdict(config)


@dataclasses.dataclass
class CachedRun:
    """One deserialized cache entry."""

    result: RunResult
    chrome_json: Optional[str] = None


@dataclasses.dataclass
class CacheStats:
    """Hit/miss accounting for one :class:`RunCache` instance."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    corruptions: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)


class RunCache:
    """Persistent, content-addressed store of :class:`RunResult` payloads."""

    def __init__(self, directory: str):
        self.directory = directory
        self.stats = CacheStats()

    # -- keys ----------------------------------------------------------

    def key_for(self, config: SystemConfig, workload: str,
                trace_length: int, warmup_records: Optional[int] = None,
                trace_seed: int = 2018, window_policy: str = "in-order",
                collect_trace: bool = False, window_cycles: int = 0,
                fingerprint: Optional[str] = None) -> str:
        """Content hash identifying one simulation request."""
        request = {
            "config": config_digest_payload(config),
            "workload": workload,
            "trace_length": trace_length,
            "warmup_records": warmup_records,
            "trace_seed": trace_seed,
            "window_policy": window_policy,
            "collect_trace": collect_trace,
            "window_cycles": window_cycles,
            "fingerprint": fingerprint if fingerprint is not None
            else code_fingerprint(),
        }
        rendered = json.dumps(request, sort_keys=True,
                              separators=(",", ":"), default=_encode_value)
        return hashlib.sha256(rendered.encode()).hexdigest()

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, key[:2], key + ".json")

    # -- read ----------------------------------------------------------

    def get(self, key: str) -> Optional[CachedRun]:
        """Fetch one entry; corrupt or mismatched files become misses."""
        path = self._path(key)
        try:
            with open(path, "r") as handle:
                entry = json.load(handle)
            if entry.get("schema") != SCHEMA_VERSION:
                raise ValueError("unknown cache schema")
            if entry.get("key") != key:
                raise ValueError("entry/key mismatch")
            payload = entry["result"]
            # integrity check against torn/bit-rotted files, not an
            # authentication boundary — but compare_digest costs nothing
            if not hmac.compare_digest(
                    hashlib.sha256(canonical_json(payload).encode())
                    .hexdigest(),
                    str(entry.get("digest"))):
                raise ValueError("payload digest mismatch")
            result = run_result_from_dict(payload)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (ValueError, KeyError, TypeError, json.JSONDecodeError):
            # corrupt entry: remove it so the rewrite heals the cache
            self.stats.corruptions += 1
            self.stats.misses += 1
            try:
                os.remove(path)
            except OSError:
                pass
            return None
        self.stats.hits += 1
        return CachedRun(result=result, chrome_json=entry.get("chrome_json"))

    # -- write ---------------------------------------------------------

    def put(self, key: str, result: RunResult,
            chrome_json: Optional[str] = None,
            fingerprint: Optional[str] = None) -> str:
        """Store one entry atomically; returns the file path."""
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        payload = run_result_to_dict(result)
        entry = {
            "schema": SCHEMA_VERSION,
            "key": key,
            "fingerprint": fingerprint if fingerprint is not None
            else code_fingerprint(),
            "digest": hashlib.sha256(
                canonical_json(payload).encode()).hexdigest(),
            "result": payload,
        }
        if chrome_json is not None:
            entry["chrome_json"] = chrome_json
        handle, temp_path = tempfile.mkstemp(
            dir=os.path.dirname(path), suffix=".tmp")
        try:
            with os.fdopen(handle, "w") as stream:
                json.dump(entry, stream, sort_keys=True,
                          separators=(",", ":"))
            os.replace(temp_path, path)
        except BaseException:
            try:
                os.remove(temp_path)
            except OSError:
                pass
            raise
        self.stats.writes += 1
        return path

    # -- generic JSON payloads (fault campaigns and friends) -----------

    def get_json(self, key: str) -> Optional[Dict[str, object]]:
        """Fetch a generic JSON payload stored with :meth:`put_json`.

        Same durability contract as :meth:`get`: schema, key, and digest
        are all verified; anything off becomes a miss and the entry is
        deleted so the rewrite heals it.
        """
        path = self._path(key)
        try:
            with open(path, "r") as handle:
                entry = json.load(handle)
            if entry.get("schema") != SCHEMA_VERSION:
                raise ValueError("unknown cache schema")
            if entry.get("key") != key:
                raise ValueError("entry/key mismatch")
            payload = entry["payload"]
            if not hmac.compare_digest(
                    hashlib.sha256(canonical_json(payload).encode())
                    .hexdigest(),
                    str(entry.get("digest"))):
                raise ValueError("payload digest mismatch")
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (ValueError, KeyError, TypeError, json.JSONDecodeError):
            self.stats.corruptions += 1
            self.stats.misses += 1
            try:
                os.remove(path)
            except OSError:
                pass
            return None
        self.stats.hits += 1
        return payload

    def put_json(self, key: str, payload: Dict[str, object],
                 fingerprint: Optional[str] = None) -> str:
        """Store a generic JSON payload atomically; returns the path."""
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        entry = {
            "schema": SCHEMA_VERSION,
            "key": key,
            "fingerprint": fingerprint if fingerprint is not None
            else code_fingerprint(),
            "digest": hashlib.sha256(
                canonical_json(payload).encode()).hexdigest(),
            "payload": payload,
        }
        handle, temp_path = tempfile.mkstemp(
            dir=os.path.dirname(path), suffix=".tmp")
        try:
            with os.fdopen(handle, "w") as stream:
                json.dump(entry, stream, sort_keys=True,
                          separators=(",", ":"))
            os.replace(temp_path, path)
        except BaseException:
            try:
                os.remove(temp_path)
            except OSError:
                pass
            raise
        self.stats.writes += 1
        return path

    # -- maintenance ---------------------------------------------------

    def prune_stale(self, fingerprint: Optional[str] = None) -> int:
        """Delete entries written under a different code fingerprint.

        Stale entries are already unreachable (the fingerprint is part of
        the key); pruning merely reclaims disk.  Returns how many entries
        were removed.
        """
        current = fingerprint if fingerprint is not None \
            else code_fingerprint()
        removed = 0
        if not os.path.isdir(self.directory):
            return 0
        for directory, _, files in sorted(os.walk(self.directory)):
            for name in sorted(files):
                if not name.endswith(".json"):
                    continue
                path = os.path.join(directory, name)
                try:
                    with open(path, "r") as handle:
                        entry = json.load(handle)
                    stale = entry.get("fingerprint") != current
                except (OSError, json.JSONDecodeError):
                    stale = True    # unreadable entries go too
                if stale:
                    try:
                        os.remove(path)
                        removed += 1
                    except OSError:
                        pass
        return removed

    def entry_count(self) -> int:
        """Number of entries currently on disk."""
        if not os.path.isdir(self.directory):
            return 0
        return sum(name.endswith(".json")
                   for _, _, files in os.walk(self.directory)
                   for name in files)

    def disk_stats(self, fingerprint: Optional[str] = None
                   ) -> Dict[str, int]:
        """On-disk inventory: total/stale/unreadable entries and bytes.

        ``stale`` counts entries :meth:`prune_stale` would delete — ones
        written under a different code fingerprint plus unreadable files
        (the latter also reported separately as ``unreadable``).
        """
        current = fingerprint if fingerprint is not None \
            else code_fingerprint()
        entries = stale = unreadable = total_bytes = 0
        if not os.path.isdir(self.directory):
            return {"entries": 0, "stale": 0, "unreadable": 0, "bytes": 0}
        for directory, _, files in sorted(os.walk(self.directory)):
            for name in sorted(files):
                if not name.endswith(".json"):
                    continue
                path = os.path.join(directory, name)
                entries += 1
                try:
                    total_bytes += os.path.getsize(path)
                    with open(path, "r") as handle:
                        entry = json.load(handle)
                except (OSError, json.JSONDecodeError):
                    stale += 1
                    unreadable += 1
                    continue
                if entry.get("fingerprint") != current:
                    stale += 1
        return {"entries": entries, "stale": stale,
                "unreadable": unreadable, "bytes": total_bytes}
