"""Analytic off-DIMM traffic accounting (Section IV-B).

The paper: "In Freecursive ORAM, for each accessORAM operation, the CPU
deals with 2(Z+1)L memory accesses ... in an Independent ORAM protocol,
the CPU only deals with 1 read and 5 writes (assuming 4 SDIMMs)"; measured
off-DIMM access ratios: 4.2% (INDEP-2) and 7.8% (INDEP-4) including PROBE
overheads, under 3.2% without ORAM caching, and 12% for Split.

These closed forms compute the same ratios from first principles so the
benchmark can compare them against what the simulator actually moved.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import OramConfig, SdimmConfig
from repro.utils.bitops import ceil_div


@dataclass(frozen=True)
class OffDimmTraffic:
    """Per-accessORAM traffic crossing the main memory channel."""

    data_lines: float       # block-sized transfers
    command_slots: float    # short commands (PROBE etc.)
    baseline_lines: float   # what Freecursive would have moved

    @property
    def fraction_of_baseline(self) -> float:
        """Off-DIMM accesses relative to the baseline, commands included.

        Following the paper, PROBE commands count as accesses (they occupy
        controller slots) even though they move no data.
        """
        return (self.data_lines + self.command_slots) / self.baseline_lines


def baseline_lines_per_access(oram: OramConfig, cached_levels: int) -> int:
    """Freecursive: read + write of (Z+1) lines per uncached level."""
    levels_in_memory = oram.levels - cached_levels
    return 2 * oram.lines_per_bucket * levels_in_memory


def independent_traffic(oram: OramConfig, sdimm: SdimmConfig,
                        sdimm_count: int, cached_levels: int,
                        probes_per_access: float = 5.0) -> OffDimmTraffic:
    """Independent protocol: 1 request + 1 response + N APPENDs + PROBEs.

    ``probes_per_access`` models a controller that knows the expected
    service time and polls only around the completion window (a handful of
    PROBEs), which is how the paper's 4.2%/7.8% figures include "PROBE
    access overheads" without polling dominating.
    """
    if probes_per_access < 0:
        raise ValueError("probes_per_access must be non-negative")
    baseline = baseline_lines_per_access(oram, cached_levels)
    # ACCESS carries one block; FETCH_RESULT returns one; APPEND to all.
    data_lines = 1 + 1 + sdimm_count
    return OffDimmTraffic(data_lines, probes_per_access, baseline)


def split_traffic(oram: OramConfig, ways: int,
                  cached_levels: int) -> OffDimmTraffic:
    """Split protocol: metadata out, orders + counters + one block back.

    Metadata is one line per uncached bucket (the tags/leaves/counter
    line); RECEIVE_LIST is compact (~10 B per bucket: an 8 B counter plus
    eviction orders) plus the always-present updated block; FETCH_STASH
    moves one block split across the ways.
    """
    levels_in_memory = oram.levels - cached_levels
    metadata_lines = levels_in_memory
    list_lines = ceil_div(levels_in_memory * 10, oram.block_bytes) + 1
    fetch_stash = 1
    access_request = 1
    data_lines = metadata_lines + list_lines + fetch_stash + access_request
    return OffDimmTraffic(data_lines, 0.0,
                          baseline_lines_per_access(oram, cached_levels))
