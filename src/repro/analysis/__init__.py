"""Analytical models from Section IV-B/IV-C: transfer-queue overflow
(random walk and M/M/1/K) and off-DIMM traffic accounting."""

from repro.analysis.queueing import (
    drain_utilization,
    mm1k_full_probability,
    transfer_queue_overflow_probability,
)
from repro.analysis.random_walk import (
    displacement_curve,
    displacement_exceedance_probability,
    expected_displacement,
    first_passage_curve,
    first_passage_overflow_probability,
)
from repro.analysis.traffic import (
    OffDimmTraffic,
    baseline_lines_per_access,
    independent_traffic,
    split_traffic,
)

__all__ = [
    "OffDimmTraffic",
    "baseline_lines_per_access",
    "displacement_curve",
    "displacement_exceedance_probability",
    "drain_utilization",
    "expected_displacement",
    "first_passage_curve",
    "first_passage_overflow_probability",
    "independent_traffic",
    "mm1k_full_probability",
    "split_traffic",
    "transfer_queue_overflow_probability",
]
