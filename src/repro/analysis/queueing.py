"""The M/M/1/K transfer-queue model of Section IV-C (Figure 13b).

Draining an incoming block with an extra ``accessORAM`` with probability
``p`` raises the service rate from 1/4 to 1/4 + p, giving utilization

    rho = 0.25 / (0.25 + p).

Treating the queue as M/M/1/K, the stationary probability that all K slots
are full (an arriving block overflows) is

    P_K = rho^K (1 - rho) / (1 - rho^(K+1)),

which collapses to 1/(K+1) at rho = 1.  Even small drain probabilities
push rho below 1 and make overflow negligible for modest K — the paper's
Figure 13b.
"""

from __future__ import annotations


def drain_utilization(drain_probability: float,
                      arrival_rate: float = 0.25) -> float:
    """rho = arrival / (arrival + p)."""
    if not 0.0 <= drain_probability <= 1.0:
        raise ValueError("drain probability must be in [0, 1]")
    if arrival_rate <= 0:
        raise ValueError("arrival rate must be positive")
    return arrival_rate / (arrival_rate + drain_probability)


def mm1k_full_probability(rho: float, capacity: int) -> float:
    """Stationary P(queue full) for an M/M/1/K queue.

    Computed in the geometric-sum form

        P_K = rho^K / (1 + rho + ... + rho^K),

    which is the stationary distribution's own normalization and is
    numerically stable through rho = 1.  The textbook closed form
    ``rho^K (1 - rho) / (1 - rho^(K+1))`` suffers catastrophic
    cancellation as rho -> 1 (numerator and denominator both -> 0), so a
    point evaluation near 1 loses most of its significant digits; the sum
    never subtracts.  For rho > 1 the sum is taken over ``1/rho`` powers
    instead so no term overflows regardless of K.
    """
    if rho < 0:
        raise ValueError("utilization must be non-negative")
    if capacity < 1:
        raise ValueError("capacity must be at least 1")
    if rho == 0.0:
        return 0.0
    if rho <= 1.0:
        # P_K = rho^K / sum_{i=0}^{K} rho^i; every term is in (0, 1].
        total = 0.0
        term = 1.0
        for _ in range(capacity):
            total += term
            term *= rho
        return term / (total + term)
    # rho > 1: divide through by rho^K so terms decay instead of growing:
    # P_K = 1 / sum_{j=0}^{K} rho^(-j).
    inverse = 1.0 / rho
    total = 0.0
    term = 1.0
    for _ in range(capacity + 1):
        total += term
        term *= inverse
    return 1.0 / total


def transfer_queue_overflow_probability(drain_probability: float,
                                        capacity: int,
                                        arrival_rate: float = 0.25) -> float:
    """Figure 13b: overflow probability vs drain probability ``p``."""
    rho = drain_utilization(drain_probability, arrival_rate)
    return mm1k_full_probability(rho, capacity)
