"""The transfer-queue random walk of Section IV-C (Figure 13a).

Without active draining, the transfer queue of an SDIMM in a dual-SDIMM
system gains a block with probability 1/4 (a remote access migrates a
block here), loses one with probability 1/4 (a local block departs), and
is unchanged with probability 1/2 — the paper's lazy +-1 random walk

    F(s, k) = 0.5 F(s-1, k) + 0.25 F(s-1, k-1) + 0.25 F(s-1, k+1).

Figure 13a plots ``sum_{|j| > k} F(s, j)`` — the probability that the walk
currently sits more than ``k`` positions from the origin after ``s``
steps (the paper's recursion carries no absorbing barrier, so a walk that
exceeded ``k`` and returned is not counted).  That is
:func:`displacement_exceedance_probability`.

A stricter sizing metric — "did the buffer *ever* overflow?" — is the
first-passage probability with absorbing barriers,
:func:`first_passage_overflow_probability`.  It upper-bounds the paper's
curve; both lead to the same conclusion (an undrained queue overflows).
"""

from __future__ import annotations

import math
from typing import List, Tuple

import numpy as np

#: Exact dynamic programming is used below this step count; the normal
#: approximation (with continuity correction) above it.
_EXACT_STEP_LIMIT = 4000


def displacement_exceedance_probability(threshold: int, steps: int,
                                        p_move: float = 0.5) -> float:
    """P(|X_s| > threshold) for the lazy walk — one point of Figure 13a.

    Each step moves (+-1 equally likely) with probability ``p_move``.
    Exact for small ``steps``; the normal approximation with continuity
    correction otherwise (relative error < 1% in the figure's range).
    """
    _validate(threshold, steps)
    if not 0.0 < p_move <= 1.0:
        raise ValueError("p_move must be in (0, 1]")
    if steps <= _EXACT_STEP_LIMIT:
        distribution = _exact_distribution(steps, p_move)
        origin = steps  # index of position 0
        inside = distribution[origin - threshold:origin + threshold + 1]
        return float(max(0.0, 1.0 - inside.sum()))
    sigma = math.sqrt(p_move * steps)
    z = (threshold + 0.5) / sigma
    return float(math.erfc(z / math.sqrt(2.0)))


def displacement_curve(threshold: int, steps: int,
                       points: int = 16,
                       p_move: float = 0.5) -> List[Tuple[int, float]]:
    """(step, exceedance probability) samples — one line of Figure 13a."""
    _validate(threshold, steps)
    if points < 1:
        raise ValueError("need at least one point")
    samples = []
    for index in range(1, points + 1):
        step = steps * index // points
        if step == 0:
            continue
        samples.append((step, displacement_exceedance_probability(
            threshold, step, p_move)))
    return samples


def first_passage_overflow_probability(threshold: int, steps: int,
                                       p_gain: float = 0.25,
                                       p_loss: float = 0.25) -> float:
    """P(the queue *ever* exceeds ``threshold`` within ``steps`` steps).

    Exact dynamic program over occupancies ``0 .. threshold`` with the
    physical boundary conditions: servicing an empty queue is a no-op
    (reflection at 0) and an arrival at a full queue overflows (absorption
    above ``threshold``).  For the symmetric lazy walk this coincides with
    two-sided first passage of the displacement walk by the reflection
    principle; it is the conservative buffer-sizing metric.
    """
    return first_passage_curve(threshold, steps, sample_every=steps,
                               p_gain=p_gain, p_loss=p_loss)[-1][1]


def first_passage_curve(threshold: int, steps: int,
                        sample_every: int = 10_000,
                        p_gain: float = 0.25,
                        p_loss: float = 0.25) -> List[Tuple[int, float]]:
    """(step, overflow probability) samples for the bounded queue walk."""
    _validate(threshold, steps)
    if p_gain < 0 or p_loss < 0 or p_gain + p_loss > 1:
        raise ValueError("step probabilities must form a distribution")
    sample_every = max(1, sample_every)

    # occupancy distribution over 0 .. threshold
    probability = np.zeros(threshold + 1)
    probability[0] = 1.0
    p_stay = 1.0 - p_gain - p_loss
    absorbed = 0.0
    samples: List[Tuple[int, float]] = []

    for step in range(1, steps + 1):
        gained = np.empty_like(probability)
        gained[1:] = probability[:-1]
        gained[0] = 0.0
        lost = np.empty_like(probability)
        lost[:-1] = probability[1:]
        lost[-1] = 0.0
        absorbed += p_gain * probability[-1]
        empty_service = p_loss * probability[0]
        probability = p_stay * probability + p_gain * gained + p_loss * lost
        # servicing an empty queue is a no-op: that mass stays at 0
        probability[0] += empty_service
        if step % sample_every == 0 or step == steps:
            samples.append((step, float(absorbed)))
    return samples


def expected_displacement(steps: int, p_move: float = 0.5) -> float:
    """RMS displacement of the lazy walk — the intuition check.

    Each step moves with probability ``p_move`` (variance p_move), so the
    RMS position after ``s`` steps is ``sqrt(p_move * s)``: ~632 positions
    after 800K steps, which is why even a 1024-entry queue exceeds its
    capacity with ~10% probability (Figure 13a's top curve).
    """
    if steps < 0:
        raise ValueError("steps must be non-negative")
    return float(np.sqrt(p_move * steps))


def _exact_distribution(steps: int, p_move: float) -> np.ndarray:
    """Free-walk position distribution over [-steps, steps]."""
    distribution = np.zeros(2 * steps + 1)
    distribution[steps] = 1.0
    half_move = p_move / 2.0
    stay = 1.0 - p_move
    for _ in range(steps):
        up = np.empty_like(distribution)
        up[1:] = distribution[:-1]
        up[0] = 0.0
        down = np.empty_like(distribution)
        down[:-1] = distribution[1:]
        down[-1] = 0.0
        distribution = stay * distribution + half_move * (up + down)
    return distribution


def _validate(threshold: int, steps: int) -> None:
    if threshold < 1:
        raise ValueError("threshold must be at least 1")
    if steps < 1:
        raise ValueError("need at least one step")
