"""A write-back, write-allocate, LRU set-associative cache.

One implementation serves three roles in the reproduction:

* the 2 MB shared LLC in front of the memory system (Table II),
* the 64 KB PosMap Lookaside Buffer of Freecursive ORAM, and
* the 64 KB on-chip cache holding the first few ORAM tree levels.

The model tracks tags and dirty bits only — data payloads live with the
callers that need them (the functional ORAM keeps real bytes; the timing
tier keeps none).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.utils.bitops import is_power_of_two


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one cache access."""

    hit: bool
    #: line address of the evicted victim, if the fill displaced one
    victim_address: Optional[int] = None
    #: True when the victim was dirty and must be written back
    victim_dirty: bool = False


class SetAssociativeCache:
    """LRU set-associative cache over line addresses."""

    def __init__(self, capacity_bytes: int, line_bytes: int,
                 associativity: int, name: str = "cache"):
        if capacity_bytes % (line_bytes * associativity):
            raise ValueError("capacity must be a whole number of sets")
        self.name = name
        self.line_bytes = line_bytes
        self.associativity = associativity
        self.set_count = capacity_bytes // (line_bytes * associativity)
        if not is_power_of_two(self.set_count):
            raise ValueError(f"set count {self.set_count} must be a power "
                             f"of two for address slicing")
        # per-set mapping tag -> dirty, in LRU order (oldest first)
        self._sets: Dict[int, Dict[int, bool]] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0

    def _locate(self, line_address: int) -> Tuple[int, int]:
        return line_address % self.set_count, line_address // self.set_count

    def access(self, line_address: int, is_write: bool = False) -> AccessResult:
        """Reference a line; fill on miss; return hit/victim information."""
        set_index, tag = self._locate(line_address)
        cache_set = self._sets.setdefault(set_index, {})
        if tag in cache_set:
            self.hits += 1
            dirty = cache_set.pop(tag) or is_write
            cache_set[tag] = dirty  # reinsert as most-recently-used
            return AccessResult(hit=True)

        self.misses += 1
        victim_address = None
        victim_dirty = False
        if len(cache_set) >= self.associativity:
            victim_tag, victim_dirty = next(iter(cache_set.items()))
            del cache_set[victim_tag]
            victim_address = victim_tag * self.set_count + set_index
            self.evictions += 1
            if victim_dirty:
                self.writebacks += 1
        cache_set[tag] = is_write
        return AccessResult(hit=False, victim_address=victim_address,
                            victim_dirty=victim_dirty)

    def probe(self, line_address: int) -> bool:
        """Check residency without touching LRU state."""
        set_index, tag = self._locate(line_address)
        return tag in self._sets.get(set_index, {})

    def invalidate(self, line_address: int) -> bool:
        """Drop a line if present; returns whether it was resident."""
        set_index, tag = self._locate(line_address)
        cache_set = self._sets.get(set_index, {})
        if tag in cache_set:
            del cache_set[tag]
            return True
        return False

    def flush(self) -> int:
        """Empty the cache; returns how many dirty lines would write back."""
        dirty = sum(flag for cache_set in self._sets.values()
                    for flag in cache_set.values())
        self._sets.clear()
        return dirty

    @property
    def resident_lines(self) -> int:
        return sum(len(cache_set) for cache_set in self._sets.values())

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0
