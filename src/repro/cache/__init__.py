"""Set-associative cache models (LLC, PLB, on-chip ORAM-level cache)."""

from repro.cache.cache import AccessResult, SetAssociativeCache

__all__ = ["AccessResult", "SetAssociativeCache"]
