"""Adversary bus-trace audit: the threat model as an executable test.

Section III-G argues the designs are oblivious because the CPU<->SDIMM
traffic has a fixed *nature* per request.  "Revisiting Definitional
Foundations of Oblivious RAM" (arXiv:1706.03852) insists that claim be
checked on the observable trace, not asserted.  This module does exactly
that, at both simulation tiers:

* **Timing tier** (:func:`audit_timing_design`): two runs of the same
  backend, same seed, *different address streams*, with the PLB disabled
  (the PLB is a known, acknowledged timing channel of Freecursive ORAM —
  its hit pattern depends on addresses by construction, so it is excluded
  from the obliviousness claim and from this audit).  Everything the
  memory-channel adversary sees — link-bus reservations and main-channel
  DRAM bursts, with exact cycle timestamps — must be **byte-identical**.
  :class:`~repro.sim.backends` backends draw leaf randomness from their
  own seeded streams and never consult the address, so equality is the
  expected outcome for every secure design; the non-secure baseline fails
  (its row/bank activity *is* the address), serving as the negative
  control that proves the audit has teeth.

* **Functional tier** (``audit_*_protocol``): the content-carrying
  protocols in :mod:`repro.core` record :class:`LinkRecorder` events.
  Here exact equality is the wrong test: position maps draw initial
  leaves lazily, so two different address streams legitimately
  desynchronize the (secret, internal) randomness, and the observable
  trace is only *distributionally* identical.  The audit therefore
  compares the **canonical observable**: per-event link shapes
  (direction, command, payload size) with the uniformly-random target
  SDIMM excluded — precisely the tuple ``LinkEvent.shape()`` fixes — and,
  for the Freecursive baseline, the (kind, tree-level) sequence of bucket
  touches, since the bucket index within a level is a uniform function of
  the fresh leaf.  These canonical streams are deterministic per access
  and must match exactly.

Fault injection (:class:`LeakyLink`) wires a real leaf bit into a
FETCH_RESULT payload size; the audit must flag the resulting traces as
distinguishable, which the tier-1 suite asserts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.obs.tracer import (CATEGORY_BUS, CATEGORY_DRAM, NULL_TRACER,
                              CollectingTracer, TraceEvent)

#: Argument keys that would carry secret-tainted values if they ever
#: appeared on an adversary-visible event (SEC002's vocabulary).
FORBIDDEN_ADVERSARY_ARGS = ("leaf", "address", "plaintext", "secret", "tag")

#: The lane-name prefix of CPU-side (adversary-visible) DRAM channels.
MAIN_LANE_PREFIX = "main"


def adversary_observations(events: Sequence[TraceEvent]) -> List[TraceEvent]:
    """Exactly the events a memory-channel probe sees.

    That is: every link-bus event, plus DRAM activity on the *main*
    channels only.  SDIMM-internal channels (``sdimm*`` lanes) sit behind
    the secure buffer and are invisible to the Section III-B adversary.
    """
    return [event for event in events
            if event.category == CATEGORY_BUS
            or (event.category == CATEGORY_DRAM
                and event.lane.startswith(MAIN_LANE_PREFIX))]


def scan_secret_args(events: Sequence[TraceEvent]) -> List[str]:
    """SEC002 guard: adversary-visible events must not carry secrets.

    Returns a list of violation descriptions (empty = clean).  Checked on
    every audit run and asserted by the tier-1 suite.
    """
    violations = []
    for event in adversary_observations(events):
        for key in event.args:
            if key.lower() in FORBIDDEN_ADVERSARY_ARGS:
                violations.append(
                    f"{event.category}/{event.name} on {event.lane} at "
                    f"{event.start} carries forbidden arg {key!r}")
    return violations


# ----------------------------------------------------------------------
# Comparison machinery
# ----------------------------------------------------------------------

@dataclass
class AuditResult:
    """Outcome of one two-run indistinguishability comparison."""

    name: str
    observable: str              # what canonical stream was compared
    length_a: int
    length_b: int
    indistinguishable: bool
    first_divergence: Optional[Tuple[int, object, object]] = None
    secret_arg_violations: Tuple[str, ...] = ()

    @property
    def passed(self) -> bool:
        return self.indistinguishable and not self.secret_arg_violations

    def describe(self) -> str:
        if self.passed:
            return (f"{self.name}: PASS — {self.length_a} {self.observable} "
                    f"events identical across both address streams")
        if self.secret_arg_violations:  # reprolint: disable=SEC003 -- audit verdict metadata: this lists *detected* violations (strings for the report), not secret protocol state; the name trips the vocabulary
            return (f"{self.name}: FAIL — secret-tainted payloads: "
                    f"{'; '.join(self.secret_arg_violations[:3])}")
        if self.first_divergence is None:
            return (f"{self.name}: FAIL — traces differ in length "
                    f"({self.length_a} vs {self.length_b} "
                    f"{self.observable} events)")
        index, left, right = self.first_divergence
        return (f"{self.name}: FAIL — {self.observable} traces diverge at "
                f"event {index}: {left!r} vs {right!r}")


def compare_observables(name: str, observable: str,
                        trace_a: Sequence, trace_b: Sequence,
                        secret_violations: Sequence[str] = ()) -> AuditResult:
    """Element-wise comparison of two canonical observable streams."""
    divergence = None
    for index, (left, right) in enumerate(zip(trace_a, trace_b)):
        if left != right:
            divergence = (index, left, right)
            break
    same = divergence is None and len(trace_a) == len(trace_b)
    return AuditResult(name=name, observable=observable,
                       length_a=len(trace_a), length_b=len(trace_b),
                       indistinguishable=same,
                       first_divergence=divergence,
                       secret_arg_violations=tuple(secret_violations))


# ----------------------------------------------------------------------
# Address streams
# ----------------------------------------------------------------------

def audit_address_streams(count: int, seed: int = 2018,
                          span: int = 1 << 20) -> Tuple[List[int], List[int]]:
    """Two deliberately different address streams of equal length.

    The streams differ in every way an access pattern can: stream A walks
    ``count`` *distinct* sequential lines (maximal locality, no reuse);
    stream B jumps pseudo-randomly across a window of at most ``count // 2``
    lines of ``span``, guaranteeing heavy *reuse*.  The reuse asymmetry
    matters: position maps draw initial leaves lazily in access order, so
    two no-reuse streams see identical leaf sequences under address
    relabeling and a leaf-dependent leak would cancel out between them.
    Reused addresses carry their *remapped* leaves instead, which breaks
    that symmetry and lets the audit catch leaks like :class:`LeakyLink`.
    """
    from repro.utils.rng import DeterministicRng

    rng = DeterministicRng(seed, "audit-stream-b")
    window = max(2, min(span, count // 2))
    stream_a = list(range(count))
    stream_b = [rng.randrange(window) * (span // window)
                for _ in range(count)]
    # Structural floor for tiny counts, where the random draws could
    # degenerate into a constant (or reuse-free) sequence: pin a far
    # address up front and a guaranteed repeat of it at the end, so the
    # streams always differ and stream B always reuses.
    if count >= 2:
        stream_b[0] = span // 2
        stream_b[-1] = stream_b[0]
    return stream_a, stream_b


# ----------------------------------------------------------------------
# Timing-tier audit (exact equality)
# ----------------------------------------------------------------------

def collect_timing_observations(design, addresses: Sequence[int],
                                channels: int = 1, seed: int = 2018,
                                gap_cycles: int = 4000) -> List[TraceEvent]:
    """One traced backend run over a fixed-arrival miss stream.

    Misses arrive on a fixed schedule (every ``gap_cycles``) so arrival
    timing carries no address information; the PLB is disabled so the
    per-miss accessORAM count is the full recursion depth for every miss.
    What remains observable is purely the backend's behaviour.
    """
    from repro.config import DesignPoint, table2_config
    from repro.oram.plb import PlbFrontend
    from repro.sim.events import EventQueue
    from repro.sim.system import build_backend

    if isinstance(design, str):
        design = DesignPoint(design)
    config = table2_config(design, channels=channels, seed=seed)
    tracer = CollectingTracer()
    events = EventQueue()
    backend = build_backend(config, events, tracer=tracer)
    backend.frontend = PlbFrontend(config.oram, enabled=False)
    for index, address in enumerate(addresses):
        arrival = index * gap_cycles
        events.at(arrival,
                  lambda a=address, t=arrival: backend.submit(
                      a, t, is_write=False))
    events.run()
    backend.finalize(events.now)
    return adversary_observations(tracer.events)


def audit_timing_design(design, misses: int = 12, channels: int = 1,
                        seed: int = 2018,
                        gap_cycles: int = 4000) -> AuditResult:
    """Byte-exact adversary-trace equality across two address streams."""
    stream_a, stream_b = audit_address_streams(misses, seed=seed)
    violations: List[str] = []
    keyed = []
    for stream in (stream_a, stream_b):
        observed = collect_timing_observations(design, stream,
                                               channels=channels, seed=seed,
                                               gap_cycles=gap_cycles)
        violations.extend(scan_secret_args(observed))
        keyed.append([event.key() for event in observed])
    name = design.value if hasattr(design, "value") else str(design)
    return compare_observables(f"timing:{name}", "adversary",
                               keyed[0], keyed[1],
                               secret_violations=violations)


# ----------------------------------------------------------------------
# Functional-tier audits (canonicalized link shapes)
# ----------------------------------------------------------------------

class LeakyLink:
    """Fault-injection link recorder: one secret leaf bit escapes.

    Wraps :class:`~repro.core.secure_buffer.LinkRecorder`'s interface but
    inflates FETCH_RESULT payloads by ``leak_bit`` — the audit driver sets
    that to the accessed block's real leaf parity before each access,
    modelling a buggy buffer whose response size depends on the position
    it serves.  Audits must catch this as distinguishable.
    """

    def __init__(self):
        from repro.core.secure_buffer import LinkRecorder

        self._inner = LinkRecorder(enabled=True)
        self.leak_bit = 0

    def up(self, command, sdimm: int, payload_bytes: int) -> None:
        self._inner.up(command, sdimm, payload_bytes)

    def down(self, command, sdimm: int, payload_bytes: int) -> None:
        from repro.core.commands import SdimmCommand

        if command is SdimmCommand.FETCH_RESULT:
            payload_bytes += self.leak_bit
        self._inner.down(command, sdimm, payload_bytes)

    def shapes(self):
        return self._inner.shapes()

    @property
    def events(self):
        return self._inner.events

    def clear(self) -> None:
        self._inner.clear()

    def __len__(self) -> int:
        return len(self._inner)


def _drive_link_protocol(protocol, addresses: Sequence[int],
                         inject_leak: bool) -> List[Tuple]:
    """Run an address stream through a core protocol; canonical shapes."""
    if inject_leak:
        protocol.link = LeakyLink()
    for address in addresses:
        if inject_leak:
            protocol.link.leak_bit = protocol.posmap.lookup(address) & 1
        protocol.read(address)
    return protocol.link.shapes()


def audit_independent_protocol(addresses_a: Sequence[int],
                               addresses_b: Sequence[int],
                               levels: int = 6, sdimms: int = 2,
                               seed: int = 2018,
                               inject_leak: bool = False) -> AuditResult:
    """Link-shape audit of the functional Independent protocol."""
    from repro.core.independent import IndependentProtocol

    shapes = []
    for stream in (addresses_a, addresses_b):
        protocol = IndependentProtocol(global_levels=levels,
                                       sdimm_count=sdimms, seed=seed,
                                       record_link=True)
        shapes.append(_drive_link_protocol(protocol, stream, inject_leak))
    suffix = "+leak" if inject_leak else ""
    return compare_observables(f"protocol:independent{suffix}",
                               "link-shape", shapes[0], shapes[1])


def audit_split_protocol(addresses_a: Sequence[int],
                         addresses_b: Sequence[int],
                         levels: int = 6, ways: int = 2,
                         seed: int = 2018,
                         inject_leak: bool = False) -> AuditResult:
    """Link-shape audit of the functional Split protocol."""
    from repro.core.split import SplitProtocol

    shapes = []
    for stream in (addresses_a, addresses_b):
        protocol = SplitProtocol(levels=levels, ways=ways, seed=seed,
                                 record_link=True)
        shapes.append(_drive_link_protocol(protocol, stream, inject_leak))
    suffix = "+leak" if inject_leak else ""
    return compare_observables(f"protocol:split{suffix}",
                               "link-shape", shapes[0], shapes[1])


def audit_indep_split_protocol(addresses_a: Sequence[int],
                               addresses_b: Sequence[int],
                               levels: int = 7, groups: int = 2,
                               seed: int = 2018) -> AuditResult:
    """Link-shape audit of the combined protocol's top-level link.

    The top-level link (ACCESS / FETCH_RESULT / APPEND broadcast) has a
    fixed per-access shape.  Group-internal Split traffic is paced by the
    transfer-queue drain lottery, whose *positions* are randomness-driven
    (distributionally identical, not pointwise equal), so it is audited
    through :func:`audit_split_protocol` separately rather than compared
    pointwise here.
    """
    from repro.core.indep_split import IndepSplitProtocol

    shapes = []
    for stream in (addresses_a, addresses_b):
        protocol = IndepSplitProtocol(global_levels=levels, groups=groups,
                                      seed=seed, record_link=True)
        for address in stream:
            protocol.read(address)
        shapes.append(protocol.link.shapes())
    return compare_observables("protocol:indep-split", "link-shape",
                               shapes[0], shapes[1])


def audit_freecursive_protocol(addresses_a: Sequence[int],
                               addresses_b: Sequence[int],
                               levels: int = 8, seed: int = 2018) -> AuditResult:
    """Bucket-level audit of the functional Freecursive baseline.

    Uses the unified tree (Fletcher et al.'s recommendation, which hides
    *which* ORAM a path serves) with the PLB disabled.  The canonical
    observable is the (kind, tree-level) sequence: the level walk is the
    deterministic part of a path access, while the bucket index within a
    level is a uniform function of the fresh leaf and carries no address
    information.
    """
    from repro.config import OramConfig
    from repro.oram.freecursive import FreecursiveOram
    from repro.utils.rng import DeterministicRng

    config = OramConfig(levels=levels, cached_levels=2, recursive_posmaps=2,
                        stash_capacity=max(200, levels * 8))
    canonical = []
    for label, stream in (("a", addresses_a), ("b", addresses_b)):
        oram = FreecursiveOram(config,
                               DeterministicRng(seed, "audit-freecursive"),
                               plb_enabled=False, record_trace=True,
                               unified_tree=True)
        for address in stream:
            oram.read(address)
        canonical.append([
            (event.kind, (event.bucket + 1).bit_length() - 1)
            for event in oram.orams[0].trace
        ])
    return compare_observables("protocol:freecursive", "bucket-level",
                               canonical[0], canonical[1])


# ----------------------------------------------------------------------
# Sharded-routing audit: the serving tier's shard key is the address
# ----------------------------------------------------------------------

def audit_sharded_routing(addresses_a: Sequence[int],
                          addresses_b: Sequence[int],
                          shards: int = 2, subtrees: int = 8,
                          levels: int = 6, sites: int = 2,
                          seed: int = 2018,
                          expose_shard: bool = False) -> AuditResult:
    """Link-shape audit of the sharded serving tier's routing.

    The shard key *is* a function of the address (top leaf-MSB bits
    through the consistent-hash ring), so sharding is only oblivious if
    the adversary cannot tell **which** shard served an access.  On the
    link bus that holds: :meth:`LinkEvent.shape` excludes the target, and
    every shard's per-access traffic has the same fixed shape — so the
    arrival-ordered concatenation of per-access link-shape chunks across
    all shard protocols must be identical for two different address
    streams.

    ``expose_shard`` is the negative control: prefixing each shape with
    the serving shard's index models a deployment where shards are
    physically distinguishable (separate channels, per-shard timing).
    That trace *is* address-dependent and the audit must flag it — which
    is exactly why the tier keeps shard fan-out behind the position-
    independent link observable.
    """
    from repro.core.independent import IndependentProtocol
    from repro.serve.shard import ShardPlan

    plan = ShardPlan(shards=shards, subtrees=subtrees, levels=levels,
                     virtual_nodes=8)
    limit = 1 << (levels - 1)
    canonical = []
    for stream in (addresses_a, addresses_b):
        protocols = [IndependentProtocol(global_levels=levels,
                                         sdimm_count=sites, seed=seed,
                                         record_link=True)
                     for _ in range(shards)]
        observed: List[Tuple] = []
        for raw in stream:
            address = raw % limit
            shard = plan.shard_of_address(address)
            protocol = protocols[shard]
            before = len(protocol.link)
            protocol.read(address)
            chunk = protocol.link.shapes()[before:]
            if expose_shard:
                observed.extend((shard,) + shape for shape in chunk)
            else:
                observed.extend(chunk)
        canonical.append(observed)
    suffix = "+shard-exposed" if expose_shard else ""
    return compare_observables(f"routing:sharded{suffix}", "link-shape",
                               canonical[0], canonical[1])


# ----------------------------------------------------------------------
# Adaptive-control audit: decisions are functions of public signals only
# ----------------------------------------------------------------------

def _tainted_plane_class():
    """The negative control's control plane, built lazily.

    A buggy (or malicious) plane that lets the *addresses* of admitted
    requests steer the controller: it stashes each window's admitted
    addresses and folds their parity sum into the p99 signal.  Decisions
    — and therefore batch-size/admission moves, and therefore the service
    timeline — become functions of the secret access pattern.  The audit
    must flag the two runs as distinguishable; that it does is the proof
    the adaptive-control audit has teeth.
    """
    from repro.control.plane import ServeControlPlane

    class _TaintedPlane(ServeControlPlane):
        def __init__(self, *args, **kwargs):
            super().__init__(*args, **kwargs)
            self._window_addresses = {}

        def note_admitted(self, request) -> None:
            super().note_admitted(request)
            window = request.arrival // self.window_ticks
            self._window_addresses.setdefault(window, []).append(
                request.address)

        def window_signal(self, index):
            p99, shed = super().window_signal(index)
            taint = sum(address & 1 for address
                        in self._window_addresses.pop(index, []))
            if taint:
                p99 = taint if p99 is None else p99 + taint
            return p99, shed

    return _TaintedPlane


def _drive_adaptive_run(addresses: Sequence[int], levels: int,
                        window_ticks: int, gap_ticks: int, slo_p99: int,
                        capacity: int, batch: int, seed: int,
                        taint_signal: bool) -> List[Tuple]:
    """One adaptive serving run over a fixed arrival timeline.

    Arrivals sit on a fixed grid (every ``gap_ticks``) so arrival timing
    carries no address information, and read coalescing is disabled: a
    coalesced batch's service time depends on address *equality* within
    the batch by construction, which is a property of the open-loop
    scheduler, not of the control loop under audit here.  Two tenants
    alternate, the second declassified, so the morph controller's
    secure<->morphed switching is part of the audited behaviour.

    The canonical observable is everything adaptation adds to what the
    adversary already sees: the full structured decision log (controller
    moves with their signals) plus the resulting completion and shed
    timelines.  All of it must be a pure function of public queue
    statistics — identical across address streams.
    """
    from repro.control.admission import AdmissionController
    from repro.control.morph import MorphController
    from repro.control.plane import ServeControlPlane
    from repro.core.split import SplitProtocol
    from repro.oram.path_oram import Op
    from repro.serve.loadgen import Request
    from repro.serve.scheduler import BatchingScheduler

    plane_class = (_tainted_plane_class() if taint_signal
                   else ServeControlPlane)
    plane = plane_class(
        window_ticks,
        admission=AdmissionController(slo_p99, capacity, batch_size=batch),
        morph=MorphController(frozenset({"t1"})))
    protocol = SplitProtocol(levels=levels, ways=2, seed=seed,
                             record_link=True)
    limit = 1 << (levels - 1)
    sequences = {"t0": 0, "t1": 0}
    requests = []
    for index, address in enumerate(addresses):
        tenant = "t0" if index % 2 == 0 else "t1"
        requests.append(Request(arrival=index * gap_ticks, tenant=tenant,
                                sequence=sequences[tenant],
                                address=address % limit, op=Op.READ))
        sequences[tenant] += 1
    scheduler = BatchingScheduler(protocol, queue_capacity=capacity,
                                  batch_size=batch, control=plane,
                                  coalesce=False)
    outcome = scheduler.run(requests)
    observable: List[Tuple] = [
        ("decision",) + tuple(sorted(
            (key, tuple(sorted(value.items()))
             if isinstance(value, dict) else value)
            for key, value in decision.to_dict().items()))
        for decision in outcome.decisions]
    observable.extend(("completion", record.start, record.finish)
                      for record in outcome.completions)
    observable.extend(("shed", record.arrival, record.queue_depth,
                       record.capacity) for record in outcome.shed)
    return observable


def audit_adaptive_control(requests: int = 96, levels: int = 6,
                           window_ticks: int = 256, gap_ticks: int = 48,
                           slo_p99: int = 512, capacity: int = 8,
                           batch: int = 4, seed: int = 2018,
                           taint_signal: bool = False) -> AuditResult:
    """Adaptation must not widen the channel: decisions stay public.

    Two adaptive runs with the *same* arrival timeline and *different*
    address streams must produce identical decision logs and identical
    completion/shed timelines — every controller input (window p99, shed
    count, queue depth) is a public aggregate the adversary already
    observes, so closing the loop adds no address-dependence.

    ``taint_signal`` is the negative control: it swaps in a control
    plane whose :meth:`window_signal` folds an address-parity term into
    the p99 the controller sees.  Decisions then differ between the
    streams and the audit must catch it.
    """
    stream_a, stream_b = audit_address_streams(requests, seed=seed,
                                               span=1 << 10)
    observables = [
        _drive_adaptive_run(stream, levels=levels,
                            window_ticks=window_ticks,
                            gap_ticks=gap_ticks, slo_p99=slo_p99,
                            capacity=capacity, batch=batch, seed=seed,
                            taint_signal=taint_signal)
        for stream in (stream_a, stream_b)]
    suffix = "+tainted-signal" if taint_signal else ""
    return compare_observables(f"control:adaptive{suffix}",
                               "decision+timeline",
                               observables[0], observables[1])


# ----------------------------------------------------------------------
# Faulted audits (repro.faults): retries must look like re-accesses
# ----------------------------------------------------------------------

def _drive_faulted_protocol(spec, plan, addresses: Sequence[int]) -> List:
    """One faulted run over an address stream; returns link shapes.

    Exhausted retry budgets quarantine where the design allows it (the
    degraded path emits the normal per-access shape) and otherwise end
    the run — the plan, not the addresses, decides where, so both audit
    streams truncate at the same access.
    """
    from repro.faults.campaign import _active_sites, build_faulted_protocol
    from repro.faults.recovery import RetryExhaustedError

    protocol, injector, driver, _ = build_faulted_protocol(spec, plan)
    for index, address in enumerate(addresses):
        injector.begin_access(index)
        if driver is not None:
            driver.arm(index,
                       active_sites=_active_sites(spec, protocol, address))
        try:
            protocol.read(address)
        except RetryExhaustedError as error:
            if hasattr(protocol, "quarantine"):
                protocol.quarantine(error.site)
                continue
            break
    return list(protocol.link.shapes())


def audit_faulted_protocol(design: str,
                           addresses_a: Sequence[int],
                           addresses_b: Sequence[int],
                           levels: int = 6, sites: int = 2,
                           seed: int = 2018,
                           bit_flips: int = 2, replays: int = 1,
                           link_drops: int = 1, link_duplicates: int = 1,
                           link_delays: int = 1) -> AuditResult:
    """Link-shape audit of a protocol under an identical fault plan.

    The resilience claim of :mod:`repro.faults`: injected faults and the
    retries they provoke must not make a secure design's bus traffic
    address-distinguishable.  Faults are scheduled positionally (access
    index + operation ordinal, never address or leaf), and a retry
    re-issues the same messages a fresh fetch would — so two different
    address streams under the *same* plan must still produce identical
    link-shape sequences.
    """
    from repro.faults.campaign import CampaignSpec

    spec = CampaignSpec(design=design, accesses=len(addresses_a),
                        levels=levels, sites=sites, seed=seed,
                        bit_flips=bit_flips, replays=replays,
                        link_drops=link_drops,
                        link_duplicates=link_duplicates,
                        link_delays=link_delays)
    plan = spec.build_plan()
    shapes = [_drive_faulted_protocol(spec, plan, stream)
              for stream in (addresses_a, addresses_b)]
    return compare_observables(f"faulted:{design}", "link-shape",
                               shapes[0], shapes[1])


def audit_timing_design_with_stalls(design, misses: int = 12,
                                    channels: int = 1, seed: int = 2018,
                                    gap_cycles: int = 4000,
                                    stalls: Sequence[Tuple[int, int]] = (
                                        (2_000, 600), (9_000, 900)),
                                    ) -> AuditResult:
    """Timing-tier audit with an identical bus-stall schedule injected.

    A transient SDIMM buffer stall occupies the link bus for a fixed
    interval.  The schedule is positional (absolute cycles), so injecting
    it into both runs shifts every subsequent reservation identically —
    the adversary traces must stay byte-exact for secure designs.
    """
    from repro.config import DesignPoint

    if isinstance(design, str):
        design = DesignPoint(design)
    violations: List[str] = []
    keyed = []
    for stream in audit_address_streams(misses, seed=seed):
        observed = _collect_stalled_observations(design, stream,
                                                 channels=channels,
                                                 seed=seed,
                                                 gap_cycles=gap_cycles,
                                                 stalls=stalls)
        violations.extend(scan_secret_args(observed))
        keyed.append([event.key() for event in observed])
    return compare_observables(f"timing+stalls:{design.value}", "adversary",
                               keyed[0], keyed[1],
                               secret_violations=violations)


def _collect_stalled_observations(design, addresses: Sequence[int],
                                  channels: int, seed: int,
                                  gap_cycles: int,
                                  stalls: Sequence[Tuple[int, int]]
                                  ) -> List[TraceEvent]:
    from repro.config import table2_config
    from repro.oram.plb import PlbFrontend
    from repro.sim.events import EventQueue
    from repro.sim.system import build_backend

    config = table2_config(design, channels=channels, seed=seed)
    tracer = CollectingTracer()
    events = EventQueue()
    backend = build_backend(config, events, tracer=tracer)
    backend.frontend = PlbFrontend(config.oram, enabled=False)
    for bus in getattr(backend, "buses", []):
        for start, cycles in stalls:
            bus.inject_stall(start, cycles)
    for index, address in enumerate(addresses):
        arrival = index * gap_cycles
        events.at(arrival,
                  lambda a=address, t=arrival: backend.submit(
                      a, t, is_write=False))
    events.run()
    backend.finalize(events.now)
    return adversary_observations(tracer.events)


# ----------------------------------------------------------------------
# The full audit the CLI runs
# ----------------------------------------------------------------------

def run_full_audit(misses: int = 12, accesses: int = 48,
                   seed: int = 2018,
                   include_negative_control: bool = True,
                   with_faults: bool = False) -> List[AuditResult]:
    """Audit every Figure-8 design at both tiers.

    Timing tier: freecursive / indep-2 / split-2 must show byte-identical
    adversary traces.  Functional tier: the canonicalized protocol
    observables must match, and the sharded serving tier's routing
    (:func:`audit_sharded_routing`) must not be visible on the link.
    The adaptive control plane is audited too
    (:func:`audit_adaptive_control`): closing the loop must not make the
    decision log or service timeline address-dependent.  With
    ``include_negative_control``, three *expected* failures are audited
    as well — the non-secure baseline, a shard-exposing routing variant,
    and a control plane fed a secret-tainted signal — each returned with
    the name prefix ``negative-control:``
    so callers treat distinguishability as the success condition.  With
    ``with_faults``, the faulted variants run too: the same designs under
    an identical seeded fault plan (and a fixed bus-stall schedule at the
    timing tier) must remain indistinguishable — retries have to look
    like normal re-accesses.
    """
    from repro.config import DesignPoint

    stream_a, stream_b = audit_address_streams(accesses, seed=seed,
                                               span=1 << 10)
    results = [
        audit_timing_design(DesignPoint.FREECURSIVE, misses=misses,
                            seed=seed),
        audit_timing_design(DesignPoint.INDEP_2, misses=misses, seed=seed),
        audit_timing_design(DesignPoint.SPLIT_2, misses=misses, seed=seed),
        audit_freecursive_protocol(stream_a, stream_b, seed=seed),
        audit_independent_protocol(stream_a, stream_b, seed=seed),
        audit_split_protocol(stream_a, stream_b, seed=seed),
        audit_indep_split_protocol(stream_a, stream_b, seed=seed),
        audit_sharded_routing(stream_a, stream_b, seed=seed),
        audit_adaptive_control(seed=seed),
    ]
    if with_faults:
        results.extend([
            audit_faulted_protocol("independent", stream_a, stream_b,
                                   seed=seed),
            audit_faulted_protocol("split", stream_a, stream_b, seed=seed),
            audit_faulted_protocol("indep-split", stream_a, stream_b,
                                   levels=7, seed=seed),
            audit_timing_design_with_stalls(DesignPoint.INDEP_2,
                                            misses=misses, seed=seed),
            audit_timing_design_with_stalls(DesignPoint.SPLIT_2,
                                            misses=misses, seed=seed),
        ])
    if include_negative_control:
        control = audit_timing_design(DesignPoint.NONSECURE, misses=misses,
                                      seed=seed)
        control.name = f"negative-control:{control.name}"
        results.append(control)
        exposed = audit_sharded_routing(stream_a, stream_b, seed=seed,
                                        expose_shard=True)
        exposed.name = f"negative-control:{exposed.name}"
        results.append(exposed)
        tainted = audit_adaptive_control(seed=seed, taint_signal=True)
        tainted.name = f"negative-control:{tainted.name}"
        results.append(tainted)
    return results
