"""Chrome trace-event JSON export (loadable in Perfetto / chrome://tracing).

One process per run, one ``tid`` lane per hardware resource (``cpu``, each
main channel, each SDIMM, each link bus), so a Figure-8 run renders as the
paper's Figure 7 diagram animated over time: path shuffles on the SDIMM
lanes, short protocol messages on the bus lanes, miss spans on the CPU.

The output is deterministic: lane ids are assigned in sorted-lane order,
JSON keys are sorted, and no wall-clock or environment value is embedded —
so the same config + seed yields a byte-identical file (a property the
tier-1 suite asserts).

Timestamp unit note: the trace-event format assumes microseconds.  We emit
raw simulation timestamps (CPU cycles in the timing tier, protocol steps
in the functional tier) as ``ts`` values; read "1 us" in the viewer as
"1 cycle".
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List

from repro.obs.tracer import TraceEvent

_PID = 1


def _lane_ids(events: List[TraceEvent]) -> Dict[str, int]:
    return {lane: index + 1
            for index, lane in enumerate(sorted({event.lane
                                                 for event in events}))}


def chrome_trace_events(events: Iterable[TraceEvent]) -> List[dict]:
    """Convert tracer events to trace-event dicts (the ``traceEvents`` list)."""
    ordered = list(events)
    lanes = _lane_ids(ordered)
    output: List[dict] = [
        {"ph": "M", "pid": _PID, "tid": 0, "name": "process_name",
         "args": {"name": "repro"}},
    ]
    for lane, tid in sorted(lanes.items(), key=lambda item: item[1]):
        output.append({"ph": "M", "pid": _PID, "tid": tid,
                       "name": "thread_name", "args": {"name": lane}})
    for event in ordered:
        tid = lanes[event.lane]
        if event.kind == "span":
            output.append({
                "ph": "X", "pid": _PID, "tid": tid,
                "name": event.name, "cat": event.category,
                "ts": event.start, "dur": event.duration,
                "args": dict(event.args),
            })
        elif event.kind == "counter":
            output.append({
                "ph": "C", "pid": _PID, "tid": tid,
                "name": f"{event.lane}:{event.name}", "cat": event.category,
                "ts": event.start,
                "args": {"value": event.args.get("value", 0)},
            })
        else:
            output.append({
                "ph": "i", "pid": _PID, "tid": tid, "s": "t",
                "name": event.name, "cat": event.category,
                "ts": event.start, "args": dict(event.args),
            })
    return output


def render_chrome_trace(events: Iterable[TraceEvent]) -> str:
    """The full trace JSON document as a deterministic string."""
    document = {
        "displayTimeUnit": "ms",
        "otherData": {"generator": "repro.obs",
                      "timestamp_unit": "simulation cycles"},
        "traceEvents": chrome_trace_events(events),
    }
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


def write_chrome_trace(path: str, events: Iterable[TraceEvent]) -> int:
    """Write the trace to ``path``; returns the number of trace events."""
    rendered = render_chrome_trace(events)
    with open(path, "w") as handle:
        handle.write(rendered)
        handle.write("\n")
    return len(json.loads(rendered)["traceEvents"])
