"""The performance regression gate and its trajectory dashboard.

``perf-gate`` re-measures a small fixed suite of simulation points (the
*gate suite*), appends the fresh records to the run ledger, and compares
them against the committed **trajectory** — a ledger JSONL file checked
into the repository (``benchmarks/results/perf_trajectory.jsonl``).  The
comparison is noise-aware by *construction*, not by statistics:

* **simulated-cycle metrics compare exactly.**  The simulator is
  deterministic, so any drift in ``execution_cycles``, ``phase_cycles``,
  bus lines, or the SLO ladder is a real behavior change — either a
  regression or an unrecorded improvement.  Both fail the gate: the fix
  for an intentional change is to re-record the trajectory, which is
  what keeps it honest.
* **host wall-clock compares against a tolerance band**, and only when
  the baseline was measured on a host with the same ``cpu_count`` and
  neither side carries ``single_core_caveat: true``; otherwise the wall
  comparison is *skipped with a visible finding* rather than silently
  passed or dishonestly failed.

Only the **latest** trajectory record per :func:`~repro.obs.ledger
.point_key` is the baseline — older records remain in the file as
history and feed the dashboard's trajectory view.

:func:`render_dashboard` renders the trajectory as a static,
self-contained HTML page built *only* from ledger records — no
timestamps, no randomness — so the dashboard bytes are identical across
``--jobs`` values and cached replays whenever the records are.
"""

from __future__ import annotations

import html
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import DesignPoint, table2_config
from repro.obs.ledger import (Ledger, canonical_json, config_digest_hex,
                              host_clock_s, make_record, point_key,
                              simulation_core)
from repro.obs.metrics import PHASE_PRIORITY
from repro.parallel.cache import RunCache
from repro.parallel.fingerprint import code_fingerprint
from repro.parallel.sweep import SweepPoint, run_sweep

#: The gate suite: small enough to re-measure on every run, wide enough
#: to cover the single-channel Figure 8 designs.  ``trace_length`` 1200
#: deliberately matches BENCH_pr3's hot-path point so the migrated PR3
#: record sits on the same trajectory key as every fresh gate record.
GATE_TRACE_LENGTH = 1200
GATE_SEED = 2018
GATE_WORKLOAD = "mcf"
GATE_WINDOW_CYCLES = 50_000
GATE_DESIGNS: Tuple[DesignPoint, ...] = (DesignPoint.FREECURSIVE,
                                         DesignPoint.INDEP_2,
                                         DesignPoint.SPLIT_2)

#: Default multiplicative wall-clock budget: the fresh run may take up
#: to this many times the recorded baseline before it counts as a
#: regression.  Wide on purpose — wall time on shared CI boxes is noisy,
#: and the cycle metrics are the precise signal.
WALL_TOLERANCE = 2.5

#: Measure keys holding host wall-clock (tolerance-banded, never exact).
_WALL_MARKERS = ("wall", "speedup")

#: Measure keys that describe the *host* a record was taken on, not the
#: simulation.  They must never fail an exact comparison: two honest
#: records from different machines legitimately disagree on them.
_HOST_FACT_KEYS = frozenset({"single_core_caveat", "cpu_count"})


def gate_points() -> List[SweepPoint]:
    """The fixed suite of points the gate re-measures."""
    return [SweepPoint(design=design, workload=GATE_WORKLOAD, channels=1,
                       trace_length=GATE_TRACE_LENGTH, seed=GATE_SEED,
                       window_policy="in-order", collect_trace=True,
                       window_cycles=GATE_WINDOW_CYCLES)
            for design in GATE_DESIGNS]


def gate_records(jobs: int = 1,
                 cache: Optional[RunCache] = None
                 ) -> List[Dict[str, object]]:
    """Measure the gate suite and return one ledger record per point."""
    fingerprint = code_fingerprint()
    outcome = run_sweep(gate_points(), jobs=jobs, cache=cache)
    records: List[Dict[str, object]] = []
    for entry in outcome.results:
        point = entry.point
        core = simulation_core(point.design.value, point.workload,
                               entry.result,
                               config_digest_hex(point.system_config()),
                               channels=point.channels,
                               trace_length=point.trace_length,
                               seed=point.seed,
                               window_policy=point.window_policy,
                               fingerprint=fingerprint)
        records.append(make_record("gate", core, wall_ms=entry.wall_ms,
                                   jobs=outcome.jobs,
                                   from_cache=entry.from_cache))
    return records


# ----------------------------------------------------------------------
# Trajectory comparison
# ----------------------------------------------------------------------

@dataclass
class Finding:
    """One comparison outcome.  ``severity`` is ``fail``/``warn``/``info``."""

    kind: str
    severity: str
    point: str
    metric: str = ""
    baseline: object = None
    current: object = None

    def describe(self) -> str:
        detail = f" {self.metric}" if self.metric else ""
        values = ""
        if self.baseline is not None or self.current is not None:
            values = f" (recorded {self.baseline!r}, now {self.current!r})"
        return f"[{self.severity}] {self.kind}: {self.point}{detail}{values}"


@dataclass
class GateReport:
    """Everything one gate run concluded."""

    findings: List[Finding] = field(default_factory=list)
    compared_points: int = 0
    new_points: int = 0

    @property
    def ok(self) -> bool:
        return not any(item.severity == "fail" for item in self.findings)

    def render(self) -> str:
        lines = [f"perf-gate: {self.compared_points} point(s) compared, "
                 f"{self.new_points} new"]
        for item in self.findings:
            lines.append("  " + item.describe())
        lines.append("perf-gate: " + ("PASS" if self.ok else "FAIL"))
        return "\n".join(lines)


def latest_by_key(records: Sequence[Dict[str, object]]
                  ) -> Dict[str, Dict[str, object]]:
    """Last record in file order per trajectory key (keyless kinds skip)."""
    latest: Dict[str, Dict[str, object]] = {}
    for record in records:
        key = point_key(record)
        if key is not None:
            latest[key] = record
    return latest


def _is_wall_metric(path: str) -> bool:
    last_segment = path.rsplit(".", 1)[-1]
    return any(marker in last_segment for marker in _WALL_MARKERS)


def _compare_measures(baseline: Dict[str, object],
                      current: Dict[str, object], label: str,
                      findings: List[Finding], prefix: str = "measure",
                      wall_comparable: bool = True,
                      wall_tolerance: float = WALL_TOLERANCE) -> None:
    """Walk the shared keys of two measure trees.

    Keys present on only one side are ignored — schema growth (a new
    metric) must not fail historical baselines; cycle-valued shared keys
    must match exactly; wall-valued shared keys get the tolerance band.
    """
    for key in sorted(set(baseline) & set(current)):
        if key in _HOST_FACT_KEYS:
            continue
        base_value, cur_value = baseline[key], current[key]
        path = f"{prefix}.{key}"
        if isinstance(base_value, dict) and isinstance(cur_value, dict):
            _compare_measures(base_value, cur_value, label, findings,
                              prefix=path, wall_comparable=wall_comparable,
                              wall_tolerance=wall_tolerance)
            continue
        if _is_wall_metric(path):
            if not wall_comparable:
                continue    # one skip finding per point, emitted by caller
            try:
                base_f, cur_f = float(base_value), float(cur_value)  # type: ignore[arg-type]
            except (TypeError, ValueError):
                continue
            if base_f > 0 and "speedup" not in path \
                    and cur_f > base_f * wall_tolerance:
                findings.append(Finding("wall-regression", "fail", label,
                                        metric=path, baseline=base_value,
                                        current=cur_value))
            continue
        if base_value != cur_value:
            direction = "cycle-regression"
            if isinstance(base_value, (int, float)) \
                    and isinstance(cur_value, (int, float)) \
                    and cur_value < base_value:
                # faster than recorded is still a gate failure: the
                # trajectory is stale and must be re-recorded
                direction = "cycle-improvement"
            findings.append(Finding(direction, "fail", label, metric=path,
                                    baseline=base_value, current=cur_value))


def compare_records(trajectory: Sequence[Dict[str, object]],
                    current: Sequence[Dict[str, object]],
                    wall_tolerance: float = WALL_TOLERANCE) -> GateReport:
    """Compare fresh records against the latest trajectory baselines."""
    report = GateReport()
    baselines = latest_by_key(trajectory)
    for record in current:
        key = point_key(record)
        if key is None:
            continue
        point = record.get("core", {}).get("point", {})
        label = f"{point.get('design')}/{point.get('workload')}"
        baseline = baselines.get(key)
        if baseline is None:
            report.new_points += 1
            report.findings.append(Finding("new-point", "info", label))
            continue
        report.compared_points += 1
        base_host = baseline.get("host", {}) or {}
        cur_host = record.get("host", {}) or {}
        base_caveat = bool((baseline["core"].get("measure") or {})
                           .get("single_core_caveat"))
        cur_caveat = bool((record["core"].get("measure") or {})
                          .get("single_core_caveat"))
        if base_caveat or cur_caveat:
            # a single-core host cannot produce a meaningful wall or
            # speedup figure on either side of the comparison — skip the
            # whole wall band with a visible note instead of comparing
            # one honest number against one meaningless one
            wall_comparable = False
            report.findings.append(Finding(
                "wall-skipped", "info", label,
                metric="measure.single_core_caveat",
                baseline=base_caveat, current=cur_caveat))
        else:
            wall_comparable = (base_host.get("cpu_count") is not None
                               and base_host.get("cpu_count")
                               == cur_host.get("cpu_count"))
            if not wall_comparable:
                report.findings.append(Finding(
                    "wall-skipped", "info", label,
                    metric="host.cpu_count",
                    baseline=base_host.get("cpu_count"),
                    current=cur_host.get("cpu_count")))
        _compare_measures(baseline["core"].get("measure", {}),
                          record["core"].get("measure", {}),
                          label, report.findings,
                          wall_comparable=wall_comparable,
                          wall_tolerance=wall_tolerance)
        if baseline["core"].get("config_digest") is not None \
                and record["core"].get("config_digest") is not None \
                and baseline["core"]["config_digest"] \
                != record["core"]["config_digest"]:
            report.findings.append(Finding(
                "config-drift", "warn", label, metric="config_digest",
                baseline=str(baseline["core"]["config_digest"])[:12],
                current=str(record["core"]["config_digest"])[:12]))
    return report


def run_gate(trajectory_path: str, jobs: int = 1,
             cache: Optional[RunCache] = None,
             ledger: Optional[Ledger] = None,
             wall_tolerance: float = WALL_TOLERANCE
             ) -> Tuple[GateReport, List[Dict[str, object]], float]:
    """Measure the suite, compare, optionally append to a run ledger.

    Returns ``(report, fresh_records, wall_seconds)``.
    """
    started = host_clock_s()
    records = gate_records(jobs=jobs, cache=cache)
    trajectory = Ledger(trajectory_path).read()
    report = compare_records(trajectory, records,
                             wall_tolerance=wall_tolerance)
    if ledger is not None:
        ledger.append_all(records)
    return report, records, host_clock_s() - started


# ----------------------------------------------------------------------
# Dashboard
# ----------------------------------------------------------------------

#: Fixed categorical assignment order for phase colors: attribution
#: priority first, then idle, then anything new alphabetically.  Slots
#: are assigned to the *phases present*, in this order, never cycled —
#: beyond the eighth slot a phase folds into "other".
_PHASE_ORDER: Tuple[str, ...] = PHASE_PRIORITY + ("idle",)

#: Validated categorical palette (reference instance): light/dark pairs.
_SERIES = (("#2a78d6", "#3987e5"), ("#eb6834", "#d95926"),
           ("#1baf7a", "#199e70"), ("#eda100", "#c98500"),
           ("#e87ba4", "#d55181"), ("#008300", "#008300"),
           ("#4a3aa7", "#9085e9"), ("#e34948", "#e66767"))

_CSS = """\
:root { color-scheme: light dark; }
body { margin: 0; background: var(--page); color: var(--ink);
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif; }
.viz-root {
  color-scheme: light;
  --page: #f9f9f7; --surface-1: #fcfcfb; --ink: #0b0b0b;
  --ink-2: #52514e; --muted: #898781; --grid: #e1e0d9;
  --baseline: #c3c2b7; --ring: rgba(11,11,11,0.10);
%LIGHT_SERIES%
  max-width: 960px; margin: 0 auto; padding: 24px 16px 48px;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) .viz-root {
    color-scheme: dark;
    --page: #0d0d0d; --surface-1: #1a1a19; --ink: #ffffff;
    --ink-2: #c3c2b7; --muted: #898781; --grid: #2c2c2a;
    --baseline: #383835; --ring: rgba(255,255,255,0.10);
%DARK_SERIES%
  }
}
:root[data-theme="dark"] .viz-root {
  color-scheme: dark;
  --page: #0d0d0d; --surface-1: #1a1a19; --ink: #ffffff;
  --ink-2: #c3c2b7; --muted: #898781; --grid: #2c2c2a;
  --baseline: #383835; --ring: rgba(255,255,255,0.10);
%DARK_SERIES%
}
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 14px; margin: 28px 0 8px; color: var(--ink); }
.sub { color: var(--ink-2); font-size: 12px; margin: 0 0 16px; }
.tiles { display: flex; gap: 12px; flex-wrap: wrap; margin: 16px 0; }
.tile { background: var(--surface-1); border: 1px solid var(--ring);
  border-radius: 8px; padding: 10px 14px; min-width: 110px; }
.tile .v { font-size: 22px; }
.tile .k { font-size: 11px; color: var(--muted); margin-top: 2px; }
.card { background: var(--surface-1); border: 1px solid var(--ring);
  border-radius: 8px; padding: 14px 16px; margin: 8px 0; }
.row { display: grid; grid-template-columns: 160px 1fr 110px;
  align-items: center; gap: 10px; margin: 6px 0; }
.row .lbl { font-size: 12px; color: var(--ink-2);
  overflow: hidden; text-overflow: ellipsis; white-space: nowrap; }
.row .val { font-size: 12px; text-align: right;
  font-variant-numeric: tabular-nums; }
.track { position: relative; height: 16px; }
.bar { position: absolute; top: 2px; height: 12px;
  background: var(--s1); border-radius: 0 4px 4px 0; }
.stack { display: flex; height: 14px; border-radius: 4px;
  overflow: hidden; background: var(--surface-1); }
.seg { height: 100%; border-right: 2px solid var(--surface-1); }
.seg:last-child { border-right: none; }
.legend { display: flex; gap: 14px; flex-wrap: wrap; margin: 8px 0 2px;
  font-size: 11px; color: var(--ink-2); }
.chip { display: inline-block; width: 9px; height: 9px;
  border-radius: 2px; margin-right: 5px; vertical-align: -1px; }
table { border-collapse: collapse; width: 100%; font-size: 12px; }
th { text-align: left; color: var(--muted); font-weight: 500;
  border-bottom: 1px solid var(--baseline); padding: 4px 8px; }
td { border-bottom: 1px solid var(--grid); padding: 4px 8px;
  font-variant-numeric: tabular-nums; }
td.num, th.num { text-align: right; }
.badge { font-size: 11px; color: var(--ink-2);
  border: 1px solid var(--ring); border-radius: 10px; padding: 1px 8px; }
.foot { color: var(--muted); font-size: 11px; margin-top: 28px; }
"""


def _esc(value: object) -> str:
    return html.escape(str(value), quote=True)


def _fmt(value: object) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, int):
        return f"{value:,}"
    if isinstance(value, float):
        return f"{value:,.3f}"
    return _esc(value)


def _pct(value: float, total: float) -> str:
    if total <= 0:
        return "0.000"
    return f"{value / total * 100.0:.3f}"


def _phase_slots(phases: Sequence[str]) -> Dict[str, int]:
    """Stable phase -> categorical-slot assignment (fixed order)."""
    ordered = [name for name in _PHASE_ORDER if name in phases]
    ordered += sorted(name for name in phases if name not in _PHASE_ORDER)
    return {name: index for index, name in enumerate(ordered)}


def _point_label(record: Dict[str, object]) -> str:
    point = record.get("core", {}).get("point", {})
    return f"{point.get('design')}/{point.get('workload')}"


def render_dashboard(records: Sequence[Dict[str, object]],
                     title: str = "Performance trajectory") -> str:
    """Static self-contained HTML from ledger records (deterministic).

    Built exclusively from the record list — identical records in,
    identical bytes out; nothing host- or time-dependent is consulted.
    """
    latest = latest_by_key(records)
    gate_latest = [record for record in latest.values()
                   if record.get("kind") == "gate"]
    gate_latest.sort(key=lambda record: _point_label(record))
    scaling = [record for record in records
               if record.get("kind") == "sweep-scaling"]
    fingerprints = {record.get("core", {}).get("fingerprint")
                    for record in records}
    fingerprints.discard(None)

    parts: List[str] = []
    parts.append(f"<h1>{_esc(title)}</h1>")
    parts.append('<p class="sub">Replay-stable cores from the run ledger; '
                 "host wall-clock shown as recorded, never compared "
                 "across machines.</p>")

    # -- stat tiles ----------------------------------------------------
    parts.append('<div class="tiles">')
    for value, label in ((len(records), "ledger records"),
                         (len(latest), "tracked points"),
                         (len(gate_latest), "gate points"),
                         (len(fingerprints), "code versions")):
        parts.append(f'<div class="tile"><div class="v">{value}</div>'
                     f'<div class="k">{_esc(label)}</div></div>')
    parts.append("</div>")

    # -- execution cycles per gate point (magnitude -> bars) -----------
    if gate_latest:
        parts.append("<h2>Execution cycles — latest per gate point</h2>")
        parts.append('<div class="card">')
        peak = max(int(record["core"]["measure"].get("execution_cycles", 0))
                   for record in gate_latest)
        for record in gate_latest:
            cycles = int(record["core"]["measure"].get(
                "execution_cycles", 0))
            label = _point_label(record)
            parts.append(
                '<div class="row">'
                f'<div class="lbl">{_esc(label)}</div>'
                f'<div class="track"><div class="bar" '
                f'style="width:{_pct(cycles, peak)}%" '
                f'title="{_esc(label)}: {cycles:,} cycles"></div></div>'
                f'<div class="val">{cycles:,}</div></div>')
        parts.append("</div>")

    # -- phase mix per gate point (identity -> stacked, categorical) ---
    phase_points = [record for record in gate_latest
                    if record["core"]["measure"].get("phase_cycles")]
    if phase_points:
        names: List[str] = []
        for record in phase_points:
            for name in record["core"]["measure"]["phase_cycles"]:
                if name not in names:
                    names.append(name)
        slots = _phase_slots(names)
        shown = [name for name, slot in sorted(slots.items(),
                                               key=lambda item: item[1])
                 if slot < len(_SERIES) - 1 or len(slots) <= len(_SERIES)]
        folded = [name for name in slots if name not in shown]

        parts.append("<h2>Phase mix — share of attributed cycles</h2>")
        parts.append('<div class="card">')
        parts.append('<div class="legend">')
        for name in shown:
            parts.append(f'<span><span class="chip" style="background:'
                         f'var(--s{slots[name] + 1})"></span>'
                         f'{_esc(name.lower())}</span>')
        if folded:
            parts.append('<span><span class="chip" style="background:'
                         'var(--muted)"></span>other</span>')
        parts.append("</div>")
        for record in phase_points:
            phases = {str(name): int(value) for name, value
                      in record["core"]["measure"]["phase_cycles"].items()}
            total = sum(phases.values())
            label = _point_label(record)
            segments = []
            other = 0
            for name in shown:
                value = phases.get(name, 0)
                if value <= 0:
                    continue
                segments.append(
                    f'<div class="seg" style="width:{_pct(value, total)}%;'
                    f'background:var(--s{slots[name] + 1})" '
                    f'title="{_esc(label)} {_esc(name.lower())}: '
                    f'{value:,} cycles ({_pct(value, total)}%)"></div>')
            for name in folded:
                other += phases.get(name, 0)
            if other > 0:
                segments.append(
                    f'<div class="seg" style="width:{_pct(other, total)}%;'
                    f'background:var(--muted)" title="{_esc(label)} other: '
                    f'{other:,} cycles"></div>')
            parts.append(
                '<div class="row">'
                f'<div class="lbl">{_esc(label)}</div>'
                f'<div class="stack">{"".join(segments)}</div>'
                f'<div class="val">{total:,}</div></div>')
        # the table view is the relief channel for low-contrast slots
        parts.append("<table><tr><th>point</th>")
        for name in shown + (["other"] if folded else []):
            parts.append(f'<th class="num">{_esc(name.lower())}</th>')
        parts.append("</tr>")
        for record in phase_points:
            phases = {str(name): int(value) for name, value
                      in record["core"]["measure"]["phase_cycles"].items()}
            parts.append(f"<tr><td>{_esc(_point_label(record))}</td>")
            for name in shown:
                parts.append(f'<td class="num">{phases.get(name, 0):,}</td>')
            if folded:
                other = sum(phases.get(name, 0) for name in folded)
                parts.append(f'<td class="num">{other:,}</td>')
            parts.append("</tr>")
        parts.append("</table></div>")

    # -- trajectory: every record per key, file order ------------------
    keyed: Dict[str, List[Dict[str, object]]] = {}
    for record in records:
        key = point_key(record)
        if key is not None:
            keyed.setdefault(key, []).append(record)
    multi = {key: entries for key, entries in sorted(keyed.items())
             if len(entries) > 1}
    if multi:
        parts.append("<h2>Trajectory — recorded history per point</h2>")
        parts.append('<div class="card"><table>')
        parts.append('<tr><th>point</th><th class="num">entry</th>'
                     '<th class="num">execution cycles</th>'
                     '<th class="num">delta</th><th>fingerprint</th>'
                     '<th class="num">wall ms (as recorded)</th></tr>')
        for key, entries in multi.items():
            previous: Optional[int] = None
            for index, record in enumerate(entries):
                cycles = record["core"]["measure"].get("execution_cycles")
                delta = ""
                cycles_text = ""
                if isinstance(cycles, int):
                    cycles_text = f"{cycles:,}"
                    if previous is not None:
                        delta = f"{cycles - previous:+,}"
                    previous = cycles
                wall = record.get("host", {}).get("wall_ms")
                wall_text = _fmt(wall) if wall is not None else ""
                fingerprint = str(
                    record["core"].get("fingerprint", ""))[:12]
                parts.append(
                    f"<tr><td>{_esc(_point_label(record))}</td>"
                    f'<td class="num">{index + 1}</td>'
                    f'<td class="num">{cycles_text}</td>'
                    f'<td class="num">{delta}</td>'
                    f"<td>{_esc(fingerprint)}</td>"
                    f'<td class="num">{wall_text}</td></tr>')
        parts.append("</table></div>")

    # -- sweep scaling -------------------------------------------------
    if scaling:
        parts.append("<h2>Sweep scaling — wall-clock, machine-qualified"
                     "</h2>")
        parts.append('<div class="card"><table>')
        parts.append('<tr><th>fingerprint</th><th class="num">points</th>'
                     '<th class="num">jobs</th><th class="num">cpus</th>'
                     '<th class="num">serial s</th>'
                     '<th class="num">parallel s</th>'
                     '<th class="num">speedup</th><th>note</th></tr>')
        for record in scaling:
            measure = record["core"]["measure"]
            note = ("&#9888; single-core host"
                    if measure.get("single_core_caveat") else "")
            parts.append(
                f"<tr><td>{_esc(str(record['core'].get('fingerprint'))[:12])}"
                f'</td><td class="num">{_fmt(measure.get("points"))}</td>'
                f'<td class="num">{_fmt(measure.get("jobs"))}</td>'
                f'<td class="num">{_fmt(measure.get("cpu_count"))}</td>'
                f'<td class="num">{_fmt(measure.get("serial_wall_s"))}</td>'
                f'<td class="num">'
                f'{_fmt(measure.get("parallel_wall_s"))}</td>'
                f'<td class="num">{_fmt(measure.get("speedup"))}</td>'
                f'<td><span class="badge">{note}</span></td></tr>')
        parts.append("</table></div>")

    parts.append('<p class="foot">Deterministic render: built from '
                 "ledger record cores only. Wall-clock values are the "
                 "volatile host section, shown as recorded and excluded "
                 "from record digests and byte-identity checks.</p>")

    light = "".join(f"  --s{i + 1}: {pair[0]};\n"
                    for i, pair in enumerate(_SERIES))
    dark = "".join(f"    --s{i + 1}: {pair[1]};\n"
                   for i, pair in enumerate(_SERIES))
    css = (_CSS.replace("%LIGHT_SERIES%", light.rstrip("\n"))
           .replace("%DARK_SERIES%", dark.rstrip("\n")))
    return ("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n"
            "<meta charset=\"utf-8\">\n"
            f"<title>{_esc(title)}</title>\n"
            f"<style>\n{css}</style>\n</head>\n<body>\n"
            '<main class="viz-root">\n' + "\n".join(parts)
            + "\n</main>\n</body>\n</html>\n")


def trajectory_summary(records: Sequence[Dict[str, object]]) -> str:
    """Plain-text digest of a trajectory file (``perf-report``)."""
    latest = latest_by_key(records)
    lines = [f"records: {len(records)}", f"tracked points: {len(latest)}"]
    for key in sorted(latest):
        record = latest[key]
        measure = record["core"].get("measure", {})
        cycles = measure.get("execution_cycles")
        extra = f" execution_cycles={cycles:,}" \
            if isinstance(cycles, int) else ""
        lines.append(f"  {record['kind']} {_point_label(record)}"
                     f" entries={sum(1 for other in records if point_key(other) == key)}"
                     f"{extra}")
    scaling = [record for record in records
               if record.get("kind") == "sweep-scaling"]
    for record in scaling:
        measure = record["core"]["measure"]
        caveat = " [single-core host]" \
            if measure.get("single_core_caveat") else ""
        lines.append(f"  sweep-scaling jobs={measure.get('jobs')}"
                     f" speedup={measure.get('speedup')}{caveat}")
    return "\n".join(lines)
