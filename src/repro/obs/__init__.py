"""repro.obs — tracing, metrics, time series, the ledger, and the audit.

Layered on the rest of the stack without touching its defaults: every
instrumented component accepts a :class:`~repro.obs.tracer.Tracer` and
defaults to :data:`~repro.obs.tracer.NULL_TRACER`, whose methods are
no-ops (see ``docs/observability.md``).  The performance-observability
layer — :mod:`~repro.obs.ledger` (append-only run records),
:mod:`~repro.obs.timeseries` (tumbling cycle windows),
:mod:`~repro.obs.profile` (hotspot attribution), and
:mod:`~repro.obs.regress` (the regression gate and dashboard) — rides on
the same events.
"""

from repro.obs.audit import (AuditResult, LeakyLink, adversary_observations,
                             audit_adaptive_control,
                             audit_address_streams,
                             audit_freecursive_protocol,
                             audit_indep_split_protocol,
                             audit_independent_protocol,
                             audit_split_protocol, audit_timing_design,
                             compare_observables, run_full_audit,
                             scan_secret_args)
from repro.obs.chrome import (chrome_trace_events, render_chrome_trace,
                              write_chrome_trace)
from repro.obs.ledger import (LEDGER_SCHEMA, Ledger, canonical_core_line,
                              host_clock_s, host_provenance, make_record,
                              migrate_bench_pr3, point_key, resolve_ledger,
                              simulation_core, verify_record)
from repro.obs.metrics import (IDLE_PHASE, PHASE_PRIORITY, Counter, Gauge,
                               Histogram, MetricsRegistry, fold_metrics_dict,
                               phase_breakdown, summarize_phase_breakdown)
from repro.obs.profile import (WallClockSampler, diff_hotspots,
                               exclusive_cycles, hotspots, render_hotspot_diff,
                               render_hotspots)
# NOTE: repro.obs.regress is deliberately NOT imported here — it pulls in
# the config/sweep stack, and core modules import repro.obs.tracer during
# their own initialization (the package root must stay leaf-importable).
# Use ``from repro.obs.regress import ...`` directly.
from repro.obs.timeseries import (WINDOW_SCHEMA, WindowedTracer,
                                  WindowSnapshot, fold_windows,
                                  windows_from_events, windows_to_dicts)
from repro.obs.tracer import (CATEGORY_BUS, CATEGORY_CPU, CATEGORY_DRAM,
                              CATEGORY_LINK, CATEGORY_PROTOCOL,
                              CATEGORY_STASH, NULL_TRACER, CollectingTracer,
                              StepClock, TraceEvent, Tracer, merge_events)

__all__ = [
    "AuditResult", "LeakyLink", "adversary_observations",
    "audit_adaptive_control", "audit_address_streams",
    "audit_freecursive_protocol",
    "audit_indep_split_protocol", "audit_independent_protocol",
    "audit_split_protocol", "audit_timing_design", "compare_observables",
    "run_full_audit", "scan_secret_args",
    "chrome_trace_events", "render_chrome_trace", "write_chrome_trace",
    "LEDGER_SCHEMA", "Ledger", "canonical_core_line", "host_clock_s",
    "host_provenance", "make_record", "migrate_bench_pr3", "point_key",
    "resolve_ledger", "simulation_core", "verify_record",
    "IDLE_PHASE", "PHASE_PRIORITY", "Counter", "Gauge", "Histogram",
    "MetricsRegistry", "fold_metrics_dict", "phase_breakdown",
    "summarize_phase_breakdown",
    "WallClockSampler", "diff_hotspots", "exclusive_cycles", "hotspots",
    "render_hotspot_diff", "render_hotspots",
    "WINDOW_SCHEMA", "WindowedTracer", "WindowSnapshot", "fold_windows",
    "windows_from_events", "windows_to_dicts",
    "CATEGORY_BUS", "CATEGORY_CPU", "CATEGORY_DRAM", "CATEGORY_LINK",
    "CATEGORY_PROTOCOL", "CATEGORY_STASH", "NULL_TRACER",
    "CollectingTracer", "StepClock", "TraceEvent", "Tracer", "merge_events",
]
