"""repro.obs — tracing, metrics, trace export, and the adversary audit.

Layered on the rest of the stack without touching its defaults: every
instrumented component accepts a :class:`~repro.obs.tracer.Tracer` and
defaults to :data:`~repro.obs.tracer.NULL_TRACER`, whose methods are
no-ops (see ``docs/observability.md``).
"""

from repro.obs.audit import (AuditResult, LeakyLink, adversary_observations,
                             audit_address_streams,
                             audit_freecursive_protocol,
                             audit_indep_split_protocol,
                             audit_independent_protocol,
                             audit_split_protocol, audit_timing_design,
                             compare_observables, run_full_audit,
                             scan_secret_args)
from repro.obs.chrome import (chrome_trace_events, render_chrome_trace,
                              write_chrome_trace)
from repro.obs.metrics import (IDLE_PHASE, PHASE_PRIORITY, Counter, Gauge,
                               Histogram, MetricsRegistry, phase_breakdown,
                               summarize_phase_breakdown)
from repro.obs.tracer import (CATEGORY_BUS, CATEGORY_CPU, CATEGORY_DRAM,
                              CATEGORY_LINK, CATEGORY_PROTOCOL,
                              CATEGORY_STASH, NULL_TRACER, CollectingTracer,
                              StepClock, TraceEvent, Tracer, merge_events)

__all__ = [
    "AuditResult", "LeakyLink", "adversary_observations",
    "audit_address_streams", "audit_freecursive_protocol",
    "audit_indep_split_protocol", "audit_independent_protocol",
    "audit_split_protocol", "audit_timing_design", "compare_observables",
    "run_full_audit", "scan_secret_args",
    "chrome_trace_events", "render_chrome_trace", "write_chrome_trace",
    "IDLE_PHASE", "PHASE_PRIORITY", "Counter", "Gauge", "Histogram",
    "MetricsRegistry", "phase_breakdown", "summarize_phase_breakdown",
    "CATEGORY_BUS", "CATEGORY_CPU", "CATEGORY_DRAM", "CATEGORY_LINK",
    "CATEGORY_PROTOCOL", "CATEGORY_STASH", "NULL_TRACER",
    "CollectingTracer", "StepClock", "TraceEvent", "Tracer", "merge_events",
]
