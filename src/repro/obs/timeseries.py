"""Cycle-windowed time series: tumbling snapshots of the metrics registry.

The cumulative :class:`~repro.obs.metrics.MetricsRegistry` answers *what
happened over the whole run*; the adaptive-control work the ROADMAP names
needs *what is happening now*.  This module slices the same event stream
into **tumbling windows keyed on simulated cycles**: window ``k`` covers
``[k * window_cycles, (k + 1) * window_cycles)``, and every event is
folded into exactly one window by its start cycle, with the same
event-to-metric mapping :meth:`MetricsRegistry.from_events` uses.  Two
consequences fall out by construction:

* **exactness** — folding every window back together (in window order,
  via :func:`~repro.obs.metrics.fold_metrics_dict`) reproduces the
  cumulative registry's counters and histograms *exactly*, and the gauge
  extrema exactly; nothing is sampled or approximated;
* **determinism** — windows derive from the deterministic event stream
  alone, so the snapshot list is byte-identical across ``--jobs`` values
  and cached replays (``tests/test_obs_timeseries.py`` pins this).

:class:`WindowedTracer` is the live seam: it wraps any inner tracer,
folds windows incrementally, and invokes an ``on_flush`` callback once a
window falls a configurable lag behind the stream's high-water mark.
Spans are recorded when they *close*, so an event can still arrive for an
already-flushed window (a long path access straddling a boundary);
flushed snapshots are therefore *provisional* live views — late events
are still folded and counted in :attr:`WindowedTracer.late_events`, and
the :meth:`WindowedTracer.close` snapshot list is authoritative.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional

from repro.obs.metrics import MetricsRegistry, fold_metrics_dict
from repro.obs.tracer import TraceEvent, Tracer

#: Bump when the snapshot layout changes (ledger records embed it).
WINDOW_SCHEMA = 1


class WindowSnapshot:
    """One tumbling window's delta registry."""

    __slots__ = ("index", "window_cycles", "registry")

    def __init__(self, index: int, window_cycles: int):
        self.index = index
        self.window_cycles = window_cycles
        self.registry = MetricsRegistry()

    @property
    def start(self) -> int:
        return self.index * self.window_cycles

    @property
    def end(self) -> int:
        return (self.index + 1) * self.window_cycles

    def as_dict(self) -> Dict[str, object]:
        return {"schema": WINDOW_SCHEMA, "index": self.index,
                "start": self.start, "end": self.end,
                "metrics": self.registry.as_dict()}


def _fold_event(registry: MetricsRegistry, event: TraceEvent) -> None:
    """One event into one registry — the from_events mapping, single-shot."""
    qualified = f"{event.category}/{event.name}"
    if event.kind == "span":
        registry.histogram(qualified).record(event.duration)
    elif event.kind == "counter":
        registry.gauge(qualified).set(int(event.args.get("value", 0)))
        registry.counter(qualified + "/samples").inc()
    else:
        registry.counter(qualified).inc()


class WindowedTracer(Tracer):
    """Tracer wrapper that folds events into tumbling cycle windows.

    Forwards every event to ``inner`` unchanged (pass the run's
    :class:`~repro.obs.tracer.CollectingTracer`, or the null tracer to
    keep only windows), and maintains one :class:`WindowSnapshot` per
    window touched.  ``on_flush(snapshot)`` fires — at most once per
    window, in index order — when the high-water mark of observed start
    cycles passes the window's end by ``lag_windows`` full windows; this
    is the hook a runtime controller subscribes to.
    """

    enabled = True

    def __init__(self, inner: Tracer, window_cycles: int,
                 on_flush: Optional[Callable[[WindowSnapshot], None]] = None,
                 lag_windows: int = 1):
        if window_cycles <= 0:
            raise ValueError("window_cycles must be positive")
        if lag_windows < 0:
            raise ValueError("lag_windows must be non-negative")
        self.inner = inner
        self.window_cycles = window_cycles
        self.on_flush = on_flush
        self.lag_windows = lag_windows
        self.late_events = 0
        self._windows: Dict[int, WindowSnapshot] = {}
        self._high_water = 0
        self._flushed_through = -1   # highest window index already flushed
        self._closed = False

    @property
    def events(self):
        """Delegate to the inner tracer's event list (phase attribution
        and trace export read ``tracer.events`` duck-typed)."""
        return getattr(self.inner, "events", ())

    # -- Tracer interface ----------------------------------------------

    def span(self, name: str, category: str, lane: str, start: int,
             end: int, **args: object) -> None:
        self.inner.span(name, category, lane, start, end, **args)
        self._fold(TraceEvent("span", name, category, lane, start,
                              end - start, args))

    def instant(self, name: str, category: str, lane: str, ts: int,
                **args: object) -> None:
        self.inner.instant(name, category, lane, ts, **args)
        self._fold(TraceEvent("instant", name, category, lane, ts, 0, args))

    def counter(self, name: str, category: str, lane: str, ts: int,
                value: int) -> None:
        self.inner.counter(name, category, lane, ts, value)
        self._fold(TraceEvent("counter", name, category, lane, ts, 0,
                              {"value": value}))

    # -- windowing -----------------------------------------------------

    def _fold(self, event: TraceEvent) -> None:
        if self._closed:
            raise RuntimeError("windowed tracer already closed")
        index = event.start // self.window_cycles
        if index <= self._flushed_through:
            self.late_events += 1
        window = self._windows.get(index)
        if window is None:
            window = self._windows[index] = WindowSnapshot(
                index, self.window_cycles)
        _fold_event(window.registry, event)
        if event.start > self._high_water:
            self._high_water = event.start
            self._maybe_flush()

    def _maybe_flush(self) -> None:
        if self.on_flush is None:
            return
        # window k is flushable once the stream has moved lag_windows
        # whole windows past its end
        ripe = (self._high_water // self.window_cycles
                - self.lag_windows - 1)
        while self._flushed_through < ripe:
            self._flushed_through += 1
            window = self._windows.get(self._flushed_through)
            if window is not None:
                self.on_flush(window)

    def close(self) -> List[WindowSnapshot]:
        """Finalize: every window touched, in index order (authoritative)."""
        self._closed = True
        return [self._windows[index] for index in sorted(self._windows)]


def windows_from_events(events: Iterable[TraceEvent],
                        window_cycles: int) -> List[WindowSnapshot]:
    """Slice an already-collected event stream into tumbling windows."""
    tracer = WindowedTracer(Tracer(), window_cycles)
    for event in events:
        tracer._fold(event)
    return tracer.close()


def windows_to_dicts(snapshots: Iterable[WindowSnapshot]
                     ) -> List[Dict[str, object]]:
    """The JSON-friendly snapshot list (what ``RunResult.windows`` holds)."""
    return [snapshot.as_dict() for snapshot in snapshots]


def fold_windows(snapshots: Iterable[Dict[str, object]]) -> MetricsRegistry:
    """Fold snapshot dicts (in the given order) into one registry.

    Feeding the window-ordered output of :func:`windows_to_dicts` back
    through this reproduces the cumulative
    ``MetricsRegistry().from_events(events)`` view: counters and
    histograms exactly, gauge extrema exactly.  (A gauge's *last* value
    is taken from the last window holding a sample, which equals the
    event-order last whenever samples are emitted in cycle order — true
    of every counter track the simulator emits today.)
    """
    registry = MetricsRegistry()
    for snapshot in snapshots:
        fold_metrics_dict(registry, snapshot["metrics"])
    return registry
