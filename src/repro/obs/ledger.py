"""The performance ledger: an append-only JSONL trail of measured runs.

Every measurement entry point — ``simulate``, ``sweep``/``compare``,
``serve-bench``, ``faults``, the benchmark harness — can append one
record per executed point, so the repository accumulates a *trajectory*
of its own performance instead of one hand-recorded datapoint per PR.

Each record is two sections with deliberately different contracts:

* ``core`` — the **replay-stable** measurement: the point identity
  (design, workload, trace length, seed, ...), the configuration digest,
  the :func:`~repro.parallel.fingerprint.code_fingerprint` of the source
  that produced it, simulated-cycle metrics (``execution_cycles``,
  ``phase_cycles``, bus lines), and the SLO quantile ladder.  Two runs
  of the same code on the same point produce byte-identical cores — on
  any machine, any ``--jobs`` value, cached or fresh.  ``core_digest``
  (SHA-256 of the canonical core JSON) makes tampering and torn writes
  detectable.
* ``host`` — the **explicitly volatile** provenance: ``cpu_count``,
  Python version, platform, host wall-clock milliseconds, the ``jobs``
  value, and whether the run was served from cache.  This section is
  excluded from the digest; it is *data about the measurement machine*,
  and pretending it is reproducible would be dishonest.

:meth:`Ledger.canonical_dump` renders the core stream alone — that is
the byte-identity artifact CI compares across ``--jobs`` and cached
replays, and the input the regression gate and dashboard consume.
"""

from __future__ import annotations

import hashlib
import hmac
import json
import os
import platform
import sys
import time
from typing import Dict, List, Optional


def _fingerprint(explicit: Optional[str]) -> str:
    """Resolve a code fingerprint without importing :mod:`repro.parallel`
    at module scope — ``repro.obs`` must stay leaf-importable (core
    modules import :mod:`repro.obs.tracer` during their own init)."""
    if explicit is not None:
        return explicit
    from repro.parallel.fingerprint import code_fingerprint

    return code_fingerprint()

#: Ledger record layout version.  Schema 1 is the ad-hoc BENCH_pr3.json
#: shape; :func:`migrate_bench_pr3` lifts it into schema 2.
LEDGER_SCHEMA = 2

#: Environment variable naming the default ledger file for CLI verbs.
LEDGER_ENV = "REPRO_LEDGER"

#: Set to ``1`` to silence every implicit ledger append (CI determinism
#: jobs that byte-compare working trees use this).
LEDGER_DISABLE_ENV = "REPRO_NO_LEDGER"


def canonical_json(payload: object) -> str:
    """Deterministic JSON rendering (sorted keys, fixed separators)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def host_clock_s() -> float:
    """Host wall-clock seconds for throughput measurement (monotonic)."""
    return time.perf_counter()  # reprolint: disable=DET001 -- the ledger's host section is the one sanctioned home for wall-clock: it never enters simulated state and is excluded from the record digest


def host_provenance() -> Dict[str, object]:
    """Who measured: the volatile, machine-identifying fields."""
    return {
        "cpu_count": os.cpu_count() or 1,
        "python": platform.python_version(),
        "platform": sys.platform,
    }


def core_digest(core: Dict[str, object]) -> str:
    return hashlib.sha256(canonical_json(core).encode()).hexdigest()


def make_record(kind: str, core: Dict[str, object],
                wall_ms: Optional[float] = None,
                jobs: Optional[int] = None,
                from_cache: Optional[bool] = None,
                host: Optional[Dict[str, object]] = None
                ) -> Dict[str, object]:
    """Assemble one ledger record from a deterministic core."""
    host_section = dict(host) if host is not None else host_provenance()
    if wall_ms is not None:
        host_section["wall_ms"] = round(float(wall_ms), 3)
    if jobs is not None:
        host_section["jobs"] = int(jobs)
    if from_cache is not None:
        host_section["from_cache"] = bool(from_cache)
    return {
        "schema": LEDGER_SCHEMA,
        "kind": kind,
        "core": core,
        "core_digest": core_digest(core),
        "host": host_section,
    }


def verify_record(record: Dict[str, object]) -> bool:
    """True when the core section matches its recorded digest."""
    try:
        return (record.get("schema") == LEDGER_SCHEMA
                and hmac.compare_digest(core_digest(record["core"]),
                                        str(record["core_digest"])))
    except (KeyError, TypeError):
        return False


def canonical_core_line(record: Dict[str, object]) -> str:
    """The replay-stable rendering of one record (host section dropped)."""
    return canonical_json({"schema": record["schema"],
                           "kind": record["kind"],
                           "core": record["core"],
                           "core_digest": record["core_digest"]})


def point_key(record: Dict[str, object]) -> Optional[str]:
    """Trajectory identity of a record, or ``None`` for keyless kinds.

    Records carrying a ``core.point`` mapping (gate points, simulate and
    sweep entries) key on ``kind`` plus the canonical point JSON — the
    regression gate compares the newest record per key against the
    recorded trajectory's latest entry for the same key.
    """
    point = record.get("core", {}).get("point")
    if not isinstance(point, dict):
        return None
    return f"{record.get('kind')}|{canonical_json(point)}"


class Ledger:
    """Append-only JSONL file of ledger records."""

    def __init__(self, path: str):
        self.path = path
        self.skipped_lines = 0

    def append(self, record: Dict[str, object]) -> Dict[str, object]:
        """Write one record as a single canonical JSON line."""
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        line = canonical_json(record) + "\n"
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line)
        return record

    def append_all(self, records: List[Dict[str, object]]) -> None:
        for record in records:
            self.append(record)

    def read(self, verify: bool = True) -> List[Dict[str, object]]:
        """Every parseable record, in file order.

        Unparseable or digest-failing lines are skipped (counted in
        :attr:`skipped_lines`), never a traceback — an interrupted append
        must not poison the whole trajectory.
        """
        self.skipped_lines = 0
        records: List[Dict[str, object]] = []
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                lines = handle.readlines()
        except FileNotFoundError:
            return []
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                self.skipped_lines += 1
                continue
            if verify and not verify_record(record):
                self.skipped_lines += 1
                continue
            records.append(record)
        return records

    def canonical_dump(self,
                       records: Optional[List[Dict[str, object]]] = None
                       ) -> str:
        """The byte-identity artifact: one canonical core line per record.

        Identical across ``--jobs`` values, cached replays, and machines
        (the volatile host section is omitted); what CI compares and the
        gate/dashboard consume.
        """
        if records is None:
            records = self.read()
        return "".join(canonical_core_line(record) + "\n"
                       for record in records)


def resolve_ledger(path: Optional[str] = None) -> Optional[Ledger]:
    """The ledger a CLI verb should append to, or ``None`` for none.

    An explicit ``--ledger`` path is a direct user request and always
    wins — even over :data:`LEDGER_DISABLE_ENV`, with a warning so the
    override is visible rather than silent.  Without one, the ambient
    :data:`LEDGER_ENV` default applies, which the disable variable
    silences (the CI determinism jobs rely on that).
    """
    disabled = os.environ.get(LEDGER_DISABLE_ENV) == "1"
    if path:
        if disabled:
            print(f"ledger: explicit --ledger {path} overrides "
                  f"{LEDGER_DISABLE_ENV}=1", file=sys.stderr)
        return Ledger(path)
    if disabled:
        return None
    target = os.environ.get(LEDGER_ENV)
    return Ledger(target) if target else None


# ----------------------------------------------------------------------
# Record builders for the tree's measurement producers
# ----------------------------------------------------------------------

def simulation_core(design: str, workload: str, result,
                    config_digest_hex: str,
                    channels: int = 1, trace_length: int = 4000,
                    seed: int = 2018, window_policy: str = "in-order",
                    fingerprint: Optional[str] = None
                    ) -> Dict[str, object]:
    """The deterministic core of one simulation run record."""
    return {
        "point": {
            "design": design,
            "workload": workload,
            "channels": channels,
            "trace_length": trace_length,
            "seed": seed,
            "window_policy": window_policy,
        },
        "config_digest": config_digest_hex,
        "fingerprint": _fingerprint(fingerprint),
        "measure": {
            "execution_cycles": result.execution_cycles,
            "miss_count": result.miss_count,
            "accessoram_count": result.accessoram_count,
            "main_bus_lines": result.main_bus_lines,
            "probe_commands": result.probe_commands,
            "drain_accesses": result.drain_accesses,
            "phase_cycles": dict(sorted(result.phase_cycles.items())),
            "slo": result.miss_latency.summary(),
            "failures": len(result.failures),
            "windows": len(result.windows),
            # inside the digest-protected core on purpose: a silent loss
            # of fast-path coverage shows up as a gate finding even when
            # the cycle counts still agree
            "fastpath_hit_rate": result.extras.get("fastpath_hit_rate",
                                                   0.0),
        },
    }


def config_digest_hex(config) -> str:
    """SHA-256 of the canonical configuration payload."""
    from repro.parallel.cache import config_digest_payload

    def encode(value: object) -> object:
        return getattr(value, "value", str(value))

    rendered = json.dumps(config_digest_payload(config), sort_keys=True,
                          separators=(",", ":"), default=encode)
    return hashlib.sha256(rendered.encode()).hexdigest()


def serve_core(report: Dict[str, object],
               fingerprint: Optional[str] = None) -> Dict[str, object]:
    """The deterministic core of one serving benchmark record."""
    spec = dict(report.get("spec", {}))
    return {
        "point": {
            "design": spec.get("design"),
            "rate": spec.get("rate"),
            "requests": spec.get("requests"),
            "capacity": spec.get("capacity"),
            "batch": spec.get("batch"),
            "tenants": spec.get("tenants"),
            "seed": spec.get("seed"),
            "profile": spec.get("profile"),
        },
        "spec_digest": hashlib.sha256(
            canonical_json(spec).encode()).hexdigest(),
        "fingerprint": _fingerprint(fingerprint),
        "measure": {
            "totals": report.get("totals", {}),
            "queue": report.get("queue", {}),
            "utilization": report.get("service", {}).get("utilization"),
            "shed_rate": report.get("model", {}).get("shed_rate"),
            "slo": report.get("sojourn", {}).get("aggregate", {}),
            # adaptive runs: the full decision log is digest-protected —
            # a replay that decides differently breaks the core digest
            "control": report.get("control"),
        },
    }


def campaign_core(report: Dict[str, object],
                  fingerprint: Optional[str] = None) -> Dict[str, object]:
    """The deterministic core of one fault-campaign record."""
    spec = dict(report.get("spec", {}))
    return {
        "point": {
            "design": spec.get("design"),
            "accesses": spec.get("accesses"),
            "seed": spec.get("seed"),
        },
        "spec_digest": hashlib.sha256(
            canonical_json(spec).encode()).hexdigest(),
        "fingerprint": _fingerprint(fingerprint),
        "measure": {
            "detection": report.get("detection", {}),
            "resilience": report.get("resilience", {}),
            "completed": report.get("completed"),
            "all_detected": report.get("all_detected"),
        },
    }


def sweep_scaling_core(points: int, serial_wall_s: float,
                       parallel_wall_s: float, jobs: int,
                       results_identical: bool,
                       cpu_count: Optional[int] = None,
                       fingerprint: Optional[str] = None
                       ) -> Dict[str, object]:
    """Serial-vs-parallel sweep scaling, honest about the machine.

    ``cpu_count`` lives in the *core* here on purpose: the measured
    speedup is meaningless without it (BENCH_pr3's 0.95x on a 1-core box
    is a caveat, not a regression), so scaling records carry it as part
    of the claim.  The wall-clock seconds stay core too — this record
    *is* a wall-clock measurement; its point identity is the machine.
    """
    count = cpu_count if cpu_count is not None else (os.cpu_count() or 1)
    speedup = serial_wall_s / parallel_wall_s if parallel_wall_s else 0.0
    return {
        "fingerprint": _fingerprint(fingerprint),
        "measure": {
            "points": points,
            "cpu_count": count,
            "jobs": jobs,
            "serial_wall_s": round(serial_wall_s, 6),
            "parallel_wall_s": round(parallel_wall_s, 6),
            "speedup": round(speedup, 6),
            "results_identical": bool(results_identical),
            "single_core_caveat": count <= 1,
        },
    }


def migrate_bench_pr3(payload: Dict[str, object]) -> List[Dict[str, object]]:
    """Lift a schema-1 ``BENCH_pr3.json`` record into ledger records.

    The original file stays untouched; this converter exists so the
    trajectory starts with two datapoints instead of one.  Produces one
    gate-comparable point record (kind ``gate`` — the hot-path point is
    a gate-suite point, so the trajectory shows its history) and one
    sweep-scaling record, both stamped with the *original* fingerprint
    and host facts.
    """
    if payload.get("schema") != 1:
        raise ValueError(f"expected BENCH_pr3 schema 1, "
                         f"got {payload.get('schema')!r}")
    fingerprint = str(payload["code_fingerprint"])
    host = {"cpu_count": int(payload.get("cpu_count", 1)),
            "python": None, "platform": None,
            "migrated_from": "BENCH_pr3.json"}
    hotpath = payload["hotpath"]
    sweep = payload["sweep"]
    point_core = {
        "point": {
            "design": hotpath["design"],
            "workload": hotpath["workload"],
            "channels": 1,
            "trace_length": int(payload["trace_length"]),
            "seed": 2018,
            "window_policy": "in-order",
        },
        "config_digest": None,   # schema 1 never recorded it
        "fingerprint": fingerprint,
        "measure": {
            "execution_cycles": int(hotpath["cycles"]),
            "reference_wall_s": hotpath["reference_wall_s"],
            "optimized_wall_s": hotpath["optimized_wall_s"],
            "speedup": hotpath["speedup"],
            "cycles_identical": bool(hotpath["cycles_identical"]),
        },
    }
    scaling_core = sweep_scaling_core(
        points=int(sweep["points"]),
        serial_wall_s=float(sweep["serial_wall_s"]),
        parallel_wall_s=float(sweep["parallel_wall_s"]),
        jobs=int(sweep["parallel_jobs"]),
        results_identical=bool(sweep["results_identical"]),
        cpu_count=int(payload.get("cpu_count", 1)),
        fingerprint=fingerprint)
    scaling_core["measure"]["designs"] = list(sweep["designs"])
    scaling_core["measure"]["workloads"] = list(sweep["workloads"])
    return [
        make_record("gate", point_core,
                    wall_ms=float(hotpath["optimized_wall_s"]) * 1000.0,
                    host=host),
        make_record("sweep-scaling", scaling_core, host=host),
    ]
