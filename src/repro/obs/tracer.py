"""The tracer: a zero-overhead-when-disabled event firehose.

Every layer of the simulator — the trace CPU, the protocol backends, the
DRAM channels, the link buses, the functional protocol stacks — accepts a
:class:`Tracer` and emits *events* through it:

* **spans** — an interval of work with a name, a category, and a lane
  (``PATH_READ`` on ``sdimm0``, a miss on ``cpu``);
* **instants** — a point occurrence (a PROBE poll, a drain trigger);
* **counters** — a sampled value over time (queue depth, stash occupancy).

The default tracer is :data:`NULL_TRACER`, whose methods are no-ops and
whose ``enabled`` flag is ``False``.  Instrumentation sites in hot paths
guard on ``tracer.enabled`` before building argument dictionaries, so a
run without tracing pays one attribute load and one branch per site —
measured well under the 2% budget on a Figure-8-sized run.

Timestamps are plain integers.  The timing tier uses CPU cycles; the
functional protocol tier (which has no clock) uses logical step counters.
Both are deterministic, so a traced run is byte-for-byte reproducible.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

#: Event categories used across the stack.  ``bus`` and main-channel
#: ``dram`` events are the adversary-visible set (see obs/audit.py).
CATEGORY_CPU = "cpu"
CATEGORY_PROTOCOL = "protocol"
CATEGORY_DRAM = "dram"
CATEGORY_BUS = "bus"
CATEGORY_LINK = "link"
CATEGORY_STASH = "stash"
#: Fault-injection bookkeeping (repro.faults).  Deliberately outside the
#: adversary-visible set: injections and retries are simulator metadata,
#: and the audit must prove the *observable* categories stay identical.
CATEGORY_FAULT = "fault"


class TraceEvent:
    """One recorded event.  Plain slotted object for allocation speed."""

    __slots__ = ("kind", "name", "category", "lane", "start", "duration",
                 "args")

    def __init__(self, kind: str, name: str, category: str, lane: str,
                 start: int, duration: int,
                 args: Optional[Dict[str, object]] = None):
        self.kind = kind            # "span" | "instant" | "counter"
        self.name = name
        self.category = category
        self.lane = lane
        self.start = start
        self.duration = duration    # 0 for instants and counters
        self.args = args or {}

    @property
    def end(self) -> int:
        return self.start + self.duration

    def key(self) -> Tuple:
        """Stable identity tuple (testing and deduplication)."""
        return (self.kind, self.name, self.category, self.lane, self.start,
                self.duration, tuple(sorted(self.args.items())))

    def __repr__(self) -> str:
        return (f"TraceEvent({self.kind}, {self.name!r}, {self.category!r}, "
                f"{self.lane!r}, {self.start}, {self.duration}, {self.args})")


class Tracer:
    """The tracing interface *and* the null implementation.

    ``enabled`` is ``False`` here; every method is a no-op.  Subclasses
    that record must set ``enabled = True`` and override the three event
    methods.  Call sites that build argument dictionaries or compute
    anything nontrivial must guard with ``if tracer.enabled:`` so the
    null tracer stays free.
    """

    enabled = False

    def span(self, name: str, category: str, lane: str, start: int,
             end: int, **args: object) -> None:
        """Record a closed interval ``[start, end)`` of named work."""

    def instant(self, name: str, category: str, lane: str, ts: int,
                **args: object) -> None:
        """Record a point occurrence."""

    def counter(self, name: str, category: str, lane: str, ts: int,
                value: int) -> None:
        """Record a sampled value (queue depth, occupancy...)."""


#: The shared do-nothing tracer every component defaults to.
NULL_TRACER = Tracer()


class CollectingTracer(Tracer):
    """Records every event in memory, in emission order.

    Emission order is deterministic because the simulator is; exporters
    (obs/chrome.py) and the audit (obs/audit.py) preserve it.
    """

    enabled = True

    def __init__(self):
        self.events: List[TraceEvent] = []

    def span(self, name: str, category: str, lane: str, start: int,
             end: int, **args: object) -> None:
        if end < start:
            raise ValueError(f"span {name!r} ends before it starts "
                             f"({start}..{end})")
        self.events.append(TraceEvent("span", name, category, lane,
                                      start, end - start, args))

    def instant(self, name: str, category: str, lane: str, ts: int,
                **args: object) -> None:
        self.events.append(TraceEvent("instant", name, category, lane,
                                      ts, 0, args))

    def counter(self, name: str, category: str, lane: str, ts: int,
                value: int) -> None:
        self.events.append(TraceEvent("counter", name, category, lane,
                                      ts, 0, {"value": value}))

    def __len__(self) -> int:
        return len(self.events)

    def clear(self) -> None:
        self.events.clear()

    # ------------------------------------------------------------------
    # Convenience selectors (tests, reports)
    # ------------------------------------------------------------------

    def spans(self, category: Optional[str] = None,
              name: Optional[str] = None) -> List[TraceEvent]:
        return [event for event in self.events if event.kind == "span"
                and (category is None or event.category == category)
                and (name is None or event.name == name)]

    def counters(self, name: Optional[str] = None) -> List[TraceEvent]:
        return [event for event in self.events if event.kind == "counter"
                and (name is None or event.name == name)]

    def lanes(self) -> List[str]:
        seen: Dict[str, None] = {}
        for event in self.events:
            seen.setdefault(event.lane, None)
        return list(seen)


class StepClock:
    """A logical clock for layers without a cycle model (core protocols).

    Each ``tick()`` advances one step; phase spans in the functional tier
    are one step long, so a protocol access renders as an ordered strip
    of phases in the exported trace.
    """

    __slots__ = ("now",)

    def __init__(self):
        self.now = 0

    def tick(self, steps: int = 1) -> int:
        """Advance and return the *previous* time (span start)."""
        start = self.now
        self.now += steps
        return start


def merge_events(*streams: Iterable[TraceEvent]) -> List[TraceEvent]:
    """Concatenate event streams and order them by (start, emission)."""
    merged: List[TraceEvent] = []
    for stream in streams:
        merged.extend(stream)
    return sorted(merged, key=lambda event: event.start)
