"""Hotspot attribution: where do the cycles (and the host seconds) go?

Palermo's lesson (PAPERS.md) is that oblivious-memory performance work is
won by fine-grained attribution across protocol and hardware layers.
This module provides two attributions with very different contracts:

* **Simulated cycles, deterministic** — :func:`exclusive_cycles` sweeps
  the tracer's span stream and charges every cycle of every lane to the
  *innermost* active span (latest start wins; emission order breaks
  ties), so nested instrumentation — a PROBE poll inside a path access
  inside a miss — attributes each cycle exactly once.  The resulting
  top-N table is byte-stable across runs and machines, which makes
  :func:`diff_hotspots` a meaningful review artifact between two code
  versions: cycles moved, not noise moved.
* **Host wall-clock, sampled, opt-in** — :class:`WallClockSampler`
  periodically samples the main thread's Python stack from a daemon
  thread.  It exists for the optimization work (finding slow *host*
  code, not slow *simulated* hardware); it is nondeterministic by
  nature and therefore never feeds ledger cores or gate decisions.
"""

from __future__ import annotations

import sys
import threading
from typing import Dict, Iterable, List, Optional, Tuple

from repro.obs.tracer import TraceEvent


def exclusive_cycles(events: Iterable[TraceEvent],
                     category: Optional[str] = None
                     ) -> Dict[Tuple[str, str], Dict[str, int]]:
    """Exclusive-cycle attribution per ``(lane, span name)``.

    Within each lane, at any instant the active span with the greatest
    start cycle (ties: latest emitted, i.e. the innermost) owns the
    cycle.  Returns ``{(lane, name): {"exclusive", "inclusive",
    "count"}}``; per lane, the exclusive values sum exactly to the
    lane's covered-cycle total.
    """
    lanes: Dict[str, List[Tuple[int, int, int, str]]] = {}
    stats: Dict[Tuple[str, str], Dict[str, int]] = {}
    for sequence, event in enumerate(events):
        if event.kind != "span":
            continue
        if category is not None and event.category != category:
            continue
        lanes.setdefault(event.lane, []).append(
            (event.start, event.end, sequence, event.name))
        entry = stats.setdefault((event.lane, event.name),
                                 {"exclusive": 0, "inclusive": 0,
                                  "count": 0})
        entry["inclusive"] += event.duration
        entry["count"] += 1
    for lane in sorted(lanes):
        spans = sorted(lanes[lane])
        boundaries = sorted({edge for span in spans
                             for edge in (span[0], span[1])})
        next_span = 0
        active: List[Tuple[int, int, int, str]] = []
        for left, right in zip(boundaries, boundaries[1:]):
            while next_span < len(spans) and spans[next_span][0] <= left:
                active.append(spans[next_span])
                next_span += 1
            active = [span for span in active if span[1] > left]
            if not active:
                continue
            # innermost: latest start, then latest emission
            owner = max(active, key=lambda span: (span[0], span[2]))
            stats[(lane, owner[3])]["exclusive"] += right - left
    return stats


def hotspots(events: Iterable[TraceEvent], top_n: int = 20,
             category: Optional[str] = None) -> List[Dict[str, object]]:
    """Top-N exclusive-cycle rows, largest first (deterministic order)."""
    stats = exclusive_cycles(events, category=category)
    rows = [{"lane": lane, "name": name,
             "exclusive_cycles": entry["exclusive"],
             "inclusive_cycles": entry["inclusive"],
             "count": entry["count"]}
            for (lane, name), entry in stats.items()]
    rows.sort(key=lambda row: (-row["exclusive_cycles"], row["lane"],
                               row["name"]))
    return rows[:top_n] if top_n else rows


def render_hotspots(rows: List[Dict[str, object]],
                    title: str = "hotspots") -> str:
    """Fixed-width table of hotspot rows."""
    total = sum(row["exclusive_cycles"] for row in rows) or 1
    lines = [f"{title}: top {len(rows)} by exclusive cycles",
             f"{'lane':12s} {'span':16s} {'excl cycles':>12s} "
             f"{'share':>7s} {'count':>8s} {'incl cycles':>12s}"]
    for row in rows:
        share = row["exclusive_cycles"] / total
        lines.append(f"{row['lane']:12s} {row['name']:16s} "
                     f"{row['exclusive_cycles']:12,d} {share:7.1%} "
                     f"{row['count']:8,d} {row['inclusive_cycles']:12,d}")
    return "\n".join(lines)


def diff_hotspots(before: List[Dict[str, object]],
                  after: List[Dict[str, object]]
                  ) -> List[Dict[str, object]]:
    """Per-(lane, span) exclusive-cycle deltas between two runs.

    Rows sort by absolute delta (largest movement first); spans present
    in only one run appear with the other side at zero, so a phase that
    vanished or appeared is front and center rather than silently
    dropped.
    """
    index_before = {(row["lane"], row["name"]): row for row in before}
    index_after = {(row["lane"], row["name"]): row for row in after}
    rows = []
    for key in sorted(set(index_before) | set(index_after)):
        cycles_before = index_before.get(key, {}).get("exclusive_cycles", 0)
        cycles_after = index_after.get(key, {}).get("exclusive_cycles", 0)
        rows.append({"lane": key[0], "name": key[1],
                     "before": cycles_before, "after": cycles_after,
                     "delta": cycles_after - cycles_before})
    rows.sort(key=lambda row: (-abs(row["delta"]), row["lane"],
                               row["name"]))
    return [row for row in rows if row["before"] or row["after"]]


def render_hotspot_diff(rows: List[Dict[str, object]],
                        top_n: int = 20) -> str:
    lines = [f"{'lane':12s} {'span':16s} {'before':>12s} {'after':>12s} "
             f"{'delta':>12s}"]
    for row in rows[:top_n]:
        lines.append(f"{row['lane']:12s} {row['name']:16s} "
                     f"{row['before']:12,d} {row['after']:12,d} "
                     f"{row['delta']:+12,d}")
    return "\n".join(lines)


class WallClockSampler:
    """Opt-in sampling profiler over host wall-clock time.

    Samples the *calling* thread's Python stack every ``interval_s``
    seconds from a daemon thread and counts innermost frames.  This is
    host-side tooling for the optimization loop: start it, run the slow
    thing, stop it, read :meth:`report`.  Results depend on machine load
    and are never written into ledger cores.
    """

    def __init__(self, interval_s: float = 0.005, depth: int = 3):
        if interval_s <= 0:
            raise ValueError("interval must be positive")
        self.interval_s = interval_s
        self.depth = max(1, depth)
        self.samples = 0
        self.counts: Dict[Tuple[str, ...], int] = {}
        self._target_thread: Optional[int] = None
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()

    def _frame_key(self, frame) -> Tuple[str, ...]:
        parts: List[str] = []
        while frame is not None and len(parts) < self.depth:
            code = frame.f_code
            parts.append(f"{code.co_filename}:{code.co_name}:"
                         f"{frame.f_lineno}")
            frame = frame.f_back
        return tuple(parts)

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            frame = sys._current_frames().get(self._target_thread)
            if frame is None:
                continue
            self.samples += 1
            key = self._frame_key(frame)
            self.counts[key] = self.counts.get(key, 0) + 1

    def start(self) -> "WallClockSampler":
        if self._thread is not None:
            raise RuntimeError("sampler already started")
        self._target_thread = threading.get_ident()
        self._stop.clear()
        self._thread = threading.Thread(target=self._loop, daemon=True,
                                        name="repro-wall-sampler")
        self._thread.start()
        return self

    def stop(self) -> "WallClockSampler":
        if self._thread is None:
            return self
        self._stop.set()
        self._thread.join(timeout=2.0)
        self._thread = None
        return self

    def __enter__(self) -> "WallClockSampler":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()

    def report(self, top_n: int = 15) -> List[Dict[str, object]]:
        """Innermost-frame sample counts, largest first."""
        rows = [{"frames": list(frames), "samples": count,
                 "share": count / self.samples if self.samples else 0.0}
                for frames, count in self.counts.items()]
        rows.sort(key=lambda row: (-row["samples"], row["frames"]))
        return rows[:top_n]


def sample_wall_clock(function, interval_s: float = 0.005,
                      top_n: int = 15):
    """Run ``function()`` under the sampler; returns (result, rows)."""
    sampler = WallClockSampler(interval_s=interval_s)
    with sampler:
        result = function()
    return result, sampler.report(top_n)


#: Kept for symmetry with the cycle tables: how long a sampled run took.
def wall_elapsed_s(start_s: float) -> float:
    """Elapsed host seconds since ``start_s`` (a ``host_clock_s`` read)."""
    from repro.obs.ledger import host_clock_s

    return host_clock_s() - start_s


__all__ = [
    "exclusive_cycles", "hotspots", "render_hotspots", "diff_hotspots",
    "render_hotspot_diff", "WallClockSampler", "sample_wall_clock",
    "wall_elapsed_s",
]
