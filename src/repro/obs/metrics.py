"""Metrics on top of the event stream: counters, gauges, histograms, and
the per-phase cycle breakdown that extends :class:`RunResult`.

The breakdown answers the question the paper's evaluation keeps asking —
*where do the cycles go?* — by attributing every cycle of the measured
window to exactly one protocol phase.  Phases overlap freely across lanes
(that overlap is the Independent protocol's whole point), so the
attribution is an exclusive timeline sweep: at any instant the cycle is
charged to the highest-priority phase active anywhere in the system, and
instants covered by no phase are charged to ``idle`` (core compute, LLC
hits, dead time).  By construction the breakdown sums *exactly* to the
window length, which is what makes it trustworthy as an accounting.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Optional, Tuple

from repro.obs.tracer import CATEGORY_PROTOCOL, TraceEvent

#: Attribution priority, most-specific first: a PROBE poll inside a path
#: access charges to PROBE, the surrounding path access soaks up the rest.
#: CONTROL (adaptive-controller evaluations) outranks everything so the
#: control plane's overhead is visible in hotspots however it overlaps.
PHASE_PRIORITY: Tuple[str, ...] = (
    "CONTROL",
    "PROBE",
    "FETCH_RESULT",
    "ACCESS",
    "APPEND",
    "DRAIN",
    "METADATA",
    "FETCH_STASH",
    "RECEIVE_LIST",
    "FETCH_DATA",
    "PATH_READ",
    "PATH_WRITE",
)

#: Cycles covered by no protocol phase (compute, hits, queue dead time).
IDLE_PHASE = "idle"


def _priority(name: str) -> Tuple[int, str]:
    try:
        return (PHASE_PRIORITY.index(name), name)
    except ValueError:
        return (len(PHASE_PRIORITY), name)


def phase_breakdown(events: Iterable[TraceEvent], window_start: int,
                    window_end: int,
                    category: str = CATEGORY_PROTOCOL) -> Dict[str, int]:
    """Exclusive per-phase cycle attribution over ``[window_start, window_end)``.

    Returns ``{phase: cycles}`` including :data:`IDLE_PHASE`; values sum
    exactly to ``window_end - window_start``.  Runs in O(n log n) over the
    span count via a lazy-deletion priority sweep.
    """
    if window_end <= window_start:
        return {}
    spans: List[Tuple[int, int, Tuple[int, str]]] = []
    for event in events:
        if event.kind != "span" or event.category != category:
            continue
        start = max(event.start, window_start)
        end = min(event.end, window_end)
        if end > start:
            spans.append((start, end, _priority(event.name)))
    breakdown: Dict[str, int] = {}
    if not spans:
        breakdown[IDLE_PHASE] = window_end - window_start
        return breakdown
    spans.sort(key=lambda item: item[0])
    boundaries = sorted({window_start, window_end}
                        | {span[0] for span in spans}
                        | {span[1] for span in spans})
    boundaries = [b for b in boundaries
                  if window_start <= b <= window_end]
    active: List[Tuple[Tuple[int, str], int, int]] = []  # (prio, seq, end)
    next_span = 0
    sequence = 0
    for left, right in zip(boundaries, boundaries[1:]):
        while next_span < len(spans) and spans[next_span][0] <= left:
            start, end, priority = spans[next_span]
            heapq.heappush(active, (priority, sequence, end))
            sequence += 1
            next_span += 1
        # lazy deletion: expired spans can never become active again
        while active and active[0][2] <= left:
            heapq.heappop(active)
        phase = active[0][0][1] if active else IDLE_PHASE
        breakdown[phase] = breakdown.get(phase, 0) + (right - left)
    return breakdown


# ----------------------------------------------------------------------
# A small metrics registry for ad-hoc aggregation over a run
# ----------------------------------------------------------------------

class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only increase")
        self.value += amount


class Gauge:
    """A point-in-time value with its observed extremes."""

    __slots__ = ("name", "value", "minimum", "maximum", "_seen")

    def __init__(self, name: str):
        self.name = name
        self.value = 0
        self.minimum = 0
        self.maximum = 0
        self._seen = False

    def set(self, value: int) -> None:
        self.value = value
        if not self._seen:
            self.minimum = value
            self.maximum = value
            self._seen = True
        else:
            self.minimum = min(self.minimum, value)
            self.maximum = max(self.maximum, value)

    def adjust(self, delta: int) -> None:
        """Shift the gauge by ``delta`` (queue depths, in-flight counts)."""
        self.set(self.value + delta)


class Histogram:
    """Power-of-two bucketed latency/size histogram."""

    __slots__ = ("name", "buckets", "count", "total")

    def __init__(self, name: str):
        self.name = name
        self.buckets: Dict[int, int] = {}
        self.count = 0
        self.total = 0

    def record(self, value: int) -> None:
        if value < 0:
            raise ValueError("histogram values must be non-negative")
        bucket = value.bit_length()          # 0 -> 0, [2^k, 2^k+1) -> k+1
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly form; an empty histogram renders as the explicit
        null summary (zero count/total, no buckets) — never a traceback."""
        return {"count": self.count, "total": self.total,
                "buckets": {str(k): v
                            for k, v in sorted(self.buckets.items())}}


class MetricsRegistry:
    """Named metric store shared by instrumentation sites."""

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        if name not in self._gauges:
            self._gauges[name] = Gauge(name)
        return self._gauges[name]

    def histogram(self, name: str) -> Histogram:
        if name not in self._histograms:
            self._histograms[name] = Histogram(name)
        return self._histograms[name]

    def from_events(self, events: Iterable[TraceEvent]) -> "MetricsRegistry":
        """Fold an event stream into the registry (one pass).

        Spans feed a duration histogram per name, counters feed gauges,
        instants feed counts — the aggregate view of a collected trace.
        """
        for event in events:
            qualified = f"{event.category}/{event.name}"
            if event.kind == "span":
                self.histogram(qualified).record(event.duration)
            elif event.kind == "counter":
                self.gauge(qualified).set(int(event.args.get("value", 0)))
                self.counter(qualified + "/samples").inc()
            else:
                self.counter(qualified).inc()
        return self

    def as_dict(self) -> Dict[str, object]:
        return {
            "counters": {name: counter.value
                         for name, counter in sorted(self._counters.items())},
            "gauges": {name: {"last": gauge.value, "min": gauge.minimum,
                              "max": gauge.maximum}
                       for name, gauge in sorted(self._gauges.items())},
            "histograms": {name: histogram.as_dict()
                           for name, histogram
                           in sorted(self._histograms.items())},
        }


def fold_metrics_dict(target: MetricsRegistry,
                      payload: Dict[str, object]) -> MetricsRegistry:
    """Fold one ``MetricsRegistry.as_dict()`` payload into ``target``.

    The merge semantics every fan-out in the tree shares (sweep workers,
    serving points, time-series windows): counters and histograms are
    additive; gauges keep the min of minima, the max of maxima, and take
    their last value from the *last payload folded* — so callers must
    fold in a deterministic order (submission order for workers, window
    order for time series).
    """
    for name, value in payload.get("counters", {}).items():
        target.counter(name).inc(int(value))
    for name, stats in payload.get("gauges", {}).items():
        gauge = target.gauge(name)
        gauge.set(int(stats["min"]))
        gauge.set(int(stats["max"]))
        gauge.set(int(stats["last"]))
    for name, stats in payload.get("histograms", {}).items():
        histogram = target.histogram(name)
        for bucket, count in stats.get("buckets", {}).items():
            histogram.buckets[int(bucket)] = (
                histogram.buckets.get(int(bucket), 0) + int(count))
        histogram.count += int(stats.get("count", 0))
        histogram.total += int(stats.get("total", 0))
    return target


def summarize_phase_breakdown(breakdown: Dict[str, int],
                              total: Optional[int] = None) -> List[str]:
    """Human-readable breakdown lines, largest share first."""
    if total is None:
        total = sum(breakdown.values())
    lines = []
    for phase, cycles in sorted(breakdown.items(),
                                key=lambda item: (-item[1], item[0])):
        share = cycles / total if total else 0.0
        lines.append(f"{phase:14s} {cycles:14,d}  {share:6.1%}")
    return lines
