"""Message authentication: link MACs and PMMAC bucket integrity.

PMMAC (from Freecursive ORAM) authenticates each bucket with a MAC over its
data and a per-bucket write counter; replays are detected because the
expected counter is reconstructed from the position map side.  The Split
protocol slices buckets across SDIMMs and each slice carries *its own* MAC
over its own half-counter and half-data — the n-way MAC overhead the paper
calls out.
"""

from __future__ import annotations

import hmac

from repro.crypto.prf import Prf


class MacError(Exception):
    """Raised when a MAC verification fails (tampering or replay)."""


class MacEngine:
    """Keyed MAC with truncated tags, for link messages."""

    TAG_BYTES = 8

    def __init__(self, key: bytes):
        self._prf = Prf(key)

    def tag(self, message: bytes) -> bytes:
        return self._prf.evaluate(b"mac:" + message, self.TAG_BYTES)

    def verify(self, message: bytes, tag: bytes) -> None:
        # Constant-time: == short-circuits at the first differing byte,
        # handing a bus-level adversary a byte-position timing oracle.
        if not hmac.compare_digest(self.tag(message), tag):
            raise MacError("link MAC verification failed")


class PmmacAuthenticator:
    """PMMAC-style per-bucket authentication.

    A bucket's tag binds together its tree position, its monotonically
    increasing write counter, and its (encrypted) contents.  Verification
    recomputes the tag with the counter the reader believes is current, so a
    replayed stale bucket fails even though its tag was once valid.
    """

    TAG_BYTES = 8

    def __init__(self, key: bytes):
        self._prf = Prf(key)

    def tag(self, bucket_index: int, counter: int, payload: bytes) -> bytes:
        header = bucket_index.to_bytes(8, "little") + counter.to_bytes(8, "little")
        return self._prf.evaluate(b"pmmac:" + header + payload, self.TAG_BYTES)

    def verify(self, bucket_index: int, counter: int, payload: bytes,
               tag: bytes) -> None:
        expected = self.tag(bucket_index, counter, payload)
        if not hmac.compare_digest(expected, tag):
            raise MacError(
                f"PMMAC verification failed for bucket {bucket_index} "
                f"at counter {counter}"
            )
