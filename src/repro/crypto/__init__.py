"""Cryptographic primitives for the CPU <-> secure-buffer link and PMMAC.

The paper uses counter-mode AES and PMMAC (position-map MAC) integrity.
Hardware AES is irrelevant to protocol behaviour, so we build the same
constructions over a SHA-256 PRF: a counter-mode pad cipher, keyed MACs, and
the boot-time session handshake that authenticates each SDIMM buffer and
agrees on upstream/downstream keys and counters.
"""

from repro.crypto.ctr import CounterModeCipher
from repro.crypto.mac import MacEngine, PmmacAuthenticator
from repro.crypto.prf import Prf
from repro.crypto.session import (
    BufferIdentity,
    CertificateAuthority,
    SecureSession,
    establish_session,
)

__all__ = [
    "BufferIdentity",
    "CertificateAuthority",
    "CounterModeCipher",
    "MacEngine",
    "PmmacAuthenticator",
    "Prf",
    "SecureSession",
    "establish_session",
]
