"""A keyed pseudo-random function over SHA-256.

Stands in for the AES block cipher: deterministic under a key, unpredictable
without it, and fast enough for functional simulation.  All higher-level
constructions (counter-mode pads, MACs, key derivation) are built on this.
"""

from __future__ import annotations

import hashlib
import hmac


class Prf:
    """Keyed PRF producing arbitrary-length outputs.

    Output for input ``message`` is the concatenation of
    ``HMAC-SHA256(key, message || block_index)`` blocks, truncated to the
    requested length — a simple counter-based expansion.
    """

    DIGEST_BYTES = 32

    def __init__(self, key: bytes):
        if len(key) < 16:
            raise ValueError("PRF key must be at least 128 bits")
        self._key = key
        # HMAC's key schedule (two padded key blocks) is the same for
        # every evaluation; hash it once and fork copies per message.
        self._template = hmac.new(key, b"", hashlib.sha256)

    def evaluate(self, message: bytes, length: int = DIGEST_BYTES) -> bytes:
        """Return ``length`` pseudo-random bytes for ``message``."""
        if length < 0:
            raise ValueError("length must be non-negative")
        output = bytearray()
        block_index = 0
        while len(output) < length:
            mac = self._template.copy()
            mac.update(message + block_index.to_bytes(4, "little"))
            output.extend(mac.digest())
            block_index += 1
        return bytes(output[:length])

    def derive_key(self, label: str) -> bytes:
        """Derive an independent sub-key for a named purpose."""
        return self.evaluate(b"derive:" + label.encode(), self.DIGEST_BYTES)

    def evaluate_int(self, message: bytes, bits: int = 64) -> int:
        """Return a pseudo-random ``bits``-wide integer for ``message``."""
        raw = self.evaluate(message, (bits + 7) // 8)
        return int.from_bytes(raw, "little") & ((1 << bits) - 1)
