"""Boot-time authentication and session establishment (Section III-B).

At boot the CPU asks each SDIMM buffer for its identity (SEND_PKEY), checks
it against a third-party authenticator (the paper's Verisign analogy), and
runs a key agreement (RECEIVE_SECRET) producing independent upstream and
downstream session keys plus starting counters.  We model the public-key
step with a toy commutative exponentiation over a prime field — enough to
exercise the message flow without a real RSA/ECC implementation.
"""

from __future__ import annotations

import hmac
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.crypto.ctr import CounterModeCipher
from repro.crypto.mac import MacEngine
from repro.crypto.prf import Prf

# A 127-bit Mersenne prime and a fixed generator: small enough to be fast,
# large enough that collisions never happen in simulation.
_PRIME = (1 << 127) - 1
_GENERATOR = 5


class AuthenticationError(Exception):
    """Raised when a buffer's identity cannot be validated."""


@dataclass(frozen=True)
class BufferIdentity:
    """The identity a secure buffer presents during SEND_PKEY."""

    buffer_id: int
    public_key: int


class CertificateAuthority:
    """The third-party authenticator that vouches for buffer public keys."""

    def __init__(self):
        self._registry: Dict[int, int] = {}

    def register(self, identity: BufferIdentity) -> None:
        self._registry[identity.buffer_id] = identity.public_key

    def lookup(self, buffer_id: int) -> int:
        if buffer_id not in self._registry:
            raise AuthenticationError(f"unknown buffer id {buffer_id}")
        return self._registry[buffer_id]


class SecureSession:
    """An established CPU<->buffer link: paired ciphers, MACs and counters.

    Upstream (CPU -> buffer) and downstream (buffer -> CPU) directions use
    independent keys and counters, as is standard practice; every message
    bumps the corresponding counter so pads are never reused.
    """

    def __init__(self, shared_secret: int):
        root = Prf(shared_secret.to_bytes(16, "little"))
        self._upstream = CounterModeCipher(root.derive_key("upstream"))
        self._downstream = CounterModeCipher(root.derive_key("downstream"))
        self._mac = MacEngine(root.derive_key("mac"))
        self.upstream_counter = 0
        self.downstream_counter = 0

    def encrypt_upstream(self, plaintext: bytes) -> Tuple[bytes, bytes]:
        """CPU-side send: returns (ciphertext, tag) and bumps the counter."""
        ciphertext = self._upstream.encrypt(plaintext, 0, self.upstream_counter)
        tag = self._mac.tag(ciphertext +
                            self.upstream_counter.to_bytes(8, "little"))
        self.upstream_counter += 1
        return ciphertext, tag

    def decrypt_upstream(self, ciphertext: bytes, tag: bytes,
                         counter: int) -> bytes:
        """Buffer-side receive for the message sent at ``counter``."""
        self._mac.verify(ciphertext + counter.to_bytes(8, "little"), tag)
        return self._upstream.decrypt(ciphertext, 0, counter)

    def encrypt_downstream(self, plaintext: bytes) -> Tuple[bytes, bytes]:
        """Buffer-side send: returns (ciphertext, tag) and bumps the counter."""
        ciphertext = self._downstream.encrypt(plaintext, 0,
                                              self.downstream_counter)
        tag = self._mac.tag(ciphertext +
                            self.downstream_counter.to_bytes(8, "little"))
        self.downstream_counter += 1
        return ciphertext, tag

    def decrypt_downstream(self, ciphertext: bytes, tag: bytes,
                           counter: int) -> bytes:
        self._mac.verify(ciphertext + counter.to_bytes(8, "little"), tag)
        return self._downstream.decrypt(ciphertext, 0, counter)


def _keypair(seed: bytes) -> Tuple[int, int]:
    """Derive a (private, public) pair from a seed."""
    private = Prf(seed.ljust(16, b"\0")).evaluate_int(b"private", 126) | 1
    public = pow(_GENERATOR, private, _PRIME)
    return private, public


def establish_session(buffer_id: int, buffer_seed: bytes, cpu_seed: bytes,
                      authority: CertificateAuthority) -> Tuple[SecureSession,
                                                                SecureSession]:
    """Run the SEND_PKEY / RECEIVE_SECRET handshake for one SDIMM.

    Returns the CPU-side and buffer-side session objects; both derive the
    same shared secret (Diffie-Hellman style) so the first encrypted message
    in each direction verifies on the other end.

    Raises:
        AuthenticationError: if the buffer's presented key does not match
            what the certificate authority has on record.
    """
    buffer_private, buffer_public = _keypair(buffer_seed)
    authority.register(BufferIdentity(buffer_id, buffer_public))

    # SEND_PKEY: CPU reads the buffer's identity and validates it.
    presented = BufferIdentity(buffer_id, buffer_public)
    if authority.lookup(presented.buffer_id) != presented.public_key:
        raise AuthenticationError(f"buffer {buffer_id} presented a key that "
                                  f"does not match the authority's record")

    # RECEIVE_SECRET: CPU sends its ephemeral public value; both sides
    # compute the shared secret.
    cpu_private, cpu_public = _keypair(cpu_seed)
    cpu_shared_secret = pow(presented.public_key, cpu_private, _PRIME)
    buffer_shared_secret = pow(cpu_public, buffer_private, _PRIME)
    # Compare the derived secrets constant-time; a != over bignums leaks
    # how many limbs matched, which here is key material.
    if not hmac.compare_digest(cpu_shared_secret.to_bytes(16, "little"),
                               buffer_shared_secret.to_bytes(16, "little")):
        raise AuthenticationError("key agreement failed")

    return SecureSession(cpu_shared_secret), SecureSession(buffer_shared_secret)
