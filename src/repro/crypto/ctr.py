"""Counter-mode pad encryption for buckets and link messages.

Counter mode XORs plaintext with a pad that is a function of (key, nonce,
counter).  Its two properties matter to the ORAM protocols:

* the pad can be computed before data arrives, hiding decryption latency
  (the paper's 21-cycle crypto pipeline), and
* re-encrypting a bucket after an access requires only bumping its counter,
  so identical plaintexts never produce identical ciphertexts.
"""

from __future__ import annotations

from repro.crypto.prf import Prf


class CounterModeCipher:
    """Encrypt/decrypt byte strings under (nonce, counter) pads."""

    def __init__(self, key: bytes):
        self._prf = Prf(key)

    def pad(self, nonce: int, counter: int, length: int) -> bytes:
        """The keystream for a given (nonce, counter) pair."""
        seed = nonce.to_bytes(8, "little") + counter.to_bytes(8, "little")
        return self._prf.evaluate(b"pad:" + seed, length)

    def encrypt(self, plaintext: bytes, nonce: int, counter: int) -> bytes:
        """XOR ``plaintext`` with the (nonce, counter) pad."""
        pad = self.pad(nonce, counter, len(plaintext))
        return bytes(p ^ k for p, k in zip(plaintext, pad))

    def decrypt(self, ciphertext: bytes, nonce: int, counter: int) -> bytes:
        """Counter mode is an involution: decryption equals encryption."""
        return self.encrypt(ciphertext, nonce, counter)
