"""Counter-mode pad encryption for buckets and link messages.

Counter mode XORs plaintext with a pad that is a function of (key, nonce,
counter).  Its two properties matter to the ORAM protocols:

* the pad can be computed before data arrives, hiding decryption latency
  (the paper's 21-cycle crypto pipeline), and
* re-encrypting a bucket after an access requires only bumping its counter,
  so identical plaintexts never produce identical ciphertexts.

The functional tier decrypts and immediately re-encrypts every bucket it
touches, so each (nonce, counter) pad is requested at least twice; the
cipher keeps a bounded cache of derived keystreams (the emulation of the
hardware pipeline's pad precomputation) and XORs through large-integer
arithmetic instead of a per-byte generator.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.crypto.prf import Prf
from repro.utils.memo import DEFAULT_MEMO_CAP, MEMO_ENABLED


class CounterModeCipher:
    """Encrypt/decrypt byte strings under (nonce, counter) pads."""

    def __init__(self, key: bytes):
        self._prf = Prf(key)
        self._pad_cache: Dict[Tuple[int, int], bytes] = {}

    def pad(self, nonce: int, counter: int, length: int) -> bytes:
        """The keystream for a given (nonce, counter) pair."""
        cached = self._pad_cache.get((nonce, counter))
        if cached is not None and len(cached) >= length:
            return cached[:length]
        seed = nonce.to_bytes(8, "little") + counter.to_bytes(8, "little")
        keystream = self._prf.evaluate(b"pad:" + seed, length)
        if MEMO_ENABLED:
            if len(self._pad_cache) >= DEFAULT_MEMO_CAP:
                self._pad_cache.clear()
            self._pad_cache[(nonce, counter)] = keystream
        return keystream

    def encrypt(self, plaintext: bytes, nonce: int, counter: int) -> bytes:
        """XOR ``plaintext`` with the (nonce, counter) pad."""
        pad = self.pad(nonce, counter, len(plaintext))
        mask = int.from_bytes(plaintext, "little") ^ \
            int.from_bytes(pad, "little")
        return mask.to_bytes(len(plaintext), "little")

    def decrypt(self, ciphertext: bytes, nonce: int, counter: int) -> bytes:
        """Counter mode is an involution: decryption equals encryption."""
        return self.encrypt(ciphertext, nonce, counter)
