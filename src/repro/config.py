"""System configuration for the Secure DIMM reproduction.

Defaults follow Table II of the paper: a 1.6 GHz in-order core with a 2 MB
LLC, DDR3-1600 DRAM (Micron MT41J256M8-class x8 parts, 8 banks, 8 KB rows),
two DIMMs per channel with four ranks each, and Freecursive ORAM parameters
(Z = 4, 64 B blocks, 64 KB PLB, 5 recursive PosMaps, 21-cycle crypto).

All timing parameters are expressed in *memory-clock* cycles (800 MHz for
DDR3-1600); the simulator converts to CPU cycles using
``cpu_cycles_per_mem_cycle``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from repro.utils.bitops import is_power_of_two


class DesignPoint(enum.Enum):
    """The memory-system designs evaluated in the paper (Figures 6-9).

    ``INDEP_SPLIT`` is the combination from Figure 7(e): two independent
    partitions, each striped 2-way with the Split protocol.
    """

    NONSECURE = "nonsecure"
    FREECURSIVE = "freecursive"
    INDEP_2 = "indep-2"
    SPLIT_2 = "split-2"
    INDEP_4 = "indep-4"
    SPLIT_4 = "split-4"
    INDEP_SPLIT = "indep-split"


@dataclass(frozen=True)
class DramTiming:
    """DDR3 timing parameters in memory-clock cycles (default: DDR3-1600)."""

    tck_ns: float = 1.25
    trcd: int = 11
    trp: int = 11
    tcl: int = 11
    tcwl: int = 8
    tras: int = 28
    trc: int = 39
    tburst: int = 4
    tccd: int = 4
    #: same-bank-group CAS spacing (DDR4's tCCD_L; equals tccd on DDR3)
    tccd_l: int = 4
    trtp: int = 6
    twr: int = 12
    twtr: int = 6
    trtrs: int = 2
    tfaw: int = 24
    trrd: int = 5
    trefi: int = 6240
    trfc: int = 88
    # Fast-exit precharge power-down (the low-power scheme keeps idle ranks
    # here; ~24 ns exit per the paper's DDR3 reference).
    txp: int = 5
    txpdll: int = 19

    def validate(self) -> None:
        if self.trc < self.tras + self.trp:
            raise ValueError("tRC must cover tRAS + tRP")
        for name in ("trcd", "trp", "tcl", "tburst"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")


@dataclass(frozen=True)
class DramPower:
    """Micron-power-calculator style DDR3 current/energy parameters.

    Currents are per-device (x8) in mA at ``vdd`` volts; the energy model in
    :mod:`repro.energy.dram_power` converts them to pJ using the standard
    Micron formulas.  I/O energy distinguishes transfers that cross the main
    memory channel from transfers that stay on the DIMM between the secure
    buffer and the DRAM chips — the physical basis of SDIMM's energy win.
    """

    vdd: float = 1.5
    idd0: float = 95.0    # one ACT-PRE cycle pair
    idd2p: float = 12.0   # precharge power-down
    idd2n: float = 42.0   # precharge standby
    idd3p: float = 40.0   # active power-down
    idd3n: float = 45.0   # active standby
    idd4r: float = 180.0  # burst read
    idd4w: float = 185.0  # burst write
    idd5: float = 215.0   # refresh
    idd6: float = 12.0    # self refresh
    io_channel_pj_per_bit: float = 5.2
    io_on_dimm_pj_per_bit: float = 1.4

    def validate(self) -> None:
        if self.idd2p >= self.idd2n:
            raise ValueError("power-down current should be below standby")
        if self.io_on_dimm_pj_per_bit >= self.io_channel_pj_per_bit:
            raise ValueError("on-DIMM I/O must be cheaper than channel I/O")


@dataclass(frozen=True)
class DramOrganization:
    """Physical organization of one channel (Table II)."""

    dimms_per_channel: int = 2
    ranks_per_dimm: int = 4
    banks_per_rank: int = 8
    #: DDR4 groups banks; back-to-back CAS within a group pays tCCD_L
    bank_groups: int = 1
    rows_per_bank: int = 32768
    row_bytes: int = 8192
    device_width_bits: int = 8
    devices_per_rank: int = 8      # data devices (the 9th is ECC)
    bus_width_bits: int = 64

    @property
    def ranks_per_channel(self) -> int:
        return self.dimms_per_channel * self.ranks_per_dimm

    @property
    def rank_bytes(self) -> int:
        return self.rows_per_bank * self.row_bytes * self.banks_per_rank

    @property
    def dimm_bytes(self) -> int:
        return self.rank_bytes * self.ranks_per_dimm

    @property
    def channel_bytes(self) -> int:
        return self.dimm_bytes * self.dimms_per_channel

    def validate(self) -> None:
        for name in ("dimms_per_channel", "ranks_per_dimm", "banks_per_rank",
                     "rows_per_bank", "row_bytes"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if not is_power_of_two(self.banks_per_rank):
            raise ValueError("banks_per_rank must be a power of two")
        if not is_power_of_two(self.row_bytes):
            raise ValueError("row_bytes must be a power of two")


@dataclass(frozen=True)
class OramConfig:
    """Path ORAM / Freecursive parameters (Table II)."""

    levels: int = 28               # tree levels, root inclusive (L28 = 32 GB)
    blocks_per_bucket: int = 4     # Z
    block_bytes: int = 64
    stash_capacity: int = 200
    cached_levels: int = 7         # on-chip ORAM cache of the top levels
    recursive_posmaps: int = 5
    plb_bytes: int = 64 * 1024
    plb_assoc: int = 8
    posmap_entries_per_block: int = 16   # leaf-ID entries packed per block
    crypto_latency_cycles: int = 21      # CPU cycles, Table II
    background_eviction_threshold: float = 0.9

    @property
    def leaf_count(self) -> int:
        return 1 << (self.levels - 1)

    @property
    def bucket_count(self) -> int:
        return (1 << self.levels) - 1

    @property
    def data_block_count(self) -> int:
        """Usable data blocks: half the tree slots, the standard load factor."""
        return self.bucket_count * self.blocks_per_bucket // 2

    @property
    def lines_per_bucket(self) -> int:
        """Cache lines per bucket: Z data blocks plus one metadata line."""
        return self.blocks_per_bucket + 1

    @property
    def path_lines(self) -> int:
        """Cache lines touched by one path read (uncached levels only)."""
        return (self.levels - self.cached_levels) * self.lines_per_bucket

    def with_levels(self, levels: int) -> "OramConfig":
        return replace(self, levels=levels)

    def validate(self) -> None:
        if self.levels < 2:
            raise ValueError("ORAM needs at least two levels")
        if self.cached_levels >= self.levels:
            raise ValueError("cannot cache all ORAM levels on chip")
        if self.blocks_per_bucket < 1:
            raise ValueError("Z must be at least 1")
        if not is_power_of_two(self.block_bytes):
            raise ValueError("block size must be a power of two")
        if self.stash_capacity < self.blocks_per_bucket * self.levels:
            raise ValueError("stash must hold at least one full path of blocks")


@dataclass(frozen=True)
class SdimmConfig:
    """Secure-DIMM parameters (Section III)."""

    probe_interval_mem_cycles: int = 8
    transfer_queue_capacity: int = 128    # 8 KB buffer / 64 B blocks
    drain_probability: float = 0.05       # p in the M/M/1/K analysis
    split_ways: int = 2
    buffer_sram_bytes: int = 8 * 1024
    low_power_ranks: bool = True

    def validate(self) -> None:
        if self.probe_interval_mem_cycles <= 0:
            raise ValueError("probe interval must be positive")
        if not 0.0 <= self.drain_probability <= 1.0:
            raise ValueError("drain probability must be in [0, 1]")
        if self.split_ways < 1:
            raise ValueError("split_ways must be at least 1")


@dataclass(frozen=True)
class CpuConfig:
    """Core and cache-hierarchy parameters (Table II)."""

    freq_ghz: float = 1.6
    rob_entries: int = 128
    llc_bytes: int = 2 * 1024 * 1024
    llc_assoc: int = 8
    llc_line_bytes: int = 64
    llc_latency_cycles: int = 10
    cpu_cycles_per_mem_cycle: int = 2   # 1.6 GHz CPU / 800 MHz DDR3-1600 clock

    def validate(self) -> None:
        if self.llc_bytes % (self.llc_assoc * self.llc_line_bytes):
            raise ValueError("LLC size must be divisible by assoc * line size")


@dataclass(frozen=True)
class SchedulerConfig:
    """FR-FCFS scheduler parameters (Section IV-A)."""

    write_queue_capacity: int = 64
    write_drain_high: int = 40
    write_drain_low: int = 16

    def validate(self) -> None:
        if not 0 < self.write_drain_low <= self.write_drain_high:
            raise ValueError("drain watermarks must satisfy 0 < low <= high")
        if self.write_drain_high > self.write_queue_capacity:
            raise ValueError("drain-high cannot exceed queue capacity")


@dataclass(frozen=True)
class SystemConfig:
    """Top-level configuration for one simulated design point."""

    design: DesignPoint = DesignPoint.FREECURSIVE
    channels: int = 1
    seed: int = 2018
    timing: DramTiming = field(default_factory=DramTiming)
    power: DramPower = field(default_factory=DramPower)
    organization: DramOrganization = field(default_factory=DramOrganization)
    oram: OramConfig = field(default_factory=OramConfig)
    sdimm: SdimmConfig = field(default_factory=SdimmConfig)
    cpu: CpuConfig = field(default_factory=CpuConfig)
    scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)
    oram_cache_enabled: bool = True
    refresh_enabled: bool = True

    @property
    def sdimm_count(self) -> int:
        """SDIMMs participating in the design (one per DIMM slot used)."""
        if self.design in (DesignPoint.NONSECURE, DesignPoint.FREECURSIVE):
            return 0
        return self.channels * self.organization.dimms_per_channel

    @property
    def effective_cached_levels(self) -> int:
        return self.oram.cached_levels if self.oram_cache_enabled else 0

    @property
    def total_memory_bytes(self) -> int:
        return self.channels * self.organization.channel_bytes

    def validate(self) -> None:
        if self.channels < 1:
            raise ValueError("need at least one channel")
        self.timing.validate()
        self.power.validate()
        self.organization.validate()
        self.oram.validate()
        self.sdimm.validate()
        self.cpu.validate()
        self.scheduler.validate()
        if self.design in (DesignPoint.INDEP_4, DesignPoint.SPLIT_4,
                           DesignPoint.INDEP_SPLIT) and self.sdimm_count < 4:
            raise ValueError(f"{self.design.value} requires 4 SDIMMs; "
                             f"configure 2 channels x 2 DIMMs")


def table2_config(design: DesignPoint = DesignPoint.FREECURSIVE,
                  channels: int = 1,
                  oram_cache_enabled: bool = True,
                  seed: int = 2018) -> SystemConfig:
    """The paper's Table II configuration for a given design point.

    The paper describes "a 28-layer ORAM system with 7-layer ORAM caching"
    for the 32 GB (2-channel) machine; we take the layer counts at face
    value (a single-channel, 16 GB system gets one fewer layer).  The timing
    tier never allocates tree storage, so the layer count is purely the
    path-length parameter the evaluation sweeps in Figure 11.
    """
    organization = DramOrganization()
    levels = 28 if channels >= 2 else 27
    config = SystemConfig(
        design=design,
        channels=channels,
        seed=seed,
        organization=organization,
        oram=OramConfig(levels=levels),
        oram_cache_enabled=oram_cache_enabled,
    )
    config.validate()
    return config


def small_config(design: DesignPoint = DesignPoint.FREECURSIVE,
                 channels: int = 1,
                 levels: int = 12,
                 oram_cache_enabled: bool = True,
                 seed: int = 2018) -> SystemConfig:
    """A scaled-down configuration for tests and quick experiments.

    Keeps every structural property of the Table II system (same Z, block
    size, recursion, scheduler) with a shallow tree so functional ORAM
    simulations run in milliseconds.
    """
    config = SystemConfig(
        design=design,
        channels=channels,
        seed=seed,
        oram=OramConfig(levels=levels, cached_levels=3, stash_capacity=200),
        oram_cache_enabled=oram_cache_enabled,
    )
    config.validate()
    return config


#: Designs evaluated per channel count in Figures 8 and 9.
SINGLE_CHANNEL_DESIGNS = (DesignPoint.INDEP_2, DesignPoint.SPLIT_2)
DOUBLE_CHANNEL_DESIGNS = (DesignPoint.INDEP_4, DesignPoint.SPLIT_4,
                          DesignPoint.INDEP_SPLIT)


def ddr4_timing() -> DramTiming:
    """DDR4-2400 timing parameters (extension beyond the paper's DDR3).

    The paper's footnote 1 notes that a DDR4 SDIMM needs a few extra pins
    because the LRDIMM data buffer is decomposed; electrically everything
    else carries over, so a DDR4 configuration only swaps the timing set.
    Parameters follow a DDR4-2400 CL17 part at tCK = 0.833 ns.
    """
    return DramTiming(
        tck_ns=0.833,
        trcd=17, trp=17, tcl=17, tcwl=12,
        tras=39, trc=56,
        tburst=4, tccd=4, tccd_l=6, trtp=9, twr=18, twtr=9, trtrs=2,
        tfaw=26, trrd=7,
        trefi=9360, trfc=420,
        txp=8, txpdll=29,
    )


def ddr4_organization() -> DramOrganization:
    """DDR4 channel organization: 4 bank groups of 4 banks."""
    return DramOrganization(banks_per_rank=16, bank_groups=4)
