"""The serving core: bounded admission, batching, and backpressure.

A single ORAM backend is one server — every access costs the same fixed
link shape (that *is* the obliviousness property), so the serving system
is an M/D/1/K-style queue: Markovian arrivals, near-deterministic
service, K waiting slots.  This module implements that queue explicitly:

* **bounded admission** — an arrival that finds ``queue_capacity``
  requests already waiting is *shed* with a structured
  :class:`AdmissionRejected` record, never buffered unboundedly.  Path
  ORAM's stash bound argument assumes overload is shed, not deferred;
  the same discipline applies one layer up.
* **batching with read coalescing** — the scheduler drains up to
  ``batch_size`` waiting requests at a time and collapses duplicate
  reads of one address into a single protocol access whose bytes fan
  out to every rider.  Coalescing is correctness-preserving by
  construction: a write to the address republishes the bytes later
  riders must see, and the scheduler replays program order within the
  batch.
* **service-time calibration** — the cost of a batch is measured off the
  protocol's own :class:`~repro.core.secure_buffer.LinkRecorder` (link
  events per access are constant per design), so one tick on the serving
  timeline equals one link event and utilization is dimensionless.

Everything is deterministic: same protocol, same request list, same
outcome, byte for byte.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from repro.control.decisions import ControlDecision
from repro.control.morph import MODE_MORPHED
from repro.control.plane import PLAIN_LINK_EVENTS, ServeControlPlane
from repro.obs.metrics import MetricsRegistry
from repro.oram.path_oram import Op
from repro.serve.loadgen import Request
from repro.sim.stats import LatencyStats
from repro.utils.rng import DeterministicRng


@dataclass(frozen=True)
class AdmissionRejected:
    """One shed arrival: the structured record backpressure leaves behind.

    Everything a retry layer or an SLO postmortem needs: who was turned
    away, when, and what the queue looked like at that instant.
    """

    tenant: str
    sequence: int
    arrival: int
    queue_depth: int
    capacity: int
    reason: str = "queue-full"

    def to_dict(self) -> Dict[str, object]:
        return {"tenant": self.tenant, "sequence": self.sequence,
                "arrival": self.arrival, "queue_depth": self.queue_depth,
                "capacity": self.capacity, "reason": self.reason}


@dataclass
class Completion:
    """One served request, with its sojourn accounting."""

    request: Request
    start: int          # tick its batch began service
    finish: int         # tick its batch completed
    coalesced: bool     # True = served from a batch-mate's access

    @property
    def sojourn(self) -> int:
        return self.finish - self.request.arrival


@dataclass
class SchedulerOutcome:
    """Everything one serving run produced."""

    completions: List[Completion]
    shed: List[AdmissionRejected]
    offered: int
    batches: int
    accesses: int
    coalesced: int
    busy_ticks: int
    elapsed_ticks: int
    peak_depth: int
    sojourn: LatencyStats
    per_tenant: Dict[str, LatencyStats]
    #: bytes returned per (tenant, sequence) — coalescing-correctness probe
    read_bytes: Dict[object, bytes]
    #: adaptive-control-plane extras (empty on open-loop runs)
    decisions: List[ControlDecision] = field(default_factory=list)
    plain_accesses: int = 0
    control_overhead_ticks: int = 0
    control_payload: Optional[Dict[str, object]] = None

    @property
    def admitted(self) -> int:
        return self.offered - len(self.shed)

    @property
    def shed_rate(self) -> float:
        return len(self.shed) / self.offered if self.offered else 0.0

    @property
    def utilization(self) -> float:
        return (self.busy_ticks / self.elapsed_ticks
                if self.elapsed_ticks else 0.0)

    @property
    def ticks_per_access(self) -> float:
        return (self.busy_ticks / self.accesses
                if self.accesses else 0.0)


class BatchingScheduler:
    """Single-server bounded queue draining an ORAM protocol.

    ``protocol`` is any of the three SDIMM protocols (or a raw
    ``PathOram``-compatible object): it must expose
    ``access(address, op, data=None) -> bytes`` and, for link-calibrated
    service timing, a ``link`` recorder with ``record_link=True``.
    Without a link recorder each access costs ``fallback_access_ticks``.
    """

    def __init__(self, protocol, queue_capacity: int, batch_size: int = 1,
                 metrics: Optional[MetricsRegistry] = None,
                 ticks_per_link_event: int = 1,
                 fallback_access_ticks: int = 64,
                 keep_read_bytes: bool = False,
                 sample_seed: int = 2018,
                 control: Optional[ServeControlPlane] = None,
                 coalesce: bool = True):
        if queue_capacity < 1:
            raise ValueError("admission queue needs capacity >= 1")
        if batch_size < 1:
            raise ValueError("batch size must be at least 1")
        if ticks_per_link_event < 1:
            raise ValueError("ticks per link event must be positive")
        self.protocol = protocol
        self.queue_capacity = queue_capacity
        self.batch_size = batch_size
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.ticks_per_link_event = ticks_per_link_event
        self.fallback_access_ticks = fallback_access_ticks
        self.keep_read_bytes = keep_read_bytes
        self._sample_seed = sample_seed
        self.control = control
        self.coalesce = coalesce
        link = getattr(protocol, "link", None)
        self._link = link if (link is not None and
                              getattr(link, "enabled", False)) else None

    # ------------------------------------------------------------------

    def _access_cost(self, count: int) -> int:
        """Ticks spent performing ``count`` protocol accesses."""
        if self._link is None:
            return count * self.fallback_access_ticks
        events = len(self._link.events)
        # The recorder only exists to meter service time here; clearing it
        # after each reading keeps a long serving run O(batch) in memory.
        self._link.clear()
        return max(count, events * self.ticks_per_link_event)

    def _serve_batch(self, batch: List[Request]):
        """Issue a batch in arrival order, coalescing duplicate reads.

        Returns ``(served, coalesced_keys, accesses, plain)``: the bytes
        served to every read keyed by (tenant, sequence), which of those
        rode a batch-mate's access, how many protocol accesses were
        spent, and how many morphed (non-secure) accesses bypassed the
        protocol.  A write republishes its payload into the coalescing
        window, so later same-address reads observe it exactly as an
        un-coalesced replay would.

        A request from a tenant the morph controller holds in morphed
        mode is served from the control plane's plain overlay: no ORAM
        access, just the two link messages of Section III-A.4, and never
        through the coalescing window (the plain path has no access to
        amortize and must not perturb secure batch shapes).
        """
        if self._link is not None:
            self._link.clear()
        served: Dict[object, bytes] = {}
        coalesced_keys = set()
        accesses = 0
        plain = 0
        window: Dict[int, bytes] = {}
        plane = self.control
        morphing = plane is not None and plane.morph is not None
        for request in batch:
            key = (request.tenant, request.sequence)
            if morphing and plane.mode(request.tenant) == MODE_MORPHED:
                plain += 1
                if request.op is Op.WRITE:
                    plane.plain_write(request.tenant, request.address,
                                      request.data)
                else:
                    served[key] = plane.plain_read(request.address)
                continue
            if request.op is Op.WRITE:
                self.protocol.access(request.address, Op.WRITE,
                                     request.data)
                window[request.address] = request.data
                accesses += 1
            elif self.coalesce and request.address in window:
                served[key] = window[request.address]
                coalesced_keys.add(key)
            else:
                data = self.protocol.access(request.address, Op.READ)
                window[request.address] = data
                served[key] = data
                accesses += 1
            if morphing:
                plane.note_write(request.address,
                                 window[request.address])
        return served, coalesced_keys, accesses, plain

    # ------------------------------------------------------------------

    def run(self, requests: List[Request]) -> SchedulerOutcome:
        """Drain one open-loop timeline through the protocol.

        Event-driven single-server loop: batches that complete before the
        next arrival are retired first, then the arrival is admitted or
        shed against the bounded queue.
        """
        depth_gauge = self.metrics.gauge("serve/queue_depth")
        admitted_counter = self.metrics.counter("serve/admitted")
        shed_counter = self.metrics.counter("serve/shed")
        coalesced_counter = self.metrics.counter("serve/coalesced")
        batch_counter = self.metrics.counter("serve/batches")
        access_counter = self.metrics.counter("serve/accesses")
        plane = self.control
        if plane is not None:
            decision_counter = self.metrics.counter("control/decisions")
            applied_counter = self.metrics.counter("control/applied")
            overhead_counter = self.metrics.counter("control/overhead_ticks")
            plain_counter = self.metrics.counter("control/plain_accesses")
            batch_gauge = self.metrics.gauge("control/batch_size")
            limit_gauge = self.metrics.gauge("control/admit_limit")
            batch_gauge.set(self.batch_size)
            limit_gauge.set(self.queue_capacity)

        waiting: Deque[Request] = deque()
        completions: List[Completion] = []
        shed: List[AdmissionRejected] = []
        read_bytes: Dict[object, bytes] = {}
        sojourn = LatencyStats(
            sample_rng=DeterministicRng(self._sample_seed, "serve/sojourn"))
        per_tenant: Dict[str, LatencyStats] = {}
        server_free = 0
        busy_ticks = 0
        batches = 0
        accesses = 0
        coalesced = 0
        plain_total = 0
        peak_depth = 0
        overhead_seen = 0

        def drain_until(horizon: Optional[int]) -> None:
            """Retire batches completing before ``horizon`` (None = all)."""
            nonlocal server_free, busy_ticks, batches, accesses, coalesced
            nonlocal plain_total
            while waiting and (horizon is None or server_free <= horizon):
                start = max(server_free, waiting[0].arrival)
                if horizon is not None and start > horizon:
                    break
                batch = [waiting.popleft()
                         for _ in range(min(self.batch_size, len(waiting)))]
                depth_gauge.adjust(-len(batch))
                served, coalesced_keys, batch_accesses, batch_plain = \
                    self._serve_batch(batch)
                cost = (self._access_cost(batch_accesses) + batch_plain *
                        PLAIN_LINK_EVENTS * self.ticks_per_link_event)
                finish = start + cost
                for request in batch:
                    key = (request.tenant, request.sequence)
                    record = Completion(request=request, start=start,
                                        finish=finish,
                                        coalesced=key in coalesced_keys)
                    completions.append(record)
                    sojourn.record(record.sojourn)
                    per_tenant.setdefault(
                        request.tenant,
                        LatencyStats(sample_rng=DeterministicRng(
                            self._sample_seed,
                            f"serve/sojourn/{request.tenant}"))
                    ).record(record.sojourn)
                    if self.keep_read_bytes and key in served:
                        read_bytes[key] = served[key]
                    if plane is not None:
                        plane.note_completion(finish, record.sojourn)
                busy_ticks += cost
                batches += 1
                accesses += batch_accesses
                coalesced += len(coalesced_keys)
                plain_total += batch_plain
                batch_counter.inc()
                access_counter.inc(batch_accesses)
                coalesced_counter.inc(len(coalesced_keys))
                if plane is not None and batch_plain:
                    plain_counter.inc(batch_plain)
                server_free = finish

        def apply_control(fresh: List[ControlDecision],
                          reclassified: List[str]) -> None:
            """Enact freshly-flushed decisions on the live scheduler.

            Admission moves retarget the knobs; a reclassified tenant's
            dirty overlay addresses replay into the protocol as real,
            charged write accesses (the data moves back under ORAM).
            Controller evaluations charge their overhead to busy time.
            """
            nonlocal server_free, busy_ticks, accesses, overhead_seen
            for decision in fresh:
                decision_counter.inc()
                if decision.applied:
                    applied_counter.inc()
            overhead = plane.overhead_ticks - overhead_seen
            overhead_seen = plane.overhead_ticks
            busy_ticks += overhead
            overhead_counter.inc(overhead)
            if plane.admission is not None:
                self.batch_size = plane.admission.batch_size
                self.queue_capacity = plane.admission.admit_limit
                batch_gauge.set(self.batch_size)
                limit_gauge.set(self.queue_capacity)
            for tenant in reclassified:
                addresses = plane.take_dirty(tenant)
                if not addresses:
                    continue
                if self._link is not None:
                    self._link.clear()
                for address in addresses:
                    self.protocol.access(address, Op.WRITE,
                                         plane.overlay[address])
                cost = self._access_cost(len(addresses))
                busy_ticks += cost
                server_free += cost
                accesses += len(addresses)
                access_counter.inc(len(addresses))

        for request in requests:
            drain_until(request.arrival)
            if plane is not None:
                apply_control(*plane.flush_until(request.arrival,
                                                 len(waiting)))
            if len(waiting) >= self.queue_capacity:
                record = AdmissionRejected(
                    tenant=request.tenant, sequence=request.sequence,
                    arrival=request.arrival, queue_depth=len(waiting),
                    capacity=self.queue_capacity)
                shed.append(record)
                shed_counter.inc()
                if plane is not None:
                    plane.note_shed(request)
                continue
            waiting.append(request)
            admitted_counter.inc()
            depth_gauge.adjust(1)
            peak_depth = max(peak_depth, len(waiting))
            if plane is not None:
                plane.note_admitted(request)
        drain_until(None)
        if plane is not None:
            apply_control(*plane.flush_final(server_free, len(waiting)))

        elapsed = server_free
        if requests and not elapsed:
            elapsed = max(request.arrival for request in requests)
        return SchedulerOutcome(
            completions=completions, shed=shed, offered=len(requests),
            batches=batches, accesses=accesses, coalesced=coalesced,
            busy_ticks=busy_ticks, elapsed_ticks=elapsed,
            peak_depth=peak_depth, sojourn=sojourn,
            per_tenant=per_tenant, read_bytes=read_bytes,
            decisions=list(plane.decisions) if plane is not None else [],
            plain_accesses=plain_total,
            control_overhead_ticks=(plane.overhead_ticks
                                    if plane is not None else 0),
            control_payload=(plane.payload()
                             if plane is not None else None))
