"""Sharding the serving tier over leaf-MSB subtrees (docs/serving.md).

The Independent protocol already partitions its ORAM tree across SDIMMs
by the most significant bits of the leaf ID
(:meth:`repro.core.independent.IndependentBuffer.owner_of`), and Path
ORAM's per-subtree independence makes that split correct without
cross-shard coordination on the access path.  The serving tier reuses
exactly that key one layer up:

* the global leaf space is cut into ``subtrees`` equal leaf-MSB slices
  (``subtree_of`` is ``owner_of`` with more bits);
* a **consistent-hash ring** (:class:`ShardPlan`) maps each subtree to
  one of ``shards`` persistent worker processes, so growing the shard
  count moves only the subtrees that rehash — not the whole space;
* each shard runs its own full protocol instance and its own bounded
  :class:`~repro.serve.scheduler.BatchingScheduler`, so overload on a
  shard sheds structured ``AdmissionRejected`` records exactly like the
  single-server tier — never unbounded buffering;
* cross-shard block migration — a served block remapping to a leaf
  another shard owns — is modeled by the paper's transfer-queue random
  walk (:class:`~repro.core.transfer_queue.TransferQueue`, Section
  IV-C), with the Figure 13 analytic curves as cross-checks.

Everything here is a pure function of the picklable :class:`ShardSpec`:
workers re-derive the full timeline and routing from the spec alone,
which is what makes the sharded reports byte-identical for any
``--jobs`` value, across warm and cold pools, and across cached replays.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.serve.bench import ServeSpec, build_serving_protocol, \
    generate_requests
from repro.serve.loadgen import Request
from repro.serve.scheduler import BatchingScheduler
from repro.serve.slo import build_report

#: Designs whose protocol exposes the ``quarantine`` resilience seam.
_QUARANTINABLE = ("independent", "indep-split")


def _is_power_of_two(value: int) -> bool:
    return value >= 1 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class ShardSpec:
    """One sharded serving point (picklable, canonical, cache-keyable).

    Extends the single-server :class:`~repro.serve.bench.ServeSpec`
    surface with the shard-tier knobs: how many worker shards, how many
    leaf-MSB subtrees the ring distributes, the migration queue, and
    which shards (if any) are quarantined for a degraded-mode run.
    """

    design: str = "independent"
    levels: int = 9
    sites: int = 2
    rate: float = 0.002
    requests: int = 512
    #: admission queue capacity K — per shard
    capacity: int = 32
    batch: int = 8
    tenants: int = 1
    arrival: str = "poisson"
    zipf_exponent: float = 0.0
    write_fraction: float = 0.25
    profile: Optional[str] = None
    seed: int = 2018
    blocks_per_bucket: int = 4
    block_bytes: int = 64
    stash_capacity: int = 256
    #: worker shard count (power of two)
    shards: int = 2
    #: leaf-MSB subtrees on the hash ring (power of two, >= shards)
    subtrees: int = 16
    #: virtual ring nodes per shard (evens out the consistent hash)
    virtual_nodes: int = 8
    #: cross-shard migration transfer-queue capacity K (Section IV-C)
    migration_capacity: int = 64
    #: per-arrival drain-lottery probability p of the migration queue
    migration_drain: float = 0.05
    #: shards whose whole protocol is quarantined (degraded mode)
    quarantined: Tuple[int, ...] = field(default_factory=tuple)
    #: close the loop per shard: admission/batch controllers on every
    #: shard's scheduler plus a drain controller per migration queue
    adapt: bool = False
    #: p99 sojourn target in ticks (0 = serve-tier default)
    slo_p99: int = 0
    #: control window length in ticks (0 = serve-tier default)
    window_ticks: int = 0
    #: tenants allowed to morph into non-secure mode
    declassified: Tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        # delegate the shared serving-field validation to ServeSpec
        self.base_spec()
        if not _is_power_of_two(self.shards):
            raise ValueError("shard count must be a power of two")
        if not _is_power_of_two(self.subtrees):
            raise ValueError("subtree count must be a power of two")
        if self.subtrees < self.shards:
            raise ValueError("need at least one subtree per shard")
        if self.subtrees > self.address_limit:
            raise ValueError("more subtrees than leaves: "
                             f"{self.subtrees} > {self.address_limit}")
        if self.virtual_nodes < 1:
            raise ValueError("need at least one virtual node per shard")
        if self.migration_capacity < 1:
            raise ValueError("migration queue needs capacity >= 1")
        if not 0.0 <= self.migration_drain <= 1.0:
            raise ValueError("migration drain must be a probability")
        quarantined = tuple(sorted(set(int(s) for s in self.quarantined)))
        object.__setattr__(self, "quarantined", quarantined)
        object.__setattr__(self, "declassified",
                           tuple(self.declassified))
        for shard in quarantined:
            if not 0 <= shard < self.shards:
                raise ValueError(f"quarantined shard {shard} out of range")
        if quarantined and self.design not in _QUARANTINABLE:
            raise ValueError(
                f"design {self.design!r} has no quarantine seam; "
                f"choose one of {_QUARANTINABLE}")

    @property
    def address_limit(self) -> int:
        return 1 << (self.levels - 1)

    @property
    def subtree_bits(self) -> int:
        return self.subtrees.bit_length() - 1

    def base_spec(self) -> ServeSpec:
        """The single-server spec every shard worker re-derives from."""
        return ServeSpec(
            design=self.design, levels=self.levels, sites=self.sites,
            rate=self.rate, requests=self.requests, capacity=self.capacity,
            batch=self.batch, tenants=self.tenants, arrival=self.arrival,
            zipf_exponent=self.zipf_exponent,
            write_fraction=self.write_fraction, profile=self.profile,
            seed=self.seed, blocks_per_bucket=self.blocks_per_bucket,
            block_bytes=self.block_bytes,
            stash_capacity=self.stash_capacity, adapt=self.adapt,
            slo_p99=self.slo_p99, window_ticks=self.window_ticks,
            declassified=self.declassified)

    def to_dict(self) -> Dict[str, object]:
        payload = asdict(self)
        payload["quarantined"] = list(self.quarantined)
        payload["declassified"] = list(self.declassified)
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ShardSpec":
        fields = {key: payload[key]
                  for key in cls.__dataclass_fields__  # noqa: SLF001
                  if key in payload}
        if "quarantined" in fields:
            fields["quarantined"] = tuple(fields["quarantined"])
        return cls(**fields)


class ShardPlan:
    """The deterministic consistent-hash ring over leaf-MSB subtrees.

    Each shard contributes ``virtual_nodes`` ring points; a subtree maps
    to the first ring point clockwise of its own hash.  The ring is a
    pure function of (shards, virtual_nodes), so every process — router,
    worker, auditor — derives the identical assignment with no shared
    state, and adding a shard remaps only the subtrees whose arcs the
    new ring points claim.
    """

    def __init__(self, shards: int, subtrees: int, levels: int,
                 virtual_nodes: int):
        subtree_bits = subtrees.bit_length() - 1
        leaf_bits = levels - 1
        if subtree_bits > leaf_bits:
            raise ValueError("more subtrees than leaves")
        self.shards = shards
        self.subtrees = subtrees
        self.subtree_bits = subtree_bits
        #: right-shift turning an address (== its leaf) into its subtree
        self._shift = leaf_bits - subtree_bits
        points: List[Tuple[int, int]] = []
        for shard in range(shards):
            for node in range(virtual_nodes):
                points.append((self._hash(f"shard:{shard}/node:{node}"),
                               shard))
        points.sort()
        self._ring_keys = [key for key, _ in points]
        self._ring_shards = [shard for _, shard in points]
        self._subtree_shard = [self._ring_lookup(f"subtree:{index}")
                               for index in range(subtrees)]

    @classmethod
    def from_spec(cls, spec: ShardSpec) -> "ShardPlan":
        return cls(spec.shards, spec.subtrees, spec.levels,
                   spec.virtual_nodes)

    @staticmethod
    def _hash(label: str) -> int:
        return int.from_bytes(hashlib.sha256(label.encode()).digest()[:8],
                              "big")

    def _ring_lookup(self, label: str) -> int:
        index = bisect_right(self._ring_keys, self._hash(label))
        return self._ring_shards[index % len(self._ring_shards)]

    def subtree_of(self, address: int) -> int:
        """The leaf-MSB subtree of an address — ``owner_of`` writ small.

        The serving tier maps addresses one-to-one onto leaves
        (``ServeSpec.address_limit`` is one block per leaf), so the top
        ``subtree_bits`` of the address are the top bits of its leaf.
        """
        return address >> self._shift

    def shard_of_subtree(self, subtree: int) -> int:
        return self._subtree_shard[subtree]

    def shard_of_address(self, address: int) -> int:
        return self._subtree_shard[self.subtree_of(address)]

    def assignments(self) -> Dict[str, int]:
        """subtree -> shard, JSON-keyed (the report's routing table)."""
        return {str(index): shard
                for index, shard in enumerate(self._subtree_shard)}

    def shares(self) -> List[float]:
        """Fraction of the leaf space each shard owns."""
        counts = [0] * self.shards
        for shard in self._subtree_shard:
            counts[shard] += 1
        return [count / self.subtrees for count in counts]


def build_plan(spec: ShardSpec) -> ShardPlan:
    """The spec's routing plan (a pure function of the spec)."""
    return ShardPlan.from_spec(spec)


def route_requests(spec: ShardSpec,
                   plan: Optional[ShardPlan] = None
                   ) -> List[Tuple[int, Request]]:
    """The full timeline with each request's owning shard, arrival order.

    Pure function of the spec: router, workers and audits all call this
    and agree on the routing without communicating.
    """
    if plan is None:
        plan = build_plan(spec)
    timeline = generate_requests(spec.base_spec())
    return [(plan.shard_of_address(request.address), request)
            for request in timeline]


# ----------------------------------------------------------------------
# The per-shard worker
# ----------------------------------------------------------------------

def run_shard(spec: ShardSpec, shard: int) -> Dict[str, object]:
    """Serve one shard's slice of the timeline; returns a payload dict.

    The payload carries the canonical per-shard report plus the raw
    material the router folds: the sojourn samples (aggregate and per
    tenant) and the shard's ``MetricsRegistry`` dump.  Everything is
    re-derived from the spec — no parent state crosses the process
    boundary, which is the determinism argument for the pool fan-out.
    """
    if not 0 <= shard < spec.shards:
        raise ValueError(f"shard {shard} out of range")
    routed = route_requests(spec)
    mine = [request for owner, request in routed if owner == shard]
    base = spec.base_spec()
    protocol = build_serving_protocol(base)
    if shard in spec.quarantined:
        # a whole-shard outage: every site of this shard's protocol is
        # quarantined, so each access runs the degraded (link-shape
        # preserving, zero-data) path and is counted honestly
        for site in range(spec.sites):
            protocol.quarantine(site)
    metrics = MetricsRegistry()
    metrics.gauge("shard/id").set(shard)
    metrics.counter("shard/routed").inc(len(mine))
    scheduler = BatchingScheduler(protocol, queue_capacity=spec.capacity,
                                  batch_size=spec.batch, metrics=metrics,
                                  sample_seed=spec.seed,
                                  control=base.control_plane())
    outcome = scheduler.run(mine)
    share = len(mine) / len(routed) if routed else 0.0
    shard_payload = spec.to_dict()
    shard_payload["shard"] = shard
    report = build_report(shard_payload, outcome,
                          queue_capacity=spec.capacity,
                          offered_rate=spec.rate * share)
    report["degraded"] = {
        "quarantined": shard in spec.quarantined,
        "degraded_accesses": int(getattr(protocol, "degraded_accesses", 0)),
        "lost_appends": int(getattr(protocol, "lost_appends", 0)),
    }
    return {
        "report": report,
        "sojourn_samples": list(outcome.sojourn.samples),
        "tenant_samples": {tenant: list(stats.samples)
                           for tenant, stats
                           in sorted(outcome.per_tenant.items())},
        "metrics": metrics.as_dict(),
    }


# ----------------------------------------------------------------------
# Cross-shard migration: the Section IV-C random walk, one tier up
# ----------------------------------------------------------------------

def model_migrations(spec: ShardSpec, plan: ShardPlan,
                     routed: List[Tuple[int, Request]]) -> Dict[str, object]:
    """Replay the transfer-queue random walk over the routed timeline.

    Every served request remaps its block to a fresh uniform leaf (the
    Path ORAM invariant); when the fresh leaf's subtree hashes to a
    different shard, the block crosses shards exactly like an APPEND
    crosses SDIMMs in the paper: the departure vacancy-services the
    source's queue, the arrival joins the destination's bounded
    :class:`~repro.core.transfer_queue.TransferQueue` and may trigger
    its drain lottery.  Overflows are recorded, never raised — the
    serving tier reports pressure instead of crashing on it.

    The ``model`` sub-section carries the Figure 13 cross-checks: the
    M/M/1/K overflow probability at the configured (p, K) *and* at the
    measured busy-server utilization
    (:meth:`~repro.core.transfer_queue.TransferQueue.measured_utilization`)
    — the configured rho lies once a controller makes *p* time-varying,
    so the measured estimator is the comparison of record — plus the
    undrained first-passage probability, what the walk would have done
    with no drain at all.

    With ``spec.adapt`` a :class:`~repro.control.drain.DrainController`
    per shard re-plans its queue's *p* at every tick-window boundary
    toward the overflow budget the open-loop configuration implies; the
    decisions ride in the returned ``control`` sub-section.
    """
    from repro.analysis.queueing import (mm1k_full_probability,
                                         transfer_queue_overflow_probability)
    from repro.analysis.random_walk import first_passage_overflow_probability
    from repro.control.drain import DrainController
    from repro.core.transfer_queue import (TransferQueue,
                                           TransferQueueOverflow)
    from repro.oram.bucket import Block
    from repro.utils.rng import DeterministicRng

    remap = DeterministicRng(spec.seed, "serve-sharded/migration")
    queues = [TransferQueue(spec.migration_capacity, spec.migration_drain,
                            DeterministicRng(spec.seed,
                                             f"serve-sharded/queue/{index}"))
              for index in range(spec.shards)]
    controllers = decisions = None
    window_ticks = 0
    if spec.adapt:
        # the adaptive set-point keeps the budget the open-loop config
        # implied; only the measured arrival fraction is tracked
        budget = transfer_queue_overflow_probability(
            spec.migration_drain, spec.migration_capacity)
        controllers = [
            DrainController(spec.migration_capacity, spec.migration_drain,
                            overflow_budget=max(budget, 1e-12),
                            name=f"drain/{index}")
            for index in range(spec.shards)
        ]
        decisions = []
        window_ticks = spec.base_spec().effective_window_ticks
    shares = plan.shares()
    migrations = 0
    expected = 0.0
    offered = 0
    next_window = 1
    for shard, request in routed:
        if controllers is not None:
            while next_window * window_ticks <= request.arrival:
                for index, controller in enumerate(controllers):
                    decision = controller.plan(
                        next_window - 1, next_window * window_ticks,
                        queues[index].arrivals, offered)
                    decisions.append(decision)
                    if decision.applied:
                        queues[index].set_drain_probability(
                            decision.after["p"])
                next_window += 1
        offered += 1
        expected += 1.0 - shares[shard]
        fresh = remap.randrange(spec.address_limit)
        destination = plan.shard_of_address(fresh)
        if destination == shard:
            continue
        migrations += 1
        # the departing block frees a slot at the source: a queued
        # in-flight block fills the vacancy for free (Section IV-C)
        queues[shard].service(via_drain=False)
        try:
            drain = queues[destination].push(
                Block(request.address, fresh, b""))
        except TransferQueueOverflow:
            continue  # counted by the queue's own overflow statistics
        if drain:
            queues[destination].service(via_drain=True)
    accesses = len(routed)
    overflows = sum(queue.overflows for queue in queues)
    arrivals = sum(queue.arrivals for queue in queues)
    taken = sum(queue.vacancy_services + queue.drain_services
                for queue in queues)
    opportunities = sum(queue.service_opportunities for queue in queues)
    measured_rho = taken / opportunities if opportunities else None
    payload = {
        "capacity": spec.migration_capacity,
        "drain_probability": round(spec.migration_drain, 9),
        "accesses": accesses,
        "migrations": migrations,
        "migration_fraction": round(migrations / accesses, 9)
        if accesses else 0.0,
        "expected_migration_fraction": round(expected / accesses, 9)
        if accesses else 0.0,
        "overflows": overflows,
        "overflow_rate": round(overflows / arrivals, 9) if arrivals else 0.0,
        "measured_utilization": (round(measured_rho, 9)
                                 if measured_rho is not None else None),
        "per_shard": {
            str(index): dict(
                queue.counters_dict(),
                measured_utilization=(
                    round(queue.measured_utilization(), 9)
                    if queue.measured_utilization() is not None else None),
                drain_probability=round(queue.drain_probability, 9),
            )
            for index, queue in enumerate(queues)
        },
        "model": {
            "mm1k_overflow_probability": round(
                transfer_queue_overflow_probability(
                    spec.migration_drain, spec.migration_capacity), 15),
            # the comparison of record: predicted overflow at the
            # *measured* utilization, honest under time-varying p
            "mm1k_overflow_at_measured": round(
                mm1k_full_probability(measured_rho,
                                      spec.migration_capacity), 15)
            if measured_rho is not None else None,
            "undrained_first_passage": round(
                first_passage_overflow_probability(
                    spec.migration_capacity, max(1, migrations)), 15),
        },
    }
    if controllers is not None:
        payload["control"] = {
            "window_ticks": window_ticks,
            "decisions": [decision.to_dict() for decision in decisions],
            "applied": sum(1 for decision in decisions if decision.applied),
            "final": {str(index): round(queue.drain_probability, 9)
                      for index, queue in enumerate(queues)},
        }
    return payload
