"""Open-loop load generation: who asks for what, and when.

The reproduction's simulator replays *closed-loop* traces — the next miss
waits for the previous one.  A service in front of millions of users sees
the opposite regime: requests arrive at an offered *rate* whether or not
the ORAM backend keeps up, which is exactly why Section IV-C models the
transfer queue as an M/M/1/K system.  This module produces such open-loop
request streams:

* **arrival processes** — Poisson (exponential inter-arrivals), bursty
  (hyperexponential: a fraction of gaps drawn at ``burst_factor`` times
  the base rate), and uniform (fixed spacing) — all over
  :class:`~repro.utils.rng.DeterministicRng`, so a stream is a pure
  function of its spec and seed;
* **address processes** — Zipf-weighted popularity, a hot set
  (reusing the ``hot_fraction`` / ``hot_lines`` locality knobs of
  :mod:`repro.workloads.spec`), or uniform over the tenant's span;
* **per-tenant streams** — each tenant draws from its own named RNG
  stream and owns a slice of the address space; streams merge into one
  timeline with a total, deterministic order.

Times are integer **ticks** on the serving timeline.  One tick is
calibrated by the scheduler to one link event, so rates are "requests per
link-event time" — dimensionless and stable across designs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.oram.path_oram import Op
from repro.utils.rng import DeterministicRng, ZipfSampler

_ARRIVALS = ("poisson", "burst", "uniform")


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's offered load (picklable, canonical, cache-keyable)."""

    name: str
    #: mean arrivals per tick; 0 = a silent tenant (legal, yields nothing)
    rate: float
    #: how many requests the tenant offers in total
    requests: int
    arrival: str = "poisson"
    #: hyperexponential burst knobs (only read when ``arrival="burst"``)
    burst_factor: float = 8.0
    burst_fraction: float = 0.125
    #: addresses this tenant touches (mapped into [base, base + span))
    address_span: int = 64
    #: Zipf exponent over the span; 0 = uniform
    zipf_exponent: float = 0.0
    #: fraction of requests aimed at the first ``hot_span`` addresses —
    #: the ``hot_fraction`` / ``hot_lines`` knobs of ``workloads.spec``
    hot_fraction: float = 0.0
    hot_span: int = 16
    write_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.arrival not in _ARRIVALS:
            raise ValueError(f"unknown arrival process {self.arrival!r}; "
                             f"expected one of {_ARRIVALS}")
        if self.rate < 0:
            raise ValueError("rate must be non-negative")
        if self.requests < 0:
            raise ValueError("request count must be non-negative")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ValueError("write_fraction must be a probability")
        if not 0.0 <= self.hot_fraction <= 1.0:
            raise ValueError("hot_fraction must be a probability")
        if self.address_span < 1:
            raise ValueError("address span must be positive")
        if not 0 < self.hot_span <= self.address_span:
            raise ValueError("hot_span must be within the address span")
        if self.burst_factor < 1.0:
            raise ValueError("burst_factor must be at least 1")
        if not 0.0 <= self.burst_fraction <= 1.0:
            raise ValueError("burst_fraction must be a probability")


def tenant_from_profile(name: str, profile_name: str, rate: float,
                        requests: int, address_span: int = 64,
                        arrival: str = "poisson") -> TenantSpec:
    """Borrow a workload profile's locality knobs for a tenant.

    Maps ``hot_fraction`` directly and scales ``hot_lines`` into the
    tenant's span, so a "mcf-like" tenant hammers a hot set the way the
    closed-loop mcf miss stream does.
    """
    from repro.workloads.spec import get_profile

    profile = get_profile(profile_name)
    hot_span = max(1, min(address_span,
                          address_span * profile.hot_lines // 65_536))
    return TenantSpec(name=name, rate=rate, requests=requests,
                      arrival=arrival, address_span=address_span,
                      hot_fraction=profile.hot_fraction,
                      hot_span=hot_span,
                      write_fraction=profile.write_fraction)


@dataclass(frozen=True)
class Request:
    """One offered request on the serving timeline."""

    arrival: int          # tick the request enters the system
    tenant: str
    sequence: int         # per-tenant issue index (ties break by name,seq)
    address: int
    op: Op
    data: Optional[bytes] = None


def _payload(tenant: str, sequence: int, block_bytes: int) -> bytes:
    """A deterministic, per-request write payload."""
    import hashlib

    seed = hashlib.sha256(f"{tenant}:{sequence}".encode()).digest()
    repeats = (block_bytes + len(seed) - 1) // len(seed)
    return (seed * repeats)[:block_bytes]


def _inter_arrival(spec: TenantSpec, rng: DeterministicRng) -> float:
    if spec.arrival == "uniform":
        return 1.0 / spec.rate
    if spec.arrival == "burst" and rng.bernoulli(spec.burst_fraction):
        return rng.expovariate(spec.rate * spec.burst_factor)
    return rng.expovariate(spec.rate)


def generate_stream(spec: TenantSpec, seed: int, base_address: int,
                    address_limit: int, block_bytes: int) -> List[Request]:
    """One tenant's request list, sorted by arrival tick.

    ``base_address`` places the tenant's span inside the protocol's
    address space; addresses wrap at ``address_limit`` so a spec never
    exceeds the backing ORAM.
    """
    if spec.rate == 0.0 or spec.requests == 0:
        return []
    timing = DeterministicRng(seed, f"serve/arrivals/{spec.name}")
    addressing = DeterministicRng(seed, f"serve/addresses/{spec.name}")
    zipf = (ZipfSampler(addressing, spec.address_span, spec.zipf_exponent)
            if spec.zipf_exponent > 0.0 else None)
    requests: List[Request] = []
    clock = 0.0
    for sequence in range(spec.requests):
        clock += _inter_arrival(spec, timing)
        if spec.hot_fraction and addressing.bernoulli(spec.hot_fraction):
            offset = addressing.randrange(spec.hot_span)
        elif zipf is not None:
            offset = zipf.sample()
        else:
            offset = addressing.randrange(spec.address_span)
        address = (base_address + offset) % address_limit
        if spec.write_fraction and addressing.bernoulli(spec.write_fraction):
            op, data = Op.WRITE, _payload(spec.name, sequence, block_bytes)
        else:
            op, data = Op.READ, None
        requests.append(Request(arrival=int(clock), tenant=spec.name,
                                sequence=sequence, address=address,
                                op=op, data=data))
    return requests


def merge_streams(streams: Iterable[List[Request]]) -> List[Request]:
    """One total-ordered timeline: (arrival, tenant, sequence).

    The tie-break is part of the determinism contract — two tenants
    arriving on the same tick always serialize the same way, so reports
    are byte-identical no matter how streams were generated or stored.
    """
    keyed: List[Tuple[int, str, int, Request]] = []
    for stream in streams:
        for request in stream:
            keyed.append((request.arrival, request.tenant,
                          request.sequence, request))
    keyed.sort(key=lambda entry: entry[:3])
    return [entry[3] for entry in keyed]


def offered_load(streams: Iterable[List[Request]]) -> float:
    """Aggregate offered arrival rate (requests per tick) of a timeline."""
    requests = [r for stream in streams for r in stream]
    if not requests:
        return 0.0
    horizon = max(request.arrival for request in requests)
    return len(requests) / horizon if horizon else float(len(requests))
