"""repro.serve — the open-loop request-serving layer (docs/serving.md).

Load generation (:mod:`~repro.serve.loadgen`), the bounded batching
scheduler with backpressure (:mod:`~repro.serve.scheduler`), SLO
reporting against the Section IV-C queueing model
(:mod:`~repro.serve.slo`), and cached parallel rate sweeps
(:mod:`~repro.serve.bench`) behind ``python -m repro serve-bench``.
"""

from repro.serve.bench import (
    ServeSpec,
    build_serving_protocol,
    generate_requests,
    run_serve,
    run_serve_sweep,
    serve_cache_key,
)
from repro.serve.loadgen import (
    Request,
    TenantSpec,
    generate_stream,
    merge_streams,
    offered_load,
    tenant_from_profile,
)
from repro.serve.scheduler import (
    AdmissionRejected,
    BatchingScheduler,
    Completion,
    SchedulerOutcome,
)
from repro.serve.slo import (
    REPORT_SCHEMA,
    build_report,
    canonical_json,
    compare_with_model,
    render_table,
)

__all__ = [
    "AdmissionRejected",
    "BatchingScheduler",
    "Completion",
    "REPORT_SCHEMA",
    "Request",
    "SchedulerOutcome",
    "ServeSpec",
    "TenantSpec",
    "build_report",
    "build_serving_protocol",
    "canonical_json",
    "compare_with_model",
    "generate_requests",
    "generate_stream",
    "merge_streams",
    "offered_load",
    "run_serve",
    "run_serve_sweep",
    "serve_cache_key",
    "tenant_from_profile",
]
