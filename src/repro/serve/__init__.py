"""repro.serve — the open-loop request-serving layer (docs/serving.md).

Load generation (:mod:`~repro.serve.loadgen`), the bounded batching
scheduler with backpressure (:mod:`~repro.serve.scheduler`), SLO
reporting against the Section IV-C queueing model
(:mod:`~repro.serve.slo`), cached parallel rate sweeps
(:mod:`~repro.serve.bench`) behind ``python -m repro serve-bench``, and
the sharded multi-process tier over leaf-MSB partitions
(:mod:`~repro.serve.shard` routing and per-shard workers,
:mod:`~repro.serve.router` fan-out and aggregate folding) behind
``python -m repro serve-sharded``.
"""

from repro.serve.bench import (
    DEFAULT_SLO_P99,
    DEFAULT_WINDOW_TICKS,
    ServeSpec,
    build_serving_protocol,
    generate_requests,
    run_serve,
    run_serve_sweep,
    serve_cache_key,
)
from repro.serve.loadgen import (
    Request,
    TenantSpec,
    generate_stream,
    merge_streams,
    offered_load,
    tenant_from_profile,
)
from repro.serve.scheduler import (
    AdmissionRejected,
    BatchingScheduler,
    Completion,
    SchedulerOutcome,
)
from repro.serve.router import (
    SHARD_SCHEMA,
    fold_shard_reports,
    run_sharded,
    run_sharded_sweep,
    sharded_cache_key,
)
from repro.serve.shard import (
    ShardPlan,
    ShardSpec,
    build_plan,
    model_migrations,
    route_requests,
    run_shard,
)
from repro.serve.slo import (
    REPORT_SCHEMA,
    build_report,
    canonical_json,
    compare_with_model,
    render_table,
)

__all__ = [
    "AdmissionRejected",
    "BatchingScheduler",
    "Completion",
    "DEFAULT_SLO_P99",
    "DEFAULT_WINDOW_TICKS",
    "REPORT_SCHEMA",
    "Request",
    "SHARD_SCHEMA",
    "SchedulerOutcome",
    "ServeSpec",
    "ShardPlan",
    "ShardSpec",
    "TenantSpec",
    "build_plan",
    "build_report",
    "build_serving_protocol",
    "canonical_json",
    "compare_with_model",
    "fold_shard_reports",
    "generate_requests",
    "generate_stream",
    "merge_streams",
    "model_migrations",
    "offered_load",
    "route_requests",
    "run_serve",
    "run_serve_sweep",
    "run_shard",
    "run_sharded",
    "run_sharded_sweep",
    "serve_cache_key",
    "sharded_cache_key",
    "tenant_from_profile",
]
