"""The sharded front-end router: fan out, admit, fold (docs/serving.md).

``serve-sharded`` runs one :class:`~repro.serve.shard.ShardSpec` through
``shards`` persistent worker processes — the warm pools of
:mod:`repro.parallel.sweep` — and folds the per-shard outcomes into one
canonical aggregate report:

* **routing** is the consistent-hash plan over leaf-MSB subtrees
  (:class:`~repro.serve.shard.ShardPlan`); every worker re-derives it
  from the spec, so no routing table crosses the process boundary;
* **admission** is per shard: each worker runs its own bounded
  :class:`~repro.serve.scheduler.BatchingScheduler`, so overload sheds
  structured records locally and the aggregate report simply sums them;
* **SLO folding** merges per-shard sojourn samples in shard order into
  one quantile ladder, and folds the per-shard ``MetricsRegistry``
  dumps with :func:`repro.obs.metrics.fold_metrics_dict` — the same
  merge semantics the sweep engine and the time-series windows use;
* **migration** replays the Section IV-C transfer-queue random walk
  over the routed timeline (:func:`~repro.serve.shard.model_migrations`).

The aggregate report keeps the single-server report's section names
(``totals`` / ``queue`` / ``service`` / ``model`` / ``sojourn``), so
:func:`repro.obs.ledger.serve_core` builds ledger records from shard
and aggregate reports alike.  Byte-identity contract: same spec, same
report, for any ``--jobs``, warm or cold pools, cached or fresh.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.metrics import MetricsRegistry, fold_metrics_dict
from repro.parallel.cache import RunCache
from repro.parallel.fingerprint import code_fingerprint
from repro.serve.shard import (ShardSpec, build_plan, model_migrations,
                               route_requests, run_shard)
from repro.serve.slo import _round
from repro.sim.stats import LatencyStats
from repro.utils.rng import DeterministicRng

#: Bump when the aggregate report layout changes (cache entries key on it).
#: 2: adaptive-control sections, migration measured-utilization fields,
#: drain-lottery draw-order fix in the migration replay.
SHARD_SCHEMA = 2


def sharded_cache_key(spec: ShardSpec,
                      fingerprint: Optional[str] = None) -> str:
    """Content hash identifying one sharded serving request."""
    request = {
        "artifact": "serve-sharded",
        "schema": SHARD_SCHEMA,
        "spec": spec.to_dict(),
        "fingerprint": fingerprint if fingerprint is not None
        else code_fingerprint(),
    }
    rendered = json.dumps(request, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(rendered.encode()).hexdigest()


def _shard_worker(task: Tuple[int, Dict[str, object]]
                  ) -> Tuple[int, Dict[str, object]]:
    """Pool worker: one shard, re-derived entirely from the spec dict."""
    shard, payload = task
    return shard, run_shard(ShardSpec.from_dict(payload), shard)


def _fold_latency(sample_lists: List[List[int]], seed: int,
                  stream: str) -> Dict[str, object]:
    """One quantile ladder from per-shard samples, folded in shard order."""
    stats = LatencyStats(sample_rng=DeterministicRng(seed, stream))
    for samples in sample_lists:
        for value in samples:
            stats.record(value)
    return stats.summary()


def fold_shard_reports(spec: ShardSpec,
                       payloads: Sequence[Tuple[int, Dict[str, object]]]
                       ) -> Dict[str, object]:
    """Fold per-shard worker payloads (shard order) into one report."""
    plan = build_plan(spec)
    ordered = sorted(payloads, key=lambda item: item[0])
    reports = [payload["report"] for _, payload in ordered]

    totals = {key: sum(report["totals"][key] for report in reports)
              for key in ("offered", "admitted", "completed", "shed",
                          "coalesced", "batches", "accesses",
                          "plain_accesses")}
    peak_depth = max(report["queue"]["peak_depth"] for report in reports)
    busy = sum(report["service"]["busy_ticks"] for report in reports)
    elapsed = max(report["service"]["elapsed_ticks"] for report in reports)
    accesses = totals["accesses"]
    ticks_per_access = busy / accesses if accesses else 0.0
    utilization = (busy / (spec.shards * elapsed)) if elapsed else 0.0
    rho_offered = _round(sum(report["model"]["rho_offered"]
                             for report in reports) / spec.shards)
    shed_rate = (totals["shed"] / totals["offered"]
                 if totals["offered"] else 0.0)
    from repro.analysis.queueing import mm1k_full_probability

    predicted_full = (mm1k_full_probability(rho_offered, spec.capacity)
                      if rho_offered > 0 else 0.0)

    sojourn = _fold_latency([payload["sojourn_samples"]
                             for _, payload in ordered],
                            spec.seed, "serve-sharded/sojourn")
    tenants = sorted({tenant for _, payload in ordered
                      for tenant in payload["tenant_samples"]})
    per_tenant = {
        tenant: _fold_latency(
            [payload["tenant_samples"].get(tenant, [])
             for _, payload in ordered],
            spec.seed, f"serve-sharded/sojourn/{tenant}")
        for tenant in tenants
    }

    folded_metrics = MetricsRegistry()
    for _, payload in ordered:
        fold_metrics_dict(folded_metrics, payload["metrics"])

    routed = route_requests(spec, plan)
    migration = model_migrations(spec, plan, routed)

    # satellite accounting: the migration queues' public counters land in
    # the folded metrics lane so obs consumers see wasted drain spends
    for key in ("arrivals", "vacancy_services", "drain_services",
                "wasted_drains", "idle_vacancies", "overflows"):
        folded_metrics.counter(f"migration/{key}").inc(sum(
            shard_counters[key]
            for shard_counters in migration["per_shard"].values()))

    control = None
    shard_controls = [report.get("control") for report in reports]
    if any(shard_controls) or "control" in migration:
        migration_control = migration.get("control") or {}
        control = {
            # aggregate decision counts cover every controller in the
            # tier: per-shard admission/morph plus the migration drains
            "decisions": sum(len(section["decisions"])
                             for section in shard_controls if section)
            + len(migration_control.get("decisions", ())),
            "applied": sum(section["applied"]
                           for section in shard_controls if section)
            + migration_control.get("applied", 0),
            "overhead_ticks": sum(section["overhead_ticks"]
                                  for section in shard_controls if section),
            "migration": migration.get("control"),
        }
        # the shard schedulers' own control/* counters arrive via the
        # folded metrics dumps; only the migration controllers (which
        # run router-side, with no per-shard registry) are added here
        folded_metrics.counter("control/decisions").inc(
            len(migration_control.get("decisions", ())))
        folded_metrics.counter("control/applied").inc(
            migration_control.get("applied", 0))

    degraded_reports = [report for report in reports
                        if report["degraded"]["quarantined"]]
    return {
        "schema": SHARD_SCHEMA,
        "spec": spec.to_dict(),
        "plan": {
            "shards": spec.shards,
            "subtrees": spec.subtrees,
            "virtual_nodes": spec.virtual_nodes,
            "assignments": plan.assignments(),
            "shares": [_round(share) for share in plan.shares()],
        },
        "shards": reports,
        "totals": totals,
        "queue": {
            "capacity": spec.capacity,
            "peak_depth": peak_depth,
            "depth_bounded": all(report["queue"]["depth_bounded"]
                                 for report in reports),
        },
        "service": {
            "busy_ticks": busy,
            "elapsed_ticks": elapsed,
            "ticks_per_access": _round(ticks_per_access),
            "utilization": _round(utilization),
        },
        "model": {
            "offered_rate": _round(spec.rate),
            "rho_offered": rho_offered,
            "rho_measured": _round(utilization),
            "mm1k_full_probability": _round(predicted_full, digits=15),
            "shed_rate": _round(shed_rate),
        },
        "sojourn": {
            "aggregate": sojourn,
            "per_tenant": per_tenant,
        },
        "control": control,
        "migration": migration,
        "degraded": {
            "quarantined": list(spec.quarantined),
            "degraded_shards": len(degraded_reports),
            "degraded_accesses": sum(report["degraded"]["degraded_accesses"]
                                     for report in reports),
            "lost_appends": sum(report["degraded"]["lost_appends"]
                                for report in reports),
        },
        "metrics": folded_metrics.as_dict(),
    }


def run_sharded(spec: ShardSpec, jobs: int = 1,
                cache: Optional[RunCache] = None,
                meta: Optional[List[Dict[str, object]]] = None
                ) -> Dict[str, object]:
    """Run one sharded serving point; returns the aggregate report.

    Mirrors :func:`repro.parallel.sweep.run_sweep`: cache-first, warm
    pool with serial fallback, shard-index merge — byte-identical output
    regardless of completion order, ``jobs``, or pool temperature.

    ``meta``, when given, receives one ``{"wall_ms", "from_cache"}`` dict
    (the volatile side-channel the ledger records; never in the report).
    """
    from repro.obs.ledger import host_clock_s

    fingerprint = code_fingerprint() if cache is not None else None
    key = None
    if cache is not None:
        key = sharded_cache_key(spec, fingerprint=fingerprint)
        cached = cache.get_json(key)
        if cached is not None:
            if meta is not None:
                meta.append({"wall_ms": 0.0, "from_cache": True})
            return cached

    started = host_clock_s()
    tasks = [(shard, spec.to_dict()) for shard in range(spec.shards)]
    payloads: List[Tuple[int, Dict[str, object]]] = []
    pool = None
    if jobs > 1 and len(tasks) > 1:
        from repro.parallel.sweep import warm_pool

        pool = warm_pool(jobs)
    if pool is None:
        for task in tasks:
            payloads.append(_shard_worker(task))
    else:
        try:
            # completion order is nondeterministic; fold_shard_reports
            # re-sorts by shard index before any folding
            for item in pool.imap_unordered(_shard_worker, tasks):
                payloads.append(item)
        except BaseException:
            from repro.parallel.sweep import discard_pool

            discard_pool(jobs)
            raise
    payloads = sorted(payloads, key=lambda item: item[0])
    report = fold_shard_reports(spec, payloads)
    wall_ms = (host_clock_s() - started) * 1000.0
    if cache is not None and key is not None:
        cache.put_json(key, report, fingerprint=fingerprint)
    if meta is not None:
        meta.append({"wall_ms": wall_ms, "from_cache": False})
    return report


def run_sharded_sweep(specs: Sequence[ShardSpec], jobs: int = 1,
                      cache: Optional[RunCache] = None,
                      meta: Optional[List[Dict[str, object]]] = None
                      ) -> List[Dict[str, object]]:
    """Run several sharded points in submission order.

    The fan-out happens *inside* each point (one worker per shard);
    points run one after another so the pool is reused across them.
    """
    return [run_sharded(spec, jobs=jobs, cache=cache, meta=meta)
            for spec in specs]
