"""SLO reporting: sojourn-time quantiles against the Section IV-C model.

A serving run collapses to one canonical JSON report:

* **sojourn quantiles** — p50/p95/p99/p999 of (completion - arrival),
  per tenant and aggregate, via
  :meth:`repro.sim.stats.LatencyStats.summary`;
* **admission accounting** — offered / admitted / shed / coalesced, the
  shed records themselves, and the peak queue depth (which the bounded
  queue guarantees never exceeds K);
* **the analytic cross-check** — measured utilization rho and the
  M/M/1/K full probability
  :func:`repro.analysis.queueing.mm1k_full_probability` at the same
  (rho, K).  The backend's service time is near-deterministic (fixed
  link shape per access), so the measured shed rate of this M/D/1/K-like
  system sits at or below the M/M/1/K prediction — the model is the
  paper's reference curve and an upper envelope, not an equality.

Reports are rendered with ``sort_keys`` and fixed separators, so two
runs of the same spec — serial, parallel, or cache-served — compare
byte-for-byte.
"""

from __future__ import annotations

import json
from typing import Dict, Optional

from repro.analysis.queueing import mm1k_full_probability
from repro.serve.scheduler import SchedulerOutcome

#: Bump when the report layout changes (cache entries key on this).
#: 2: adaptive-control section (``control``), plain-access totals.
REPORT_SCHEMA = 2


def _round(value: float, digits: int = 9) -> float:
    """Stabilize float fields against accumulation-order noise.

    Every number in a report is computed single-threaded from a
    deterministic run, so this is belt-and-braces: it also keeps the JSON
    rendering compact and diff-friendly.
    """
    return round(float(value), digits)


def build_report(spec_payload: Dict[str, object],
                 outcome: SchedulerOutcome,
                 queue_capacity: int,
                 offered_rate: float) -> Dict[str, object]:
    """One serving run -> one canonical, JSON-ready report dict."""
    ticks_per_access = outcome.ticks_per_access
    rho_measured = outcome.utilization
    rho_offered = (offered_rate * ticks_per_access
                   if ticks_per_access else 0.0)
    prediction_rho = rho_offered if rho_offered else rho_measured
    predicted_full = (mm1k_full_probability(prediction_rho, queue_capacity)
                      if prediction_rho > 0 else 0.0)
    return {
        "schema": REPORT_SCHEMA,
        "spec": spec_payload,
        "totals": {
            "offered": outcome.offered,
            "admitted": outcome.admitted,
            "completed": len(outcome.completions),
            "shed": len(outcome.shed),
            "coalesced": outcome.coalesced,
            "batches": outcome.batches,
            "accesses": outcome.accesses,
            "plain_accesses": outcome.plain_accesses,
        },
        "control": outcome.control_payload,
        "queue": {
            "capacity": queue_capacity,
            "peak_depth": outcome.peak_depth,
            "depth_bounded": outcome.peak_depth <= queue_capacity,
        },
        "service": {
            "busy_ticks": outcome.busy_ticks,
            "elapsed_ticks": outcome.elapsed_ticks,
            "ticks_per_access": _round(ticks_per_access),
            "utilization": _round(rho_measured),
        },
        "model": {
            "offered_rate": _round(offered_rate),
            "rho_offered": _round(rho_offered),
            "rho_measured": _round(rho_measured),
            "mm1k_full_probability": _round(predicted_full, digits=15),
            "shed_rate": _round(outcome.shed_rate),
        },
        "sojourn": {
            "aggregate": outcome.sojourn.summary(),
            "per_tenant": {tenant: stats.summary()
                           for tenant, stats
                           in sorted(outcome.per_tenant.items())},
        },
        "shed_records": [record.to_dict() for record in outcome.shed],
    }


def canonical_json(report: Dict[str, object]) -> str:
    """The byte-identity rendering (what ``--report`` writes)."""
    return json.dumps(report, sort_keys=True, separators=(",", ":"))


def compare_with_model(report: Dict[str, object]) -> Dict[str, float]:
    """Measured shed rate next to the M/M/1/K reference at matched rho.

    Returns the pair plus their gap; callers (tests, the CLI table)
    decide tolerance.  With deterministic service the measurement should
    not exceed the Markovian prediction by more than sampling noise.
    """
    model = report["model"]
    # rho_offered == 0.0 is a legitimate zero-rate measurement, not an
    # absence — only fall back to the measured value when the field is
    # actually missing (``or`` would silently swap in rho_measured).
    rho_offered = model.get("rho_offered")
    return {
        "rho": (model["rho_measured"] if rho_offered is None
                else rho_offered),
        "predicted_full_probability": model["mm1k_full_probability"],
        "measured_shed_rate": model["shed_rate"],
        "gap": model["shed_rate"] - model["mm1k_full_probability"],
    }


def render_table(reports, title: Optional[str] = None) -> str:
    """A fixed-width sweep table (rate, rho, quantiles, shed)."""
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{'rate':>8s} {'rho':>6s} {'util':>6s} {'p50':>7s} "
                 f"{'p95':>7s} {'p99':>7s} {'p999':>7s} {'shed':>7s} "
                 f"{'mm1k':>9s}")
    for report in reports:
        model = report["model"]
        agg = report["sojourn"]["aggregate"]
        lines.append(
            f"{model['offered_rate']:8.4f} {model['rho_offered']:6.2f} "
            f"{report['service']['utilization']:6.2f} "
            f"{agg['p50']:7d} {agg['p95']:7d} {agg['p99']:7d} "
            f"{agg['p999']:7d} {model['shed_rate']:7.2%} "
            f"{model['mm1k_full_probability']:9.1e}")
    return "\n".join(lines)
