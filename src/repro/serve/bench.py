"""Sweepable serving benchmarks: rate sweeps with caching and fan-out.

``serve-bench`` asks the question the closed-loop figures cannot: *what
request rate can each protocol sustain, and what does the tail look like
on the way to saturation?*  One :class:`ServeSpec` is one point — a
protocol, an offered load, an admission queue — and sweeps mirror the
:mod:`repro.parallel` engine exactly: cache-first through
:meth:`~repro.parallel.cache.RunCache.get_json`, process-pool fan-out
with serial fallback, submission-index merge.  The report list is
byte-identical for any ``--jobs`` value and across cached replays.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.control.admission import AdmissionController
from repro.control.morph import MorphController
from repro.control.plane import ServeControlPlane
from repro.parallel.cache import RunCache
from repro.parallel.fingerprint import code_fingerprint
from repro.serve.loadgen import (TenantSpec, generate_stream,
                                 merge_streams, tenant_from_profile)
from repro.serve.scheduler import BatchingScheduler
from repro.serve.slo import REPORT_SCHEMA, build_report

_DESIGNS = ("independent", "split", "indep-split")

#: adaptive-run defaults when the spec leaves them at 0 (auto)
DEFAULT_WINDOW_TICKS = 1024
DEFAULT_SLO_P99 = 2048

#: Key material for bench protocols (serving always encrypts on-DIMM).
_SERVE_KEY = b"serve-bench-key"


@dataclass(frozen=True)
class ServeSpec:
    """One serving benchmark point (picklable, canonical, cache-keyable)."""

    design: str = "split"
    levels: int = 9
    sites: int = 2
    #: aggregate offered arrival rate, requests per tick (split evenly
    #: across tenants)
    rate: float = 0.002
    requests: int = 512
    #: admission queue capacity K
    capacity: int = 32
    #: batch drained per scheduling round (1 = no batching)
    batch: int = 8
    tenants: int = 1
    arrival: str = "poisson"
    zipf_exponent: float = 0.0
    write_fraction: float = 0.25
    #: borrow hot-set locality from this workload profile (None = uniform)
    profile: Optional[str] = None
    seed: int = 2018
    blocks_per_bucket: int = 4
    block_bytes: int = 64
    stash_capacity: int = 256
    #: close the loop: admission/batch (and, with declassified tenants,
    #: morph) controllers re-plan at every window boundary
    adapt: bool = False
    #: p99 sojourn target in ticks (0 = DEFAULT_SLO_P99)
    slo_p99: int = 0
    #: control window length in ticks (0 = DEFAULT_WINDOW_TICKS)
    window_ticks: int = 0
    #: tenants the operator allows to morph into non-secure mode
    declassified: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        # JSON round-trips deliver lists; the spec stays hashable
        object.__setattr__(self, "declassified",
                           tuple(self.declassified))
        if self.design not in _DESIGNS:
            raise ValueError(f"unknown design {self.design!r}; "
                             f"expected one of {_DESIGNS}")
        if self.rate < 0:
            raise ValueError("rate must be non-negative")
        if self.requests < 0:
            raise ValueError("request count must be non-negative")
        if self.capacity < 1:
            raise ValueError("admission capacity must be at least 1")
        if self.batch < 1:
            raise ValueError("batch must be at least 1")
        if self.tenants < 1:
            raise ValueError("need at least one tenant")
        if self.levels < 3:
            raise ValueError("serving trees need at least 3 levels")
        if self.slo_p99 < 0:
            raise ValueError("SLO target must be non-negative")
        if self.window_ticks < 0:
            raise ValueError("control window must be non-negative")
        if self.declassified and not self.adapt:
            raise ValueError("declassified tenants need --adapt")

    @property
    def effective_window_ticks(self) -> int:
        return self.window_ticks or DEFAULT_WINDOW_TICKS

    @property
    def effective_slo_p99(self) -> int:
        return self.slo_p99 or DEFAULT_SLO_P99

    def control_plane(self) -> Optional[ServeControlPlane]:
        """The spec's adaptive control plane (None on open-loop runs).

        Built fresh per run: controllers carry run state, so sharing one
        across runs would leak decisions between replays.
        """
        if not self.adapt:
            return None
        admission = AdmissionController(self.effective_slo_p99,
                                        self.capacity,
                                        batch_size=self.batch)
        morph = (MorphController(frozenset(self.declassified))
                 if self.declassified else None)
        return ServeControlPlane(self.effective_window_ticks,
                                 admission=admission, morph=morph,
                                 block_bytes=self.block_bytes)

    @property
    def address_limit(self) -> int:
        """The protocol's address space: one block per leaf."""
        return 1 << (self.levels - 1)

    def to_dict(self) -> Dict[str, object]:
        payload = asdict(self)
        payload["declassified"] = list(self.declassified)
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ServeSpec":
        return cls(**{key: payload[key]
                      for key in cls.__dataclass_fields__  # noqa: SLF001
                      if key in payload})

    def tenant_specs(self) -> List[TenantSpec]:
        """Split the offered load across per-tenant streams."""
        per_rate = self.rate / self.tenants
        base_requests, remainder = divmod(self.requests, self.tenants)
        span = max(1, self.address_limit // self.tenants)
        specs = []
        for index in range(self.tenants):
            count = base_requests + (1 if index < remainder else 0)
            name = f"t{index}"
            if self.profile is not None:
                spec = tenant_from_profile(name, self.profile,
                                           rate=per_rate, requests=count,
                                           address_span=span,
                                           arrival=self.arrival)
            else:
                spec = TenantSpec(name=name, rate=per_rate, requests=count,
                                  arrival=self.arrival, address_span=span,
                                  zipf_exponent=self.zipf_exponent,
                                  hot_span=max(1, span // 4),
                                  write_fraction=self.write_fraction)
            specs.append(spec)
        return specs


def build_serving_protocol(spec: ServeSpec):
    """One protocol instance wired for serving (link metering on)."""
    if spec.design == "independent":
        from repro.core.independent import IndependentProtocol

        return IndependentProtocol(
            global_levels=spec.levels, sdimm_count=spec.sites,
            blocks_per_bucket=spec.blocks_per_bucket,
            block_bytes=spec.block_bytes,
            stash_capacity=spec.stash_capacity, seed=spec.seed,
            record_link=True, encryption_key=_SERVE_KEY)
    if spec.design == "split":
        from repro.core.split import SplitProtocol

        return SplitProtocol(
            levels=spec.levels, ways=2,
            blocks_per_bucket=spec.blocks_per_bucket,
            block_bytes=spec.block_bytes,
            stash_capacity=spec.stash_capacity, seed=spec.seed,
            key=_SERVE_KEY, record_link=True)
    from repro.core.indep_split import IndepSplitProtocol

    return IndepSplitProtocol(
        global_levels=spec.levels, groups=spec.sites, ways=2,
        blocks_per_bucket=spec.blocks_per_bucket,
        block_bytes=spec.block_bytes,
        stash_capacity=spec.stash_capacity, seed=spec.seed,
        key=_SERVE_KEY, record_link=True)


def generate_requests(spec: ServeSpec):
    """The spec's full open-loop timeline (merged across tenants)."""
    streams = [generate_stream(tenant, spec.seed,
                               base_address=index *
                               max(1, spec.address_limit // spec.tenants),
                               address_limit=spec.address_limit,
                               block_bytes=spec.block_bytes)
               for index, tenant in enumerate(spec.tenant_specs())]
    return merge_streams(streams)


def run_serve(spec: ServeSpec,
              keep_read_bytes: bool = False) -> Dict[str, object]:
    """Execute one serving point; returns the canonical report dict."""
    protocol = build_serving_protocol(spec)
    requests = generate_requests(spec)
    scheduler = BatchingScheduler(protocol, queue_capacity=spec.capacity,
                                  batch_size=spec.batch,
                                  keep_read_bytes=keep_read_bytes,
                                  sample_seed=spec.seed,
                                  control=spec.control_plane())
    outcome = scheduler.run(requests)
    report = build_report(spec.to_dict(), outcome,
                          queue_capacity=spec.capacity,
                          offered_rate=spec.rate)
    if keep_read_bytes:
        report["_read_bytes"] = {f"{tenant}:{sequence}": data.hex()
                                 for (tenant, sequence), data
                                 in sorted(outcome.read_bytes.items())}
    return report


# ----------------------------------------------------------------------
# The cached, parallel rate sweep
# ----------------------------------------------------------------------

def serve_cache_key(spec: ServeSpec,
                    fingerprint: Optional[str] = None) -> str:
    """Content hash identifying one serving request."""
    request = {
        "artifact": "serve-bench",
        "schema": REPORT_SCHEMA,
        "spec": spec.to_dict(),
        "fingerprint": fingerprint if fingerprint is not None
        else code_fingerprint(),
    }
    rendered = json.dumps(request, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(rendered.encode()).hexdigest()


def _serve_worker(task: Tuple[int, Dict[str, object]]
                  ) -> Tuple[int, Dict[str, object], float]:
    """Pool worker: re-derives everything from the picklable spec dict.

    The trailing wall-clock milliseconds are measurement *metadata* —
    they ride next to the report (never inside it), so report bytes stay
    identical across ``--jobs`` values and cached replays while the
    performance ledger still gets an honest host wall-clock.
    """
    from repro.obs.ledger import host_clock_s

    index, payload = task
    spec = ServeSpec.from_dict(payload)
    started = host_clock_s()
    report = run_serve(spec)
    return index, report, (host_clock_s() - started) * 1000.0


def run_serve_sweep(specs: Sequence[ServeSpec], jobs: int = 1,
                    cache: Optional[RunCache] = None,
                    meta: Optional[List[Dict[str, object]]] = None
                    ) -> List[Dict[str, object]]:
    """Run several serving points; reports come back in submission order.

    Mirrors :func:`repro.parallel.sweep.run_sweep`: cache-first, warm
    persistent pool with serial fallback, submission-index merge so the
    output is bit-identical regardless of completion order or ``jobs``.

    ``meta``, when given, receives one ``{"wall_ms", "from_cache"}`` dict
    per spec (submission order) — the volatile side-channel the ledger
    records; the returned reports never contain it.
    """
    specs = list(specs)
    fingerprint = code_fingerprint() if cache is not None else None
    slots: List[Optional[Dict[str, object]]] = [None] * len(specs)
    metas: List[Dict[str, object]] = [{"wall_ms": 0.0, "from_cache": True}
                                      for _ in specs]
    pending: List[Tuple[int, Dict[str, object]]] = []
    keys: Dict[int, str] = {}

    for index, spec in enumerate(specs):
        if cache is None:
            pending.append((index, spec.to_dict()))
            continue
        key = serve_cache_key(spec, fingerprint=fingerprint)
        keys[index] = key
        cached = cache.get_json(key)
        if cached is not None:
            slots[index] = cached
        else:
            pending.append((index, spec.to_dict()))

    payloads: List[Tuple[int, Dict[str, object], float]] = []
    pool = None
    if jobs > 1 and len(pending) > 1:
        from repro.parallel.sweep import warm_pool

        pool = warm_pool(jobs)
    if pool is None:
        for task in pending:
            payloads.append(_serve_worker(task))
    else:
        try:
            # completion order is nondeterministic; the sorted merge
            # below restores submission order
            for item in pool.imap_unordered(_serve_worker, pending):
                payloads.append(item)
        except BaseException:
            from repro.parallel.sweep import discard_pool

            discard_pool(jobs)
            raise

    for index, payload, wall_ms in sorted(payloads,
                                          key=lambda item: item[0]):
        slots[index] = payload
        metas[index] = {"wall_ms": wall_ms, "from_cache": False}
        if cache is not None:
            cache.put_json(keys[index], payload, fingerprint=fingerprint)

    if meta is not None:
        meta.extend(metas)
    reports = [entry for entry in slots if entry is not None]
    assert len(reports) == len(specs), "serve sweep lost a point"
    return reports
