"""Applying a :class:`~repro.faults.plan.FaultPlan` to live protocol state.

The injector drives faults through the *existing* adversarial hooks —
``snapshot`` / ``tamper`` / ``replay`` on the PMMAC and Merkle stores,
``snapshot_bucket`` / ``tamper_bucket`` / ``restore_bucket`` on Split
buffers — so an injected fault is exactly the event the threat model's
adversary could cause, nothing more.

Scheduling is positional (see :mod:`repro.faults.plan`): the injector
counts bucket reads per site and link messages per access, and a spec
fires when its ordinal comes up.  Transient faults (bit-flips, replays)
are *healed* — the saved pre-fault cell is put back — the moment a
verifier catches them, which is what lets the recovery layer's re-read
succeed; persistent stuck cells re-corrupt on every write and can only
end in retry exhaustion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs.tracer import CATEGORY_FAULT, NULL_TRACER, StepClock, Tracer
from repro.oram.integrity import IntegrityError
from repro.faults.plan import (FAULT_BIT_FLIP, FAULT_REPLAY,
                               FAULT_STUCK_CELL, FaultPlan, FaultSpec)


@dataclass
class ScheduledFault:
    """One plan entry plus its lifecycle flags.

    Kept separate from the frozen :class:`FaultSpec` so equal specs drawn
    twice by a plan stay individually accountable.
    """

    spec: FaultSpec
    applied: bool = False
    vacuous: bool = False
    detected: bool = False
    missed: bool = False
    note: str = ""

    @property
    def kind(self) -> str:
        return self.spec.kind

    @property
    def delay_steps(self) -> int:
        return self.spec.delay_steps


class FaultInjector:
    """Positional matcher and scoreboard for one plan's faults.

    One injector serves one run.  The campaign calls
    :meth:`begin_access` before each protocol access; the fault proxies
    (:class:`FaultyStore`, :class:`SplitFaultDriver`,
    :class:`~repro.faults.recovery.ResilientLink`) consult the matchers
    and report outcomes back.  :meth:`summary` is the detection report
    the acceptance gate checks (every applied integrity fault must be
    detected).
    """

    def __init__(self, plan: FaultPlan, tracer: Tracer = NULL_TRACER,
                 clock: Optional[StepClock] = None):
        self.plan = plan
        self._tracer = tracer
        self._clock = clock
        self._seq = 0
        self._integrity: Dict[int, List[ScheduledFault]] = {}
        self._link: Dict[int, List[ScheduledFault]] = {}
        self._stalls: Dict[int, List[ScheduledFault]] = {}
        for spec in plan.integrity_specs:
            self._integrity.setdefault(spec.access_index,
                                       []).append(ScheduledFault(spec))
        for spec in plan.link_specs:
            self._link.setdefault(spec.access_index,
                                  []).append(ScheduledFault(spec))
        for spec in plan.stall_specs:
            self._stalls.setdefault(spec.access_index,
                                    []).append(ScheduledFault(spec))
        self._access = -1
        self._read_ordinals: Dict[int, int] = {}
        self._link_ordinal = 0

    # -- per-access bookkeeping ----------------------------------------

    def begin_access(self, access_index: int) -> None:
        """Reset the per-access ordinal counters."""
        self._access = access_index
        self._read_ordinals = {}
        self._link_ordinal = 0

    def next_read_ordinal(self, site: int) -> int:
        """Count one bucket-store read on ``site``; returns its ordinal."""
        ordinal = self._read_ordinals.get(site, 0)
        self._read_ordinals[site] = ordinal + 1
        return ordinal

    # -- matchers ------------------------------------------------------

    def match_integrity(self, site: int,
                        ordinal: int) -> Optional[ScheduledFault]:
        """The pending integrity fault for this (access, site, read)."""
        for scheduled in self._integrity.get(self._access, ()):
            if scheduled.applied or scheduled.vacuous:
                continue
            if scheduled.spec.site == site and \
                    scheduled.spec.read_ordinal == ordinal:
                return scheduled
        return None

    def take_integrity_specs(self, site: int) -> List[ScheduledFault]:
        """Every pending integrity fault for this (access, site).

        The Split driver arms faults per access rather than per read (a
        Split metadata fetch is one merged operation), so it consumes
        specs without ordinal matching.
        """
        return [scheduled
                for scheduled in self._integrity.get(self._access, ())
                if not scheduled.applied and not scheduled.vacuous
                and scheduled.spec.site == site]

    def match_link(self) -> Optional[ScheduledFault]:
        """The pending link fault for the next link message, if any.

        Link faults match by message ordinal only — never by target
        SDIMM, which is a function of the secret leaf.
        """
        ordinal = self._link_ordinal
        self._link_ordinal += 1
        for scheduled in self._link.get(self._access, ()):
            if scheduled.applied or scheduled.vacuous:
                continue
            if scheduled.spec.op_ordinal == ordinal:
                return scheduled
        return None

    def take_stall_specs(self) -> List[ScheduledFault]:
        """Buffer-stall specs scheduled for the current access."""
        return [scheduled
                for scheduled in self._stalls.get(self._access, ())
                if not scheduled.applied and not scheduled.vacuous]

    # -- outcome reporting ---------------------------------------------

    def _emit(self, name: str, scheduled: ScheduledFault, **args) -> None:
        if not self._tracer.enabled:
            return
        if self._clock is not None:
            timestamp = self._clock.now
        else:
            timestamp = self._seq
        self._seq += 1
        self._tracer.instant(name, CATEGORY_FAULT, "faults", timestamp,
                             kind=scheduled.spec.kind,
                             access=scheduled.spec.access_index, **args)

    def note_applied(self, scheduled: ScheduledFault, site: int = 0,
                     index: int = 0) -> None:
        scheduled.applied = True
        self._emit("fault-armed", scheduled, site=site, index=index)

    def note_link_applied(self, scheduled: ScheduledFault) -> None:
        scheduled.applied = True
        self._emit("link-fault", scheduled)

    def note_vacuous(self, scheduled: ScheduledFault,
                     reason: str = "") -> None:
        scheduled.vacuous = True
        scheduled.note = reason
        self._emit("fault-vacuous", scheduled, reason=reason)

    def note_detected(self, scheduled: ScheduledFault) -> None:
        if scheduled.detected:
            return
        scheduled.detected = True
        self._emit("fault-detected", scheduled)

    def note_missed(self, scheduled: ScheduledFault) -> None:
        scheduled.missed = True
        self._emit("fault-missed", scheduled)

    # -- scoreboard ----------------------------------------------------

    def finalize(self) -> None:
        """Mark every never-triggered spec vacuous (ordinal never came)."""
        for table in (self._integrity, self._link, self._stalls):
            for entries in table.values():
                for scheduled in entries:
                    if not scheduled.applied and not scheduled.vacuous:
                        self.note_vacuous(scheduled, "schedule point "
                                          "never reached")

    def _flat(self, table: Dict[int, List[ScheduledFault]]
              ) -> List[ScheduledFault]:
        return [scheduled for entries in table.values()
                for scheduled in entries]

    def summary(self) -> Dict[str, object]:
        """The detection scoreboard embedded in every campaign report."""
        integrity = self._flat(self._integrity)
        link = self._flat(self._link)
        stalls = self._flat(self._stalls)
        applied = sum(s.applied for s in integrity)
        detected = sum(s.detected for s in integrity)
        return {
            "integrity": {
                "scheduled": len(integrity),
                "applied": applied,
                "vacuous": sum(s.vacuous for s in integrity),
                "detected": detected,
                "missed": sum(s.missed for s in integrity),
                "rate": (detected / applied) if applied else 1.0,
            },
            "link": {
                "scheduled": len(link),
                "applied": sum(s.applied for s in link),
                "vacuous": sum(s.vacuous for s in link),
            },
            "stalls": {
                "scheduled": len(stalls),
                "applied": sum(s.applied for s in stalls),
                "vacuous": sum(s.vacuous for s in stalls),
            },
        }


class FaultyStore:
    """Bucket-store proxy injecting scheduled integrity faults on reads.

    Wraps an :class:`~repro.oram.integrity.EncryptedBucketStore` or
    :class:`~repro.oram.merkle.MerkleBucketStore` (anything exposing the
    ``snapshot``/``tamper``/``replay`` hooks; stores without them make
    every scheduled fault vacuous).  Sits *inside* the recovery layer's
    :class:`~repro.faults.recovery.RetryingStore`, so a retry re-reads
    through this proxy — the consumed spec does not re-arm, and a healed
    transient verifies cleanly the second time.
    """

    def __init__(self, injector: FaultInjector, site: int, inner):
        self._injector = injector
        self._site = site
        self._inner = inner
        self._hooks = hasattr(inner, "snapshot") and \
            hasattr(inner, "tamper") and hasattr(inner, "replay")
        # Merkle snapshots are (cell, hash-path) pairs and replay takes
        # them apart; the PMMAC store round-trips a single cell.
        self._merkle = hasattr(inner, "_hashes")
        self._history: Dict[int, object] = {}   # index -> previous cell
        self._stuck: Dict[int, ScheduledFault] = {}

    # -- hook adapters -------------------------------------------------

    def _restore(self, index: int, saved) -> None:
        if self._merkle:
            cell, hashes = saved
            self._inner.replay(index, cell, dict(hashes))
        else:
            self._inner.replay(index, saved)

    def _flip(self, index: int, saved) -> None:
        if self._merkle:
            ciphertext = saved[0][1]
        else:
            ciphertext = saved[0]
        self._inner.tamper(index,
                           bytes([ciphertext[0] ^ 0x01]) + ciphertext[1:])

    def _arm(self, index: int, scheduled: ScheduledFault
             ) -> Tuple[Optional[ScheduledFault], object]:
        if not self._hooks:
            self._injector.note_vacuous(scheduled, "store has no "
                                        "adversarial hooks")
            return None, None
        saved = self._inner.snapshot(index)
        kind = scheduled.spec.kind
        if kind == FAULT_REPLAY:
            stale = self._history.get(index)
            if stale is None or stale == saved:
                self._injector.note_vacuous(scheduled, "no stale version "
                                            "to replay")
                return None, None
            self._restore(index, stale)
        elif saved is None:
            self._injector.note_vacuous(scheduled, "cell never written")
            return None, None
        elif kind == FAULT_BIT_FLIP:
            self._flip(index, saved)
        elif kind == FAULT_STUCK_CELL:
            self._stuck[index] = scheduled
            self._flip(index, saved)
        else:  # pragma: no cover - plan validation precludes this
            self._injector.note_vacuous(scheduled, "not an integrity kind")
            return None, None
        self._injector.note_applied(scheduled, site=self._site, index=index)
        return scheduled, saved

    # -- store contract ------------------------------------------------

    def read(self, index: int):
        ordinal = self._injector.next_read_ordinal(self._site)
        scheduled = self._injector.match_integrity(self._site, ordinal)
        armed, saved = (None, None)
        if scheduled is not None:
            armed, saved = self._arm(index, scheduled)
        try:
            bucket = self._inner.read(index)
        except IntegrityError:
            if armed is not None:
                self._injector.note_detected(armed)
                if armed.spec.kind != FAULT_STUCK_CELL and \
                        saved is not None:
                    # transient: the adversary's window closed — the true
                    # cell is back for the recovery layer's re-read
                    self._restore(index, saved)
            elif index in self._stuck:
                self._injector.note_detected(self._stuck[index])
            raise
        if armed is not None:
            self._injector.note_missed(armed)
        return bucket

    def write(self, index: int, bucket) -> None:
        if self._hooks:
            current = self._inner.snapshot(index)
            if current is not None:
                self._history[index] = current
        self._inner.write(index, bucket)
        if self._hooks and index in self._stuck:
            fresh = self._inner.snapshot(index)
            if fresh is not None:
                # a stuck bank corrupts every write that lands in it
                self._flip(index, fresh)

    def __getattr__(self, name: str):
        return getattr(self._inner, name)


class SplitFaultDriver:
    """Arms scheduled integrity faults against Split-protocol buffers.

    A Split access always reads the root bucket's metadata, so faults
    target bucket 0 — detection is guaranteed whenever the site is
    accessed at all.  ``buffers_by_site`` maps a site ID (the group for
    INDEP-SPLIT, 0 for plain Split) to that site's way buffers;
    :meth:`heal_for` builds the callback a
    :class:`~repro.faults.recovery.SplitResilienceHandle` invokes on
    every verification failure.
    """

    TARGET_BUCKET = 0

    def __init__(self, injector: FaultInjector, buffers_by_site: Dict):
        self._injector = injector
        self._buffers = dict(buffers_by_site)
        self._history: Dict[int, List[object]] = {}
        # site -> [(scheduled, pre-fault snapshot), ...] for this access;
        # entry 0's snapshot is the fully clean state
        self._saved: Dict[int, List[Tuple[ScheduledFault, List[object]]]] = {}
        self._stuck: Dict[int, ScheduledFault] = {}

    def _snapshot(self, buffers) -> List[object]:
        return [buffer.snapshot_bucket(self.TARGET_BUCKET)
                for buffer in buffers]

    def _tamper(self, buffers) -> bool:
        for buffer in buffers:
            if buffer.snapshot_bucket(self.TARGET_BUCKET) is not None:
                buffer.tamper_bucket(self.TARGET_BUCKET)
                return True
        return False

    def arm(self, access_index: int, active_sites=None) -> None:
        """Apply this access's scheduled faults (call after begin_access).

        ``active_sites`` names the sites whose buffers this access will
        actually read (the owning group, for INDEP-SPLIT); arming a site
        the access never touches would leave latent corruption no
        verifier gets the chance to catch, so those specs stay pending
        and end up vacuous at :meth:`FaultInjector.finalize`.
        """
        for site, buffers in sorted(self._buffers.items()):
            if active_sites is not None and site not in active_sites:
                continue
            clean = self._snapshot(buffers)
            stuck = self._stuck.get(site)
            if stuck is not None:
                # persistent: re-corrupt whatever the last write-back stored
                self._tamper(buffers)
            pending = self._saved.setdefault(site, [])
            for scheduled in self._injector.take_integrity_specs(site):
                snap = self._snapshot(buffers)
                kind = scheduled.spec.kind
                if kind == FAULT_REPLAY:
                    stale = self._history.get(site)
                    if stale is None or stale == snap:
                        self._injector.note_vacuous(
                            scheduled, "no stale version to replay")
                        continue
                    for buffer, cell in zip(buffers, stale):
                        buffer.restore_bucket(self.TARGET_BUCKET, cell)
                elif all(cell is None for cell in snap):
                    self._injector.note_vacuous(scheduled,
                                                "cell never written")
                    continue
                elif kind == FAULT_BIT_FLIP:
                    self._tamper(buffers)
                elif kind == FAULT_STUCK_CELL:
                    self._stuck[site] = scheduled
                    self._tamper(buffers)
                else:  # pragma: no cover - plan validation precludes this
                    self._injector.note_vacuous(scheduled,
                                                "not an integrity kind")
                    continue
                pending.append((scheduled, snap))
                self._injector.note_applied(scheduled, site=site,
                                            index=self.TARGET_BUCKET)
            # the pre-tamper state of this access is the next access's
            # stale-replay material (write-back will bump its counter)
            self._history[site] = clean

    def heal_for(self, site: int):
        """Failure callback for one site's resilience handle.

        Invoked on every verification failure: attributes the detection
        to each fault armed on the site, then restores the clean state so
        the retry succeeds — unless a persistent stuck cell is involved,
        which never heals and rides to retry exhaustion.
        """
        def _heal(bucket: int) -> None:
            entries = self._saved.get(site, [])
            for scheduled, _ in entries:
                self._injector.note_detected(scheduled)
            stuck = self._stuck.get(site)
            if stuck is not None:
                self._injector.note_detected(stuck)
                return
            if entries:
                for buffer, cell in zip(self._buffers[site],
                                        entries[0][1]):
                    buffer.restore_bucket(self.TARGET_BUCKET, cell)
                self._saved[site] = []
        return _heal

    def finalize(self) -> None:
        """Mark armed-but-never-caught faults missed (end of campaign)."""
        for entries in self._saved.values():
            for scheduled, _ in entries:
                if not scheduled.detected:
                    self._injector.note_missed(scheduled)
