"""Recovery machinery: retry budgets, backoff, quarantine, failure records.

Detection (PMMAC / Merkle / the Split counter chain) says *something is
wrong*; this module decides what happens next.  The policy mirrors what a
real memory controller would do:

* a verified-failed bucket read is re-fetched up to a retry budget —
  transient corruption (a disturbed line, a torn transfer) heals on the
  re-read;
* each retry backs off exponentially with deterministic jitter drawn
  from a named :class:`~repro.utils.rng.DeterministicRng` stream, so a
  faulted run still replays byte-identically;
* an exhausted budget raises :class:`RetryExhaustedError`, which the
  campaign layer converts into a quarantine (Independent / INDEP-SPLIT)
  or a structured terminal record (Split) — never a traceback.

Everything observable stays shape-identical: a retry re-issues the same
reads and link messages any fresh access would, which is the
retry-indistinguishability argument in docs/faults.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.oram.integrity import IntegrityError
from repro.utils.rng import DeterministicRng


class RetryExhaustedError(Exception):
    """A verified-failed read survived every retry in the budget.

    ``site`` names the SDIMM / way / group whose store kept failing;
    ``index`` the bucket; ``attempts`` how many re-reads were spent.
    """

    def __init__(self, message: str, site: int = 0,
                 index: Optional[int] = None, attempts: int = 0,
                 kind: str = "mac"):
        super().__init__(message)
        self.site = site
        self.index = index
        self.attempts = attempts
        self.kind = kind


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with deterministic jitter.

    ``backoff_steps(attempt, rng)`` returns the logical steps to wait
    before retry ``attempt`` (1-based): ``base * factor**(attempt-1)``
    capped at ``cap``, plus a jitter draw in ``[0, jitter)`` from the
    caller's seeded stream.
    """

    max_retries: int = 3
    backoff_base: int = 2
    backoff_factor: int = 2
    backoff_cap: int = 16
    jitter: int = 2

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.backoff_base < 1 or self.backoff_factor < 1:
            raise ValueError("backoff base/factor must be >= 1")

    def backoff_steps(self, attempt: int, rng: DeterministicRng) -> int:
        if attempt < 1:
            raise ValueError("attempts are 1-based")
        steps = min(self.backoff_cap,
                    self.backoff_base * self.backoff_factor ** (attempt - 1))
        if self.jitter > 0:
            steps += rng.randrange(self.jitter)
        return steps

    def to_dict(self) -> Dict[str, int]:
        return {"max_retries": self.max_retries,
                "backoff_base": self.backoff_base,
                "backoff_factor": self.backoff_factor,
                "backoff_cap": self.backoff_cap,
                "jitter": self.jitter}


@dataclass
class ResilienceStats:
    """Shared accounting for one faulted run.

    Wired into :class:`~repro.obs.metrics.MetricsRegistry` via
    :meth:`fold_into`; the campaign report embeds :meth:`as_dict`.
    """

    detections: int = 0          # failed verifications observed (raw)
    retries: int = 0
    recovered_reads: int = 0     # reads that succeeded after >=1 retry
    exhausted: int = 0
    backoff_steps: int = 0
    link_drops: int = 0
    link_duplicates: int = 0
    link_delays: int = 0
    link_delay_steps: int = 0
    link_retransmissions: int = 0
    buffer_stalls: int = 0
    quarantines: int = 0
    #: structured failure records (exhaustions, terminal events)
    failures: List[Dict[str, object]] = field(default_factory=list)
    quarantined_sites: Set[int] = field(default_factory=set)

    # -- events --------------------------------------------------------

    def note_detection(self, site: int, index: Optional[int],
                       error: BaseException) -> None:
        self.detections += 1

    def note_retry(self, steps: int) -> None:
        self.retries += 1
        self.backoff_steps += steps

    def note_recovered(self, attempts: int) -> None:
        self.recovered_reads += 1

    def note_exhausted(self, site: int, index: Optional[int],
                       attempts: int, error: BaseException) -> None:
        self.exhausted += 1
        self.failures.append({
            "kind": "retry-exhausted",
            "site": site,
            "index": index,
            "attempts": attempts,
            "detail": str(error),
        })

    def note_quarantine(self, site: int) -> None:
        if site not in self.quarantined_sites:
            self.quarantined_sites.add(site)
            self.quarantines += 1

    def note_terminal(self, record: Dict[str, object]) -> None:
        record = dict(record)
        record["terminal"] = True
        self.failures.append(record)

    # -- export --------------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        return {
            "detections": self.detections,
            "retries": self.retries,
            "recovered_reads": self.recovered_reads,
            "exhausted": self.exhausted,
            "backoff_steps": self.backoff_steps,
            "link_drops": self.link_drops,
            "link_duplicates": self.link_duplicates,
            "link_delays": self.link_delays,
            "link_delay_steps": self.link_delay_steps,
            "link_retransmissions": self.link_retransmissions,
            "buffer_stalls": self.buffer_stalls,
            "quarantines": self.quarantines,
            "quarantined_sites": sorted(self.quarantined_sites),
            "failures": [dict(record) for record in self.failures],
        }

    def fold_into(self, metrics: MetricsRegistry) -> None:
        """Export the counters under the ``faults/`` namespace."""
        metrics.counter("faults/detections").inc(self.detections)
        metrics.counter("faults/retries").inc(self.retries)
        metrics.counter("faults/recovered_reads").inc(self.recovered_reads)
        metrics.counter("faults/exhausted").inc(self.exhausted)
        metrics.counter("faults/backoff_steps").inc(self.backoff_steps)
        metrics.counter("faults/link_drops").inc(self.link_drops)
        metrics.counter("faults/link_duplicates").inc(self.link_duplicates)
        metrics.counter("faults/link_delays").inc(self.link_delays)
        metrics.counter("faults/link_retransmissions").inc(
            self.link_retransmissions)
        metrics.counter("faults/buffer_stalls").inc(self.buffer_stalls)
        metrics.counter("faults/quarantines").inc(self.quarantines)


class RetryingStore:
    """Bucket-store proxy that re-reads on verification failure.

    Wraps the (possibly fault-injecting) store of one Independent SDIMM.
    A read that raises :class:`IntegrityError` is retried up to the
    policy's budget with backoff; success after retries counts as a
    recovery, exhaustion raises :class:`RetryExhaustedError` for the
    campaign layer to quarantine on.  Writes and every other attribute
    pass straight through.
    """

    def __init__(self, inner, site: int, policy: RetryPolicy,
                 stats: ResilienceStats, rng: DeterministicRng):
        self._inner = inner
        self._site = site
        self._policy = policy
        self._stats = stats
        self._rng = rng

    def read(self, index: int):
        attempt = 0
        while True:
            try:
                bucket = self._inner.read(index)
            except IntegrityError as error:
                self._stats.note_detection(self._site, index, error)
                attempt += 1
                if attempt > self._policy.max_retries:
                    self._stats.note_exhausted(self._site, index,
                                               attempt - 1, error)
                    raise RetryExhaustedError(
                        f"bucket {index} on site {self._site} still fails "
                        f"verification after {attempt - 1} retries",
                        site=self._site, index=index, attempts=attempt - 1,
                        kind=getattr(error, "kind", "mac")) from error
                self._stats.note_retry(
                    self._policy.backoff_steps(attempt, self._rng))
                continue
            if attempt:
                self._stats.note_recovered(attempt)
            return bucket

    def write(self, index: int, bucket) -> None:
        self._inner.write(index, bucket)

    def __getattr__(self, name: str):
        return getattr(self._inner, name)


class SplitResilienceHandle:
    """Retry policy for a Split protocol's metadata merges.

    Installed via ``SplitProtocol.attach_resilience``; consulted from
    ``_read_bucket_metadata`` with the 1-based attempt count.  Returns
    ``True`` to retry (after recording backoff and healing any armed
    transient fault) and raises :class:`RetryExhaustedError` once the
    budget is spent.
    """

    def __init__(self, policy: RetryPolicy, stats: ResilienceStats,
                 rng: DeterministicRng, site: int = 0, heal=None):
        self._policy = policy
        self._stats = stats
        self._rng = rng
        self._site = site
        self._heal = heal

    def on_integrity_failure(self, label: str, bucket: int,
                             error: BaseException, attempt: int) -> bool:
        self._stats.note_detection(self._site, bucket, error)
        if self._heal is not None:
            # runs on *every* failure so the fault driver can attribute
            # the detection; transients are restored, stuck cells are not
            self._heal(bucket)
        if attempt > self._policy.max_retries:
            self._stats.note_exhausted(self._site, bucket, attempt - 1,
                                       error)
            raise RetryExhaustedError(
                f"{label} bucket {bucket} on site {self._site} still fails "
                f"verification after {attempt - 1} retries",
                site=self._site, index=bucket, attempts=attempt - 1,
                kind=getattr(error, "kind", "mac")) from error
        self._stats.note_retry(self._policy.backoff_steps(attempt,
                                                          self._rng))
        return True


class ResilientLink:
    """LinkRecorder proxy applying scheduled link faults.

    Dropped messages are retransmitted (the wire shows the lost attempt
    *and* the retransmission — two identically shaped events, exactly
    what a timeout-driven resend looks like); duplicates are delivered
    twice and discarded by the receiver; delays tick the logical link
    clock forward.  None of these change message *shapes*, which is what
    the faulted audit asserts.
    """

    def __init__(self, link, injector, stats: ResilienceStats,
                 policy: RetryPolicy, rng: DeterministicRng):
        self._link = link
        self._injector = injector
        self._stats = stats
        self._policy = policy
        self._rng = rng

    # -- fault application (shared by both directions) -----------------

    def _apply(self, emit, command, sdimm: int, payload_bytes: int) -> None:
        spec = self._injector.match_link()
        if spec is None:
            emit(command, sdimm, payload_bytes)
            return
        from repro.faults.plan import (FAULT_LINK_DELAY, FAULT_LINK_DROP,
                                       FAULT_LINK_DUPLICATE)
        if spec.kind == FAULT_LINK_DROP:
            # the lost attempt occupied the wire; the timeout backs off,
            # then the sender re-issues the identical message
            emit(command, sdimm, payload_bytes)
            self._stats.link_drops += 1
            self._stats.note_retry(self._policy.backoff_steps(1, self._rng))
            emit(command, sdimm, payload_bytes)
            self._stats.link_retransmissions += 1
        elif spec.kind == FAULT_LINK_DUPLICATE:
            emit(command, sdimm, payload_bytes)
            emit(command, sdimm, payload_bytes)
            self._stats.link_duplicates += 1
            self._stats.link_retransmissions += 1
        elif spec.kind == FAULT_LINK_DELAY:
            for _ in range(max(1, spec.delay_steps)):
                self._link.clock.tick()
            self._stats.link_delays += 1
            self._stats.link_delay_steps += max(1, spec.delay_steps)
            emit(command, sdimm, payload_bytes)
        else:  # pragma: no cover - plan validation precludes this
            emit(command, sdimm, payload_bytes)
        self._injector.note_link_applied(spec)

    def up(self, command, sdimm: int, payload_bytes: int) -> None:
        self._apply(self._link.up, command, sdimm, payload_bytes)

    def down(self, command, sdimm: int, payload_bytes: int) -> None:
        self._apply(self._link.down, command, sdimm, payload_bytes)

    def __getattr__(self, name: str):
        return getattr(self._link, name)

    def __len__(self) -> int:
        return len(self._link)
