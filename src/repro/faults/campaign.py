"""Seeded end-to-end fault campaigns over the protocol layer.

A campaign drives one protocol (Independent, Split, or INDEP-SPLIT)
through a deterministic workload while a :class:`FaultPlan` perturbs it,
and reports a detection/recovery scoreboard instead of crashing:

* every injected integrity fault must be *detected* by a verifier
  (PMMAC, Merkle, or the Split counter chain) — the acceptance gate;
* transient faults recover through the retry layer; persistent ones
  exhaust their budget and quarantine the site (Independent designs
  degrade; plain Split has no redundancy and records a terminal event);
* the whole outcome — spec, plan, scoreboard, counters, failures —
  serializes to one canonical JSON payload, so two runs of the same seed
  diff byte-for-byte (the CI smoke job does exactly that).

Campaigns are sweepable: :func:`run_campaign_sweep` mirrors the
:mod:`repro.parallel.sweep` engine (submission-index merge, cache-first,
serial fallback) with entries keyed by spec + plan digest + code
fingerprint through :meth:`RunCache.get_json`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.indep_split import IndepSplitProtocol
from repro.core.independent import IndependentProtocol
from repro.core.split import SplitProtocol
from repro.core.transfer_queue import TransferQueueOverflow
from repro.faults.injector import FaultInjector, SplitFaultDriver, FaultyStore
from repro.faults.plan import FaultPlan
from repro.faults.recovery import (ResilienceStats, ResilientLink,
                                   RetryExhaustedError, RetryPolicy,
                                   RetryingStore, SplitResilienceHandle)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.oram.path_oram import Op, StashOverflowError
from repro.parallel.cache import RunCache
from repro.parallel.fingerprint import code_fingerprint
from repro.parallel.serialize import SCHEMA_VERSION
from repro.sim.stats import failure_record_from_exception
from repro.utils.rng import DeterministicRng

_DESIGNS = ("independent", "split", "indep-split")

#: Key material for campaign stores; campaigns always encrypt (a fault
#: layer over unauthenticated storage would have nothing to detect).
_CAMPAIGN_KEY = b"fault-campaign-key"


@dataclass(frozen=True)
class CampaignSpec:
    """One campaign request (picklable, canonical, cache-keyable)."""

    design: str = "independent"
    accesses: int = 64
    levels: int = 5
    sites: int = 2
    seed: int = 2018
    bit_flips: int = 0
    replays: int = 0
    stuck_cells: int = 0
    link_drops: int = 0
    link_duplicates: int = 0
    link_delays: int = 0
    buffer_stalls: int = 0
    max_retries: int = 3
    blocks_per_bucket: int = 4
    block_bytes: int = 64
    stash_capacity: int = 200

    def __post_init__(self) -> None:
        if self.design not in _DESIGNS:
            raise ValueError(f"unknown design {self.design!r}; "
                             f"expected one of {_DESIGNS}")
        if self.accesses < 1:
            raise ValueError("a campaign needs at least one access")
        if self.sites < 1:
            raise ValueError("a campaign needs at least one site")

    @property
    def plan_sites(self) -> int:
        """How many fault sites the plan addresses.

        Plain Split is one logical site (bucket slices span every way);
        the Independent designs expose one site per SDIMM / group.
        """
        return 1 if self.design == "split" else self.sites

    def build_plan(self) -> FaultPlan:
        return FaultPlan.generate(
            self.seed, self.accesses, self.plan_sites,
            bit_flips=self.bit_flips, replays=self.replays,
            stuck_cells=self.stuck_cells, link_drops=self.link_drops,
            link_duplicates=self.link_duplicates,
            link_delays=self.link_delays,
            buffer_stalls=self.buffer_stalls)

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "CampaignSpec":
        return cls(**{key: payload[key]
                      for key in cls.__dataclass_fields__  # noqa: SLF001
                      if key in payload})


@dataclass
class CampaignOutcome:
    """Everything one campaign produced, JSON-canonical."""

    spec: CampaignSpec
    plan: FaultPlan
    detection: Dict[str, object]
    resilience: Dict[str, object]
    metrics: Dict[str, object]
    quarantined: List[int]
    degraded_accesses: int
    lost_appends: int
    accesses_completed: int
    link_events: int
    terminal: Optional[Dict[str, object]] = None

    @property
    def completed(self) -> bool:
        return self.terminal is None

    @property
    def all_detected(self) -> bool:
        """Every applied integrity fault tripped a verifier."""
        integrity = self.detection["integrity"]
        return integrity["missed"] == 0 and integrity["rate"] == 1.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": SCHEMA_VERSION,
            "spec": self.spec.to_dict(),
            "plan": self.plan.to_dict(),
            "plan_digest": self.plan.digest(),
            "detection": self.detection,
            "resilience": self.resilience,
            "metrics": self.metrics,
            "quarantined": list(self.quarantined),
            "degraded_accesses": self.degraded_accesses,
            "lost_appends": self.lost_appends,
            "accesses_requested": self.spec.accesses,
            "accesses_completed": self.accesses_completed,
            "link_events": self.link_events,
            "completed": self.completed,
            "all_detected": self.all_detected,
            "terminal": self.terminal,
        }

    def canonical_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))


# ----------------------------------------------------------------------
# Protocol wiring
# ----------------------------------------------------------------------

def _build_protocol(spec: CampaignSpec, tracer: Tracer):
    if spec.design == "independent":
        return IndependentProtocol(
            global_levels=spec.levels, sdimm_count=spec.sites,
            blocks_per_bucket=spec.blocks_per_bucket,
            block_bytes=spec.block_bytes,
            stash_capacity=spec.stash_capacity,
            seed=spec.seed, record_link=True,
            encryption_key=_CAMPAIGN_KEY, tracer=tracer)
    if spec.design == "split":
        return SplitProtocol(
            levels=spec.levels, ways=2,
            blocks_per_bucket=spec.blocks_per_bucket,
            block_bytes=spec.block_bytes,
            stash_capacity=spec.stash_capacity,
            seed=spec.seed, key=_CAMPAIGN_KEY, record_link=True,
            tracer=tracer)
    return IndepSplitProtocol(
        global_levels=spec.levels, groups=spec.sites, ways=2,
        blocks_per_bucket=spec.blocks_per_bucket,
        block_bytes=spec.block_bytes, stash_capacity=spec.stash_capacity,
        seed=spec.seed, key=_CAMPAIGN_KEY, record_link=True,
        tracer=tracer)


def _wire_faults(spec: CampaignSpec, protocol, injector: FaultInjector,
                 policy: RetryPolicy, stats: ResilienceStats
                 ) -> Optional[SplitFaultDriver]:
    """Install the fault/retry proxies; returns the Split driver if any."""
    if spec.design == "independent":
        protocol.wrap_stores(lambda site, store: RetryingStore(
            FaultyStore(injector, site, store), site, policy, stats,
            DeterministicRng(spec.seed, f"faults/retry/{site}")))
        return None
    if spec.design == "split":
        driver = SplitFaultDriver(injector, {0: protocol.buffers})
        protocol.attach_resilience(SplitResilienceHandle(
            policy, stats, DeterministicRng(spec.seed, "faults/retry/0"),
            site=0, heal=driver.heal_for(0)))
        return driver
    driver = SplitFaultDriver(
        injector, {gid: group.split.buffers
                   for gid, group in enumerate(protocol.groups)})
    for gid, group in enumerate(protocol.groups):
        group.split.attach_resilience(SplitResilienceHandle(
            policy, stats, DeterministicRng(spec.seed,
                                            f"faults/retry/{gid}"),
            site=gid, heal=driver.heal_for(gid)))
    return driver


# ----------------------------------------------------------------------
# The campaign driver
# ----------------------------------------------------------------------

def _active_sites(spec: CampaignSpec, protocol, address: int):
    """Which sites the next access will read — arming targets only these.

    Plain Split always reads its one site.  For INDEP-SPLIT the owning
    group is read (harness-side peek at the posmap: the fault driver is
    the experimenter, not the adversary); a quarantined owner is served
    by the degraded path, which reads nothing.
    """
    if spec.design == "split":
        return {0}
    owner = protocol.groups[0].owner_of(protocol.posmap.lookup(address))
    if owner in protocol.quarantined:
        return set()
    return {owner}


def build_faulted_protocol(spec: CampaignSpec, plan: FaultPlan,
                           tracer: Tracer = NULL_TRACER):
    """One fully wired faulted protocol: (protocol, injector, driver, stats).

    Shared by :func:`run_campaign` and the faulted bus-trace audit in
    :mod:`repro.obs.audit`, so both exercise the identical machinery.
    """
    policy = RetryPolicy(max_retries=spec.max_retries)
    stats = ResilienceStats()
    protocol = _build_protocol(spec, tracer)
    # Shares the protocol's logical clock so fault-trace instants line up
    # with the link timeline.
    injector = FaultInjector(plan, tracer=tracer, clock=protocol.clock)
    driver = _wire_faults(spec, protocol, injector, policy, stats)
    link_rng = DeterministicRng(spec.seed, "faults/link")
    protocol.link = ResilientLink(protocol.link, injector, stats, policy,
                                  link_rng)
    return protocol, injector, driver, stats


def run_campaign(spec: CampaignSpec, plan: Optional[FaultPlan] = None,
                 tracer: Tracer = NULL_TRACER) -> CampaignOutcome:
    """Run one seeded faulted campaign; never raises on injected faults.

    A campaign with an all-zero plan is byte-identical (same link events,
    same RNG draws, same stores) to driving the bare protocol — the
    wrappers are pass-through until a spec fires.
    """
    if plan is None:
        plan = spec.build_plan()
    protocol, injector, driver, stats = build_faulted_protocol(
        spec, plan, tracer=tracer)

    workload_rng = DeterministicRng(spec.seed, "faults/workload")
    address_space = max(4, min(64, 1 << (spec.levels - 1)))
    completed = 0
    terminal: Optional[Dict[str, object]] = None

    for access_index in range(spec.accesses):
        injector.begin_access(access_index)
        address = workload_rng.randrange(address_space)
        do_write = workload_rng.randrange(2) == 1
        payload = bytes([workload_rng.randrange(256)]) * spec.block_bytes
        for scheduled in injector.take_stall_specs():
            # a transient buffer stall: the protocol clock (and with it
            # every link-event timestamp) slips, shapes are untouched
            for _ in range(max(1, scheduled.delay_steps)):
                protocol.clock.tick()
            stats.buffer_stalls += 1
            injector.note_applied(scheduled)
        if driver is not None:
            driver.arm(access_index,
                       active_sites=_active_sites(spec, protocol, address))
        try:
            if do_write:
                protocol.write(address, payload)
            else:
                protocol.read(address)
        except RetryExhaustedError as error:
            record = failure_record_from_exception(error)
            if hasattr(protocol, "quarantine"):
                protocol.quarantine(error.site)
                stats.note_quarantine(error.site)
                record["action"] = "quarantined"
                stats.failures.append(record)
                continue
            # plain Split has no redundant site to fail over to
            stats.note_terminal(record)
            terminal = stats.failures[-1]
            break
        except (StashOverflowError, TransferQueueOverflow) as error:
            stats.note_terminal(failure_record_from_exception(error))
            terminal = stats.failures[-1]
            break
        completed += 1

    if driver is not None:
        driver.finalize()
    injector.finalize()
    metrics = MetricsRegistry()
    stats.fold_into(metrics)
    degraded = int(getattr(protocol, "degraded_accesses", 0))
    lost = int(getattr(protocol, "lost_appends", 0))
    metrics.counter("faults/degraded_accesses").inc(degraded)
    metrics.counter("faults/lost_appends").inc(lost)
    quarantined = sorted(getattr(protocol, "quarantined", ()))
    return CampaignOutcome(
        spec=spec, plan=plan,
        detection=injector.summary(),
        resilience=stats.as_dict(),
        metrics=metrics.as_dict(),
        quarantined=[int(site) for site in quarantined],
        degraded_accesses=degraded,
        lost_appends=lost,
        accesses_completed=completed,
        link_events=len(protocol.link),
        terminal=terminal)


# ----------------------------------------------------------------------
# Cache keys and the sweep engine
# ----------------------------------------------------------------------

def campaign_cache_key(spec: CampaignSpec, plan: FaultPlan,
                       fingerprint: Optional[str] = None) -> str:
    """Content hash identifying one campaign request."""
    request = {
        "artifact": "fault-campaign",
        "schema": SCHEMA_VERSION,
        "spec": spec.to_dict(),
        "plan_digest": plan.digest(),
        "fingerprint": fingerprint if fingerprint is not None
        else code_fingerprint(),
    }
    rendered = json.dumps(request, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(rendered.encode()).hexdigest()


def _campaign_worker(task: Tuple[int, Dict[str, object]]
                     ) -> Tuple[int, Dict[str, object]]:
    """Pool worker: re-derives everything from the picklable spec dict."""
    index, payload = task
    spec = CampaignSpec.from_dict(payload)
    return index, run_campaign(spec).to_dict()


def run_campaign_sweep(specs: Sequence[CampaignSpec], jobs: int = 1,
                       cache: Optional[RunCache] = None
                       ) -> List[Dict[str, object]]:
    """Run several campaigns; results come back in submission order.

    Mirrors :func:`repro.parallel.sweep.run_sweep`: cache-first, pool
    with serial fallback, submission-index merge so the output is
    bit-identical regardless of completion order.
    """
    specs = list(specs)
    fingerprint = code_fingerprint() if cache is not None else None
    slots: List[Optional[Dict[str, object]]] = [None] * len(specs)
    pending: List[Tuple[int, Dict[str, object]]] = []
    keys: Dict[int, str] = {}

    for index, spec in enumerate(specs):
        if cache is None:
            pending.append((index, spec.to_dict()))
            continue
        key = campaign_cache_key(spec, spec.build_plan(),
                                 fingerprint=fingerprint)
        keys[index] = key
        cached = cache.get_json(key)
        if cached is not None:
            slots[index] = cached
        else:
            pending.append((index, spec.to_dict()))

    payloads: List[Tuple[int, Dict[str, object]]] = []
    pool = None
    if jobs > 1 and len(pending) > 1:
        from repro.parallel.sweep import _make_pool

        pool = _make_pool(jobs)
    if pool is None:
        for task in pending:
            payloads.append(_campaign_worker(task))
    else:
        with pool:
            # completion order is nondeterministic; the sorted merge
            # below restores submission order
            for index, payload in pool.imap_unordered(_campaign_worker,
                                                      pending):
                payloads.append((index, payload))
            pool.close()
            pool.join()

    for index, payload in sorted(payloads, key=lambda item: item[0]):
        slots[index] = payload
        if cache is not None:
            cache.put_json(keys[index], payload, fingerprint=fingerprint)

    results = [entry for entry in slots if entry is not None]
    assert len(results) == len(specs), "campaign sweep lost a point"
    return results
