"""Deterministic fault injection and the resilience machinery it exercises.

The paper's security argument is a *detection* argument: PMMAC and the
Merkle mirror catch tampering and replay.  This package adds the layer a
deployable system needs on top — what happens *after* detection:

* :mod:`repro.faults.plan` — :class:`FaultPlan`, a seeded, serializable
  schedule of faults (bit-flips, replays, stuck cells, link drops/
  duplicates/delays, buffer stalls) that replays byte-identically;
* :mod:`repro.faults.injector` — applies a plan against live protocol
  state through the existing adversarial hooks (``tamper``/``replay``/
  ``snapshot``), healing transient faults so retries can succeed;
* :mod:`repro.faults.recovery` — retry budgets, bounded exponential
  backoff with deterministic jitter, quarantine on exhaustion, and the
  structured failure records that replace tracebacks;
* :mod:`repro.faults.campaign` — seeded end-to-end campaigns over the
  Independent / Split / INDEP-SPLIT protocols, sweepable through
  :mod:`repro.parallel` with results cached by plan digest.
"""

from repro.faults.campaign import (CampaignOutcome, CampaignSpec,
                                   campaign_cache_key, run_campaign,
                                   run_campaign_sweep)
from repro.faults.injector import FaultInjector, FaultyStore, SplitFaultDriver
from repro.faults.plan import (FAULT_BIT_FLIP, FAULT_BUFFER_STALL,
                               FAULT_LINK_DELAY, FAULT_LINK_DROP,
                               FAULT_LINK_DUPLICATE, FAULT_REPLAY,
                               FAULT_STUCK_CELL, INTEGRITY_KINDS, LINK_KINDS,
                               FaultPlan, FaultSpec)
from repro.faults.recovery import (ResilienceStats, ResilientLink,
                                   RetryExhaustedError, RetryPolicy,
                                   RetryingStore, SplitResilienceHandle)

__all__ = [
    "CampaignOutcome", "CampaignSpec", "campaign_cache_key",
    "run_campaign", "run_campaign_sweep",
    "FaultInjector", "FaultyStore", "SplitFaultDriver",
    "FaultPlan", "FaultSpec",
    "FAULT_BIT_FLIP", "FAULT_REPLAY", "FAULT_STUCK_CELL",
    "FAULT_LINK_DROP", "FAULT_LINK_DUPLICATE", "FAULT_LINK_DELAY",
    "FAULT_BUFFER_STALL", "INTEGRITY_KINDS", "LINK_KINDS",
    "ResilienceStats", "ResilientLink", "RetryExhaustedError",
    "RetryPolicy", "RetryingStore", "SplitResilienceHandle",
]
