"""Fault plans: seeded, serializable schedules of injected faults.

A :class:`FaultPlan` is the unit of reproducibility for the whole fault
layer: two campaigns built from equal plans inject byte-identical fault
sequences, and a plan's :meth:`~FaultPlan.digest` keys the campaign cache.

Faults are scheduled by *position in the access stream*, never by address
or leaf: a spec names the access index it arms at, plus an ordinal within
that access (the n-th bucket read for integrity faults, the n-th link
message for link faults).  Position-based scheduling is what keeps a
faulted run bus-indistinguishable — the same plan applied to two
different address streams perturbs both at exactly the same observable
points (see docs/faults.md).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from typing import Dict, List, Sequence, Tuple

from repro.utils.rng import DeterministicRng

#: Transient ciphertext corruption in one stored bucket (heals on re-read).
FAULT_BIT_FLIP = "bit-flip"
#: A stale cell put back in place of the current one (replay attack /
#: a write that silently failed to land).  Transient: heals on re-read.
FAULT_REPLAY = "replay"
#: A stuck DRAM bank: every write to the cell lands corrupted.  Persistent
#: faults exhaust the retry budget and force a quarantine.
FAULT_STUCK_CELL = "stuck-cell"
#: A CPU<->SDIMM link message that never arrives; the sender times out and
#: retransmits (one extra identically-shaped link event).
FAULT_LINK_DROP = "link-drop"
#: A link message delivered twice; the receiver discards the duplicate.
FAULT_LINK_DUPLICATE = "link-duplicate"
#: A link message held up for ``delay_steps`` logical steps.
FAULT_LINK_DELAY = "link-delay"
#: A transient SDIMM buffer stall occupying the timing-tier bus for
#: ``delay_steps`` cycles (consumed by the stall schedule in obs.audit).
FAULT_BUFFER_STALL = "buffer-stall"

#: Kinds that corrupt stored state and must trip a verifier.
INTEGRITY_KINDS = frozenset({FAULT_BIT_FLIP, FAULT_REPLAY, FAULT_STUCK_CELL})
#: Kinds that perturb the CPU<->SDIMM link.
LINK_KINDS = frozenset({FAULT_LINK_DROP, FAULT_LINK_DUPLICATE,
                        FAULT_LINK_DELAY})

_ALL_KINDS = INTEGRITY_KINDS | LINK_KINDS | {FAULT_BUFFER_STALL}


@dataclass(frozen=True, order=True)
class FaultSpec:
    """One scheduled fault.

    ``access_index`` is the protocol access the fault arms at; ``site``
    targets an SDIMM / split way / group for integrity faults (link
    faults match by ordinal only — matching by target would make fault
    application depend on the secret address stream).  ``read_ordinal``
    counts bucket-store reads within the access, ``op_ordinal`` counts
    link messages.  A spec whose ordinal never occurs (short path, cell
    never written) is *vacuous* — recorded, not applied.
    """

    access_index: int
    kind: str
    site: int = 0
    read_ordinal: int = 0
    op_ordinal: int = 0
    persistent: bool = False
    delay_steps: int = 0

    def __post_init__(self) -> None:
        if self.kind not in _ALL_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.access_index < 0:
            raise ValueError("access_index must be non-negative")

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FaultSpec":
        return cls(access_index=int(payload["access_index"]),
                   kind=str(payload["kind"]),
                   site=int(payload.get("site", 0)),
                   read_ordinal=int(payload.get("read_ordinal", 0)),
                   op_ordinal=int(payload.get("op_ordinal", 0)),
                   persistent=bool(payload.get("persistent", False)),
                   delay_steps=int(payload.get("delay_steps", 0)))


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, immutable schedule of :class:`FaultSpec` entries."""

    seed: int
    specs: Tuple[FaultSpec, ...]

    @property
    def integrity_specs(self) -> Tuple[FaultSpec, ...]:
        return tuple(spec for spec in self.specs
                     if spec.kind in INTEGRITY_KINDS)

    @property
    def link_specs(self) -> Tuple[FaultSpec, ...]:
        return tuple(spec for spec in self.specs if spec.kind in LINK_KINDS)

    @property
    def stall_specs(self) -> Tuple[FaultSpec, ...]:
        return tuple(spec for spec in self.specs
                     if spec.kind == FAULT_BUFFER_STALL)

    def to_dict(self) -> Dict[str, object]:
        return {"seed": self.seed,
                "specs": [spec.to_dict() for spec in self.specs]}

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FaultPlan":
        return cls(seed=int(payload["seed"]),
                   specs=tuple(FaultSpec.from_dict(entry)
                               for entry in payload["specs"]))

    def canonical_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    def digest(self) -> str:
        """Content hash of the plan — part of every campaign cache key."""
        return hashlib.sha256(self.canonical_json().encode()).hexdigest()

    @classmethod
    def generate(cls, seed: int, accesses: int, sites: int,
                 bit_flips: int = 0, replays: int = 0,
                 stuck_cells: int = 0, link_drops: int = 0,
                 link_duplicates: int = 0, link_delays: int = 0,
                 buffer_stalls: int = 0,
                 max_read_ordinal: int = 4,
                 max_op_ordinal: int = 6,
                 max_delay_steps: int = 8) -> "FaultPlan":
        """Draw a schedule from a fresh named stream of ``seed``.

        The stream is independent of every simulator stream (distinct
        name), so generating a plan never perturbs protocol randomness.
        Specs come out sorted, giving a canonical order regardless of the
        draw sequence.
        """
        if accesses < 1:
            raise ValueError("a plan needs at least one access")
        if sites < 1:
            raise ValueError("a plan needs at least one site")
        rng = DeterministicRng(seed, "fault-plan")
        specs: List[FaultSpec] = []

        def draw(kind: str, count: int, persistent: bool = False,
                 delayed: bool = False) -> None:
            for _ in range(count):
                specs.append(FaultSpec(
                    access_index=rng.randrange(accesses),
                    kind=kind,
                    site=rng.randrange(sites),
                    read_ordinal=rng.randrange(max(1, max_read_ordinal)),
                    op_ordinal=rng.randrange(max(1, max_op_ordinal)),
                    persistent=persistent,
                    delay_steps=(rng.randint(1, max_delay_steps)
                                 if delayed else 0)))

        draw(FAULT_BIT_FLIP, bit_flips)
        draw(FAULT_REPLAY, replays)
        draw(FAULT_STUCK_CELL, stuck_cells, persistent=True)
        draw(FAULT_LINK_DROP, link_drops)
        draw(FAULT_LINK_DUPLICATE, link_duplicates)
        draw(FAULT_LINK_DELAY, link_delays, delayed=True)
        draw(FAULT_BUFFER_STALL, buffer_stalls, delayed=True)
        return cls(seed=seed, specs=tuple(sorted(specs)))


def merge_plans(plans: Sequence[FaultPlan]) -> FaultPlan:
    """Union several plans into one (seed taken from the first)."""
    if not plans:
        raise ValueError("need at least one plan")
    specs: List[FaultSpec] = []
    for plan in plans:
        specs.extend(plan.specs)
    return FaultPlan(seed=plans[0].seed, specs=tuple(sorted(specs)))
