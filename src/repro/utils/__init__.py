"""Small shared helpers: bit manipulation and deterministic randomness."""

from repro.utils.bitops import (
    bit_slice,
    ceil_div,
    ceil_log2,
    extract_bits,
    insert_bits,
    is_power_of_two,
    log2_exact,
    merge_bit_slices,
    split_bits_round_robin,
)
from repro.utils.rng import DeterministicRng, derive_seed

__all__ = [
    "DeterministicRng",
    "bit_slice",
    "ceil_div",
    "ceil_log2",
    "derive_seed",
    "extract_bits",
    "insert_bits",
    "is_power_of_two",
    "log2_exact",
    "merge_bit_slices",
    "split_bits_round_robin",
]
