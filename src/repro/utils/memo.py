"""Process-wide switches for the hot-path work (memo caches, fast cores).

Two independent toggles, both read once at module-import time:

* ``REPRO_DISABLE_MEMO=1`` turns off the pure memoization caches in
  :mod:`repro.dram.address`, :mod:`repro.oram.layout` and
  :mod:`repro.crypto.ctr` — they never change a result, only skip
  recomputing it, so they are on by default.
* ``REPRO_REFERENCE_CORE=1`` selects the straightforward *reference*
  implementations of the hottest simulator functions (closure-based
  event scheduling in :mod:`repro.sim.events`, the helper-per-constraint
  ``schedule_run`` in :mod:`repro.dram.channel`, the bank-scanning
  ``note_activity`` in :mod:`repro.dram.rank`) instead of the optimized
  ones.  Both produce bit-identical simulations — the differential tests
  in ``tests/test_refcore.py`` and the golden masters pin that — which is
  how ``benchmarks/bench_speedup.py`` measures the hot-path speedup in
  two subprocesses, and how a suspicious reader can prove to themselves
  that the optimizations do not perturb cycles.

Read-once-at-import is the right contract for fresh processes (the
benchmarks set the variable before spawning), but pool workers are
*forked* from a parent whose modules are already imported — they inherit
whatever the parent computed, and several consumers import these flags
**by value** into their own module globals.  :func:`refresh_switches`
exists for that boundary: it recomputes the flags from the current
environment and pushes them into every already-imported consumer, and
the pool layer (:mod:`repro.parallel.sweep`) runs it in each worker at
pool start so a warm pool never serves a stale A/B setting.
"""

from __future__ import annotations

import os
from typing import Tuple

#: The A/B environment variables that select which core a process runs.
#: The pool layer keys warm pools on a snapshot of exactly these.
SWITCH_ENVS: Tuple[str, ...] = ("REPRO_DISABLE_MEMO",
                                "REPRO_REFERENCE_CORE",
                                "REPRO_DISABLE_FASTPATH")


def _compute_switches() -> Tuple[bool, bool, bool]:
    """(memo_enabled, reference_core, fastpath_enabled) from the env."""
    memo_enabled = os.environ.get("REPRO_DISABLE_MEMO", "") != "1"
    reference_core = os.environ.get("REPRO_REFERENCE_CORE", "") == "1"
    # ``REPRO_DISABLE_FASTPATH=1`` turns off the macro-event replay core
    # (:mod:`repro.fastpath`) without selecting the reference twins — the
    # escape hatch for isolating a suspected fastpath bug from the
    # PR3-era micro-optimizations.  The reference core always disables
    # it: the reference twin must remain the unbatched spec.
    fastpath_enabled = (os.environ.get("REPRO_DISABLE_FASTPATH", "") != "1"
                        and not reference_core)
    return memo_enabled, reference_core, fastpath_enabled


#: Read once at import; the benchmarks set the variable before spawning.
MEMO_ENABLED, REFERENCE_CORE, FASTPATH_ENABLED = _compute_switches()


def switch_env_signature() -> Tuple[str, ...]:
    """The current values of :data:`SWITCH_ENVS` (unset rendered ``""``).

    A picklable snapshot: two processes with equal signatures run the
    same cores, so pool reuse is safe exactly when signatures match.
    """
    return tuple(os.environ.get(name, "") for name in SWITCH_ENVS)


def refresh_switches() -> None:
    """Recompute the switches from the environment, everywhere.

    Consumers import the flags by value (``from repro.utils.memo import
    MEMO_ENABLED``), so updating this module alone would leave every
    already-imported consumer running the old setting.  This pushes the
    recomputed values into each loaded ``repro`` module that carries a
    same-named global — all consumer reads happen at call time, so the
    new values take effect on the next call.
    """
    global MEMO_ENABLED, REFERENCE_CORE, FASTPATH_ENABLED
    MEMO_ENABLED, REFERENCE_CORE, FASTPATH_ENABLED = _compute_switches()
    import sys

    values = {"MEMO_ENABLED": MEMO_ENABLED,
              "REFERENCE_CORE": REFERENCE_CORE,
              "FASTPATH_ENABLED": FASTPATH_ENABLED}
    this = sys.modules.get(__name__)
    for name, module in list(sys.modules.items()):
        if module is None or module is this:
            continue
        if name != "repro" and not name.startswith("repro."):
            continue
        for attr, value in values.items():
            if attr in getattr(module, "__dict__", {}):
                setattr(module, attr, value)


#: Default bound for per-instance memo dictionaries.  Caches clear and
#: restart when full — simpler and faster than LRU bookkeeping, and a
#: full wipe keeps worst-case memory at one bounded dict per instance.
DEFAULT_MEMO_CAP = 1 << 16
