"""Process-wide switches for the hot-path work (memo caches, fast cores).

Two independent toggles, both read once at module-import time:

* ``REPRO_DISABLE_MEMO=1`` turns off the pure memoization caches in
  :mod:`repro.dram.address`, :mod:`repro.oram.layout` and
  :mod:`repro.crypto.ctr` — they never change a result, only skip
  recomputing it, so they are on by default.
* ``REPRO_REFERENCE_CORE=1`` selects the straightforward *reference*
  implementations of the hottest simulator functions (closure-based
  event scheduling in :mod:`repro.sim.events`, the helper-per-constraint
  ``schedule_run`` in :mod:`repro.dram.channel`, the bank-scanning
  ``note_activity`` in :mod:`repro.dram.rank`) instead of the optimized
  ones.  Both produce bit-identical simulations — the differential tests
  in ``tests/test_refcore.py`` and the golden masters pin that — which is
  how ``benchmarks/bench_speedup.py`` measures the hot-path speedup in
  two subprocesses, and how a suspicious reader can prove to themselves
  that the optimizations do not perturb cycles.
"""

from __future__ import annotations

import os

#: Read once at import; the benchmarks set the variable before spawning.
MEMO_ENABLED: bool = os.environ.get("REPRO_DISABLE_MEMO", "") != "1"

#: ``True`` selects the reference (pre-optimization) hot-path cores.
REFERENCE_CORE: bool = os.environ.get("REPRO_REFERENCE_CORE", "") == "1"

#: ``REPRO_DISABLE_FASTPATH=1`` turns off the macro-event replay core
#: (:mod:`repro.fastpath`) without selecting the reference twins — the
#: escape hatch for isolating a suspected fastpath bug from the PR3-era
#: micro-optimizations.  The reference core always disables it: the
#: reference twin must remain the unbatched one-event-at-a-time spec.
FASTPATH_ENABLED: bool = (os.environ.get("REPRO_DISABLE_FASTPATH", "") != "1"
                          and not REFERENCE_CORE)

#: Default bound for per-instance memo dictionaries.  Caches clear and
#: restart when full — simpler and faster than LRU bookkeeping, and a
#: full wipe keeps worst-case memory at one bounded dict per instance.
DEFAULT_MEMO_CAP = 1 << 16
