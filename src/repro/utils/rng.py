"""Deterministic, component-scoped random number generation.

Every stochastic component (leaf remapping, workload generation, drain
decisions) draws from its own named stream so that simulations are exactly
reproducible and adding randomness to one component never perturbs another.
"""

from __future__ import annotations

import hashlib
import random
from typing import Optional


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from a root seed and a component name.

    Uses SHA-256 so that distinct names give statistically independent
    streams regardless of how similar the names are.
    """
    digest = hashlib.sha256(f"{root_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


class DeterministicRng:
    """A named, seeded RNG stream.

    Thin wrapper over :class:`random.Random` adding the operations the
    simulator actually needs, with explicit names so call sites read as
    protocol steps rather than generic randomness.
    """

    def __init__(self, root_seed: int, name: str):
        self.name = name
        self._rng = random.Random(derive_seed(root_seed, name))

    def child(self, name: str) -> "DeterministicRng":
        """Create an independent sub-stream."""
        return DeterministicRng(self._rng.getrandbits(63), f"{self.name}/{name}")

    def random_leaf(self, leaf_count: int) -> int:
        """Uniform leaf ID in ``[0, leaf_count)`` — ORAM remapping."""
        return self._rng.randrange(leaf_count)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in ``[low, high]`` inclusive."""
        return self._rng.randint(low, high)

    def randrange(self, stop: int) -> int:
        return self._rng.randrange(stop)

    def random(self) -> float:
        return self._rng.random()

    def bernoulli(self, probability: float) -> bool:
        """Return True with the given probability."""
        return self._rng.random() < probability

    def expovariate(self, rate: float) -> float:
        return self._rng.expovariate(rate)

    def gauss(self, mean: float, stddev: float) -> float:
        return self._rng.gauss(mean, stddev)

    def random_bytes(self, count: int) -> bytes:
        return self._rng.getrandbits(count * 8).to_bytes(count, "little")

    def choice(self, sequence):
        return self._rng.choice(sequence)

    def shuffle(self, sequence) -> None:
        self._rng.shuffle(sequence)

    def zipf_index(self, population: int, exponent: float,
                   _cache: Optional[list] = None) -> int:
        """Draw an index in ``[0, population)`` with a Zipf-like distribution.

        Implemented by inverse-transform over the harmonic weights; callers
        that draw repeatedly should use :class:`ZipfSampler` instead.
        """
        sampler = ZipfSampler(self, population, exponent)
        return sampler.sample()


class ZipfSampler:
    """Precomputed Zipf sampler: rank ``r`` has weight ``1/(r+1)**exponent``."""

    def __init__(self, rng: DeterministicRng, population: int, exponent: float):
        if population <= 0:
            raise ValueError("population must be positive")
        self._rng = rng
        self._cumulative = []
        total = 0.0
        for rank in range(population):
            total += 1.0 / (rank + 1) ** exponent
            self._cumulative.append(total)
        self._total = total

    def sample(self) -> int:
        import bisect

        point = self._rng.random() * self._total
        return bisect.bisect_left(self._cumulative, point)
