"""Bit-manipulation helpers used by address mapping and bucket splitting.

The DRAM address mapper decomposes physical addresses into
(channel, DIMM, rank, bank, row, column) fields, and the Split protocol
bit-slices every block and metadata field across SDIMMs.  Both reduce to a
handful of primitive operations on integers, collected here.
"""

from __future__ import annotations

from typing import List, Sequence


def is_power_of_two(value: int) -> bool:
    """Return True when ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def log2_exact(value: int) -> int:
    """Return ``log2(value)`` for an exact power of two.

    Raises:
        ValueError: if ``value`` is not a positive power of two.
    """
    if not is_power_of_two(value):
        raise ValueError(f"{value} is not a positive power of two")
    return value.bit_length() - 1


def ceil_log2(value: int) -> int:
    """Return the smallest ``n`` such that ``2**n >= value``."""
    if value <= 0:
        raise ValueError(f"ceil_log2 requires a positive value, got {value}")
    return (value - 1).bit_length()


def ceil_div(numerator: int, denominator: int) -> int:
    """Integer division rounding up."""
    if denominator <= 0:
        raise ValueError(f"denominator must be positive, got {denominator}")
    return -(-numerator // denominator)


def extract_bits(value: int, low: int, width: int) -> int:
    """Return ``width`` bits of ``value`` starting at bit ``low``."""
    if low < 0 or width < 0:
        raise ValueError("low and width must be non-negative")
    return (value >> low) & ((1 << width) - 1)


def insert_bits(value: int, low: int, width: int, field: int) -> int:
    """Return ``value`` with bits ``[low, low+width)`` replaced by ``field``."""
    if field >> width:
        raise ValueError(f"field {field} does not fit in {width} bits")
    mask = ((1 << width) - 1) << low
    return (value & ~mask) | (field << low)


def bit_slice(data: bytes, way: int, ways: int) -> bytes:
    """Return the ``way``-th byte-interleaved slice of ``data``.

    The Split protocol stores "one half of every block" per SDIMM.  We model
    the bit-slicing at byte granularity: slice *i* holds bytes
    ``i, i+ways, i+2*ways, ...``.  Byte granularity keeps the model simple
    while preserving the property the protocol needs — no slice alone reveals
    the block, and all slices together reconstruct it exactly.
    """
    if not 0 <= way < ways:
        raise ValueError(f"way {way} out of range for {ways} ways")
    return data[way::ways]


def merge_bit_slices(slices: Sequence[bytes]) -> bytes:
    """Inverse of :func:`bit_slice`: interleave slices back into one buffer."""
    ways = len(slices)
    if ways == 0:
        raise ValueError("need at least one slice")
    total = sum(len(part) for part in slices)
    merged = bytearray(total)
    for way, part in enumerate(slices):
        merged[way::ways] = part
    return bytes(merged)


def split_bits_round_robin(value: int, width: int, ways: int) -> List[int]:
    """Split an integer field of ``width`` bits round-robin across ``ways``.

    Used for slicing tags, leaf IDs and counters across split SDIMMs.  Bit
    ``i`` of ``value`` lands in slice ``i % ways`` at position ``i // ways``.
    """
    if width < 0:
        raise ValueError("width must be non-negative")
    if value >> width:
        raise ValueError(f"value {value} does not fit in {width} bits")
    parts = [0] * ways
    for bit in range(width):
        if value >> bit & 1:
            parts[bit % ways] |= 1 << (bit // ways)
    return parts


def merge_bits_round_robin(parts: Sequence[int], width: int) -> int:
    """Inverse of :func:`split_bits_round_robin`."""
    ways = len(parts)
    if ways == 0:
        raise ValueError("need at least one part")
    value = 0
    for bit in range(width):
        if parts[bit % ways] >> (bit // ways) & 1:
            value |= 1 << bit
    return value
