"""DDR3 energy accounting in the style of the Micron power calculator.

Converts the event counters and rank-state residencies a simulation run
produces into energy, using the standard IDD-based formulas:

* activate/precharge pairs:  (IDD0·tRC − IDD3N·tRAS − IDD2N·(tRC−tRAS))·VDD
* read / write bursts:       (IDD4R/W − IDD3N)·VDD·tBURST
* refresh:                   (IDD5 − IDD2N)·VDD·tRFC
* background:                IDD{3N,2N,2P,6}·VDD by rank state residency
* I/O:                       pJ/bit, with separate rates for transfers that
                             cross the main memory channel vs. transfers
                             that stay on the DIMM between the secure
                             buffer and the DRAM chips.

The last two lines carry the paper's energy story (Figure 10): SDIMMs keep
most transfers on-DIMM, and the low-power layout keeps most ranks in
power-down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.config import DramOrganization, DramPower, DramTiming
from repro.sim.stats import RunResult

_BITS_PER_LINE = 64 * 8


@dataclass
class EnergyReport:
    """Energy breakdown for one run, in picojoules."""

    activate_pj: float = 0.0
    read_write_pj: float = 0.0
    refresh_pj: float = 0.0
    background_pj: float = 0.0
    io_pj: float = 0.0
    detail: Dict[str, float] = field(default_factory=dict)

    @property
    def total_pj(self) -> float:
        return (self.activate_pj + self.read_write_pj + self.refresh_pj +
                self.background_pj + self.io_pj)

    def normalized_to(self, baseline: "EnergyReport") -> float:
        """Energy relative to a baseline run (Figure 10's y-axis)."""
        if baseline.total_pj == 0:
            raise ValueError("baseline consumed no energy")
        return self.total_pj / baseline.total_pj

    def as_dict(self) -> Dict[str, float]:
        return {
            "activate_pj": self.activate_pj,
            "read_write_pj": self.read_write_pj,
            "refresh_pj": self.refresh_pj,
            "background_pj": self.background_pj,
            "io_pj": self.io_pj,
            "total_pj": self.total_pj,
        }


class DramEnergyModel:
    """Converts counters from a :class:`RunResult` into an energy report."""

    def __init__(self, power: DramPower, timing: DramTiming,
                 organization: DramOrganization,
                 cpu_cycles_per_mem_cycle: int = 2):
        self.power = power
        self.timing = timing
        self.organization = organization
        self._tck = timing.tck_ns
        self._cpu_cycle_ns = timing.tck_ns / cpu_cycles_per_mem_cycle
        self._devices = organization.devices_per_rank

    # ------------------------------------------------------------------
    # Per-event energies (pJ)
    # ------------------------------------------------------------------

    def activate_energy_pj(self) -> float:
        p = self.power
        t = self.timing
        charge_ma_cycles = (p.idd0 * t.trc - p.idd3n * t.tras -
                            p.idd2n * (t.trc - t.tras))
        return charge_ma_cycles * p.vdd * self._tck * self._devices

    def burst_energy_pj(self, is_write: bool) -> float:
        p = self.power
        current = p.idd4w if is_write else p.idd4r
        return ((current - p.idd3n) * p.vdd * self.timing.tburst *
                self._tck * self._devices)

    def refresh_energy_pj(self) -> float:
        p = self.power
        return ((p.idd5 - p.idd2n) * p.vdd * self.timing.trfc *
                self._tck * self._devices)

    def background_power_mw(self, state: str) -> float:
        """Per-rank background power by state name (mW)."""
        currents = {
            "active": self.power.idd3n,
            "standby": self.power.idd2n,
            "power-down": self.power.idd2p,
            "self-refresh": self.power.idd6,
        }
        if state not in currents:
            raise ValueError(f"unknown power state {state!r}")
        return currents[state] * self.power.vdd * self._devices

    def io_energy_pj(self, lines: int, on_dimm: bool) -> float:
        rate = (self.power.io_on_dimm_pj_per_bit if on_dimm
                else self.power.io_channel_pj_per_bit)
        return lines * _BITS_PER_LINE * rate

    # ------------------------------------------------------------------
    # Whole-run accounting
    # ------------------------------------------------------------------

    def report(self, result: RunResult) -> EnergyReport:
        """Energy for one run's measured window.

        DRAM-side counters cover the whole run (warm-up included) — both
        compared runs share that treatment, so normalized ratios (the
        paper's metric) are unaffected.
        """
        report = EnergyReport()
        for counters in result.channel_counters:
            on_dimm = bool(counters.get("on_dimm"))
            report.activate_pj += (counters["activates"] *
                                   self.activate_energy_pj())
            report.read_write_pj += (
                counters["reads"] * self.burst_energy_pj(False) +
                counters["writes"] * self.burst_energy_pj(True))
            report.io_pj += self.io_energy_pj(
                counters["reads"] + counters["writes"], on_dimm)
        # main-bus messages of the SDIMM protocols cross the channel
        report.io_pj += self.io_energy_pj(result.main_bus_lines,
                                          on_dimm=False)
        for residency in result.rank_residencies:
            report.refresh_pj += (residency.get("refreshes", 0) *
                                  self.refresh_energy_pj())
            for state in ("active", "standby", "power-down",
                          "self-refresh"):
                cycles = residency.get(state, 0)
                # 1 mW * 1 ns = 1 pJ
                report.background_pj += (self.background_power_mw(state) *
                                         cycles * self._cpu_cycle_ns)
        report.detail["channel_count"] = float(
            len(result.channel_counters))
        return report

    def per_access_summary(self) -> Dict[str, float]:
        """Reference per-event energies, for documentation and tests."""
        return {
            "activate_pj": self.activate_energy_pj(),
            "read_burst_pj": self.burst_energy_pj(False),
            "write_burst_pj": self.burst_energy_pj(True),
            "refresh_pj": self.refresh_energy_pj(),
            "line_io_channel_pj": self.io_energy_pj(1, False),
            "line_io_on_dimm_pj": self.io_energy_pj(1, True),
        }
