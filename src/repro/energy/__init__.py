"""DRAM energy and buffer-chip area models (the Micron-calculator/CACTI
substitutes used for Figure 10 and the area paragraph of Section IV-B)."""

from repro.energy.area import (
    oram_controller_area_mm2,
    sdimm_buffer_area_mm2,
    sram_area_mm2,
)
from repro.energy.dram_power import DramEnergyModel, EnergyReport

__all__ = [
    "DramEnergyModel",
    "EnergyReport",
    "oram_controller_area_mm2",
    "sdimm_buffer_area_mm2",
    "sram_area_mm2",
]
