"""Parametric silicon-area model for the SDIMM secure buffer.

Calibrated against the two data points the paper cites: Fletcher et al.'s
0.47 mm^2 ORAM controller at 32 nm, and a CACTI 6.5 estimate of 0.42 mm^2
for the 8 KB overflow buffer in the same technology.  SRAM area scales
slightly sub-linearly with capacity (peripheral amortization) and
quadratically with feature size.
"""

from __future__ import annotations

from repro.config import SdimmConfig

#: Calibration anchors from Section IV-B.
_REFERENCE_SRAM_BYTES = 8 * 1024
_REFERENCE_SRAM_MM2 = 0.42
_REFERENCE_CONTROLLER_MM2 = 0.47
_REFERENCE_TECH_NM = 32
#: Capacity exponent: periphery amortizes as arrays grow.
_CAPACITY_EXPONENT = 0.9


def _tech_scale(tech_nm: float) -> float:
    if tech_nm <= 0:
        raise ValueError("feature size must be positive")
    return (tech_nm / _REFERENCE_TECH_NM) ** 2


def sram_area_mm2(capacity_bytes: int, tech_nm: float = 32.0) -> float:
    """Area of an on-chip SRAM of ``capacity_bytes`` at ``tech_nm``."""
    if capacity_bytes <= 0:
        raise ValueError("capacity must be positive")
    ratio = capacity_bytes / _REFERENCE_SRAM_BYTES
    return (_REFERENCE_SRAM_MM2 * ratio ** _CAPACITY_EXPONENT *
            _tech_scale(tech_nm))


def oram_controller_area_mm2(tech_nm: float = 32.0) -> float:
    """Area of the ORAM controller logic (Fletcher et al.'s figure)."""
    return _REFERENCE_CONTROLLER_MM2 * _tech_scale(tech_nm)


def sdimm_buffer_area_mm2(sdimm: SdimmConfig,
                          tech_nm: float = 32.0) -> float:
    """Total secure-buffer area: controller + overflow/stash SRAM.

    The paper's claim: "the overall area overhead of an SDIMM buffer chip
    is less than 1 mm^2" for the default 8 KB buffer at 32 nm.
    """
    return (oram_controller_area_mm2(tech_nm) +
            sram_area_mm2(sdimm.buffer_sram_bytes, tech_nm))
