"""Macro-event replay core (the fast twin of the event-at-a-time core).

The simulator's reference architecture schedules every DRAM burst and
protocol phase as its own event.  This package recognizes when a whole
ORAM path access will execute purely arithmetically — no rank parked, no
refresh due, state captured by a small signature — and stamps the entire
access in one step: cycles, counters, DRAM/protocol trace events, and
window folds.  Anything else falls through to the existing core, run by
run, mid-access if necessary.

Enablement: on by default; ``REPRO_DISABLE_FASTPATH=1`` turns it off,
and ``REPRO_REFERENCE_CORE=1`` (the differential-test twin) always turns
it off.  The differential suites assert byte-identical results between
the two cores; see ``docs/performance.md``.
"""

from repro.fastpath.access import (AccessFastPath, DELTA_TABLE_CAP,
                                   DeltaEntry, delta_table_for,
                                   reset_delta_tables)
from repro.fastpath.engine import emit_batch, pass_eligible, stamp_pass
from repro.fastpath.runs import FastLowPowerRuns, FastTreeRuns, PathPattern
from repro.utils.memo import FASTPATH_ENABLED

__all__ = [
    "AccessFastPath", "DELTA_TABLE_CAP", "DeltaEntry", "FASTPATH_ENABLED",
    "FastLowPowerRuns", "FastTreeRuns", "PathPattern", "delta_table_for",
    "emit_batch", "pass_eligible", "reset_delta_tables", "stamp_pass",
]
