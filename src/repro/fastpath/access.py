"""Whole-access macro replay: signature, delta table, and the driver.

:class:`AccessFastPath` serves one protocol driver (the Freecursive
backend over its striped channels, or one SDIMM device over its internal
channel).  Per access it runs a two-tier fast path:

* **Tier A** — look up a :class:`DeltaEntry` keyed on the path's run
  pattern plus a clamped channel-state signature; on a hit, stamp the
  whole access (cycles, counters, bank/rank/bus post-state, trace
  events) from the precomputed deltas without touching the constraint
  chain at all.  This is the ISSUE's per-(design, path-signature,
  channel-state) table; entries are built lazily by memoizing Tier B.
* **Tier B** — :func:`~repro.fastpath.engine.stamp_pass` both passes
  flat, batch the trace events, and (when memoization is on) record the
  access as a new Tier-A entry.

If a touched rank is parked, the access returns to the caller's
event-core path untouched — nothing is committed until eligibility is
known, so the fallback is exact mid-run.  Refreshes do not force a
fallback: Tier B delegates them to the rank's own ``maybe_refresh``
exactly where ``schedule_run`` would; they only exclude the access from
the Tier-A table (the clamped signature deliberately omits the refresh
clock, so recorded deltas must be refresh-free and replay must prove no
refresh could fire before the access's write pass ends).

Signature clamping: pre-access state values that can no longer constrain
anything (a bank ready time at or before the access start, a last-ACT
older than tRRD, a bus release more than a CAS latency ago) are clamped
to a per-field floor, so all "quiet channel" states collapse into one
table entry.  Each floor is chosen so that every clamped value is inert
for the whole access *and* stays inert (and clamped) for all later
accesses — replaying a recorded post-state over a different member of
the same signature class is then observationally identical forever.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.dram.bank import ScaledTiming
from repro.dram.commands import PowerState
from repro.fastpath.engine import emit_batch, stamp_pass
from repro.obs.tracer import (CATEGORY_DRAM, CATEGORY_PROTOCOL, TraceEvent)
from repro.utils.memo import MEMO_ENABLED

_PARKED = (PowerState.POWER_DOWN, PowerState.SELF_REFRESH)

#: Per-(config, traced) delta tables, shared by every same-shape device in
#: the process (the Independent designs run many identical SDIMMs — one
#: device's recording warms its siblings).  Bounded clear-when-full.
_DELTA_TABLES: Dict[tuple, dict] = {}
DELTA_TABLE_CAP = 4096


def delta_table_for(channels, crypto: int, traced: bool) -> dict:
    """The process-wide delta table for this channel/crypto shape.

    ``traced`` keys separate tables: entries recorded without tracing
    carry no event templates and must never serve a traced run.
    """
    channel = channels[0]
    timing = channel.timing
    key = (tuple(getattr(timing, name) for name in ScaledTiming._FIELDS),
           len(channel.ranks), len(channel.ranks[0].banks),
           channel._banks_per_group, channel._row_lines,
           len(channels), crypto, bool(traced))
    table = _DELTA_TABLES.get(key)
    if table is None:
        table = _DELTA_TABLES[key] = {}
    return table


def reset_delta_tables() -> None:
    """Drop all memoized delta entries (tests and benchmarks)."""
    _DELTA_TABLES.clear()


class DeltaEntry:
    """Everything needed to replay one recorded access at a new start.

    All times are relative to the access start; ``bursts`` is ``None``
    for entries recorded without tracing (separate table key).
    """

    __slots__ = ("rel_read_end", "rel_write_start", "rel_write_end",
                 "rel_return", "counter_deltas", "bank_post", "acts",
                 "w2r_post", "group_post", "bus_post", "note_first",
                 "bursts")

    def __init__(self, rel_read_end, rel_write_start, rel_write_end,
                 rel_return, counter_deltas, bank_post, acts, w2r_post,
                 group_post, bus_post, note_first, bursts):
        self.rel_read_end = rel_read_end
        self.rel_write_start = rel_write_start
        self.rel_write_end = rel_write_end
        self.rel_return = rel_return
        self.counter_deltas = counter_deltas
        self.bank_post = bank_post
        self.acts = acts
        self.w2r_post = w2r_post
        self.group_post = group_post
        self.bus_post = bus_post
        self.note_first = note_first
        self.bursts = bursts


def _signature(channels, pattern, start: int) -> tuple:
    """Clamped channel-state signature for ``pattern`` starting at ``start``.

    Covers exactly the pre-access state ``schedule_run`` can read during
    the access: per first-touch bank the row-buffer relation to the
    pattern's first row and the three ready times; per touched rank the
    ACT pacing state and write-to-read turnaround; per touched bank
    group the last CAS; per channel the data-bus release and whether the
    last bus owner matches the pattern's first rank.  Floors (0 for
    ready times, ``-tRRD``/``-tFAW`` for ACT pacing, ``-tCCD_L`` for
    group CAS, ``tCL - tRTRS`` for the bus) mark the point past which a
    value cannot influence the access or any later one.
    """
    parts: List[int] = []
    append = parts.append
    for ch, rank_index, bank_index, row in pattern.sig_banks:
        bank = channels[ch].ranks[rank_index].banks[bank_index]
        open_row = bank.open_row
        append(0 if open_row is None else (2 if open_row == row else 1))
        value = bank.ready_activate - start
        append(value if value > 0 else 0)
        value = bank.ready_cas - start
        append(value if value > 0 else 0)
        value = bank.ready_precharge - start
        append(value if value > 0 else 0)
    for ch, rank_index in pattern.sig_ranks:
        channel = channels[ch]
        rank = channel.ranks[rank_index]
        timing = rank._t
        floor = -timing.trrd
        value = rank._last_act_time - start
        append(value if value > floor else floor)
        history = rank._act_history
        append(len(history))
        floor = -timing.tfaw
        for issue in history:
            value = issue - start
            append(value if value > floor else floor)
        value = channel._write_to_read_ready.get(rank_index, 0) - start
        append(value if value > 0 else 0)
    for ch, rank_index, group in pattern.sig_groups:
        channel = channels[ch]
        floor = -channel.timing.tccd_l
        last = channel._last_group_cas.get((rank_index, group))
        if last is None:
            append(floor)
        else:
            value = last - start
            append(value if value > floor else floor)
    for part in pattern.per_channel:
        channel = channels[part[0]]
        timing = channel.timing
        floor = timing.tcl - timing.trtrs
        value = channel._bus_free - start
        append(value if value > floor else floor)
        last_rank = channel._last_bus_rank
        if last_rank is None:
            append(-1)
        else:
            append(0 if last_rank == part[1][0][0] else 1)
    return tuple(parts)


def _snapshot(counters) -> Tuple[int, ...]:
    return (counters.activates, counters.precharges, counters.reads,
            counters.writes, counters.row_hits, counters.row_misses,
            counters.row_conflicts, counters.busy_cycles)


class AccessFastPath:
    """Two-tier fast path for one driver's ``accessORAM`` operations."""

    __slots__ = ("channels", "channel_names", "producer", "skip_levels",
                 "crypto", "lane", "tracer", "table", "attempts",
                 "fast_accesses", "delta_hits")

    def __init__(self, channels, producer, skip_levels: int, crypto: int,
                 lane: str, tracer):
        self.channels = list(channels)
        self.channel_names = [channel.name for channel in self.channels]
        self.producer = producer
        self.skip_levels = skip_levels
        self.crypto = crypto
        self.lane = lane
        self.tracer = tracer
        self.table: Optional[dict] = (
            delta_table_for(self.channels, crypto, tracer.enabled)
            if MEMO_ENABLED else None)
        self.attempts = 0
        self.fast_accesses = 0
        self.delta_hits = 0

    def try_access(self, leaf: int, start: int) -> Optional[int]:
        """Serve one access fast, or return ``None`` for the event core."""
        self.attempts += 1
        if start < 0:
            return None
        pattern = self.producer.pattern(leaf, self.skip_levels)
        runs = pattern.runs
        if not runs:
            return None
        channels = self.channels
        clean = True
        for ch, rank_index in pattern.sig_ranks:
            rank = channels[ch].ranks[rank_index]
            if rank.power_state in _PARKED:
                return None
            if rank.refresh_enabled and rank._next_refresh_due <= start:
                clean = False
        # ``seen`` gates the Tier-A machinery on pattern *re-occurrence*:
        # a delta entry can only ever be hit by the same run pattern, so
        # first-seen patterns (the overwhelming case on big trees, where
        # leaves effectively never repeat) skip the signature and the
        # recording overhead entirely.
        seen = pattern.seen + 1
        pattern.seen = seen
        table = self.table
        sig = None
        if table is not None and clean and seen > 1:
            sig = _signature(channels, pattern, start)
            entry = table.get((runs, sig))
            if entry is not None:
                write_start = start + entry.rel_write_start
                for ch, rank_index in pattern.sig_ranks:
                    rank = channels[ch].ranks[rank_index]
                    if rank.refresh_enabled and \
                            rank._next_refresh_due <= write_start:
                        break
                else:
                    self._replay(entry, start)
                    self.fast_accesses += 1
                    self.delta_hits += 1
                    return start + entry.rel_return
        return self._compute(pattern, sig, start, clean)

    # ------------------------------------------------------------------
    # Tier B: flat compute (+ Tier-A recording)
    # ------------------------------------------------------------------

    def _compute(self, pattern, sig, start: int, clean: bool) -> int:
        channels = self.channels
        crypto = self.crypto
        tracer = self.tracer
        traced = tracer.enabled
        per_channel = pattern.per_channel
        multi = len(per_channel) > 1
        recording = sig is not None
        if recording:
            before = [(part[0], _snapshot(channels[part[0]].counters))
                      for part in per_channel]
            act_parts: List[tuple] = []
            first_parts: List[tuple] = []
        read_batch = ([None] * len(pattern.runs) if multi else []) \
            if traced else None
        read_end = 0
        for part in per_channel:
            ch = part[0]
            part_acts = [] if recording else None
            part_firsts = {} if recording else None
            end = stamp_pass(channels[ch], part[1], False, start,
                             read_batch, part[2], part_acts, part_firsts,
                             not clean)
            if end > read_end:
                read_end = end
            if recording:
                act_parts.append((ch, part_acts))
                first_parts.append((ch, part_firsts))
        write_start = read_end + crypto
        # One per-rank scan decides both prongs: whether the write pass
        # needs per-run refresh checks in ``stamp_pass`` and — because
        # the signature omits the refresh clock — whether this access is
        # recordable (``clean`` already proved the read pass refresh-free
        # for that purpose).  The access still stamps fast either way.
        write_clean = True
        for ch, rank_index in pattern.sig_ranks:
            rank = channels[ch].ranks[rank_index]
            if rank.refresh_enabled and \
                    rank._next_refresh_due <= write_start:
                write_clean = False
                break
        if not write_clean:
            recording = False
        write_batch = ([None] * len(pattern.runs) if multi else []) \
            if traced else None
        write_end = 0
        for part in per_channel:
            ch = part[0]
            part_acts = [] if recording else None
            end = stamp_pass(channels[ch], part[1], True, write_start,
                             write_batch, part[2], part_acts, None,
                             not write_clean)
            if end > write_end:
                write_end = end
            if recording:
                act_parts.append((ch, part_acts))
        return_time = write_end + crypto
        bursts = None
        if traced:
            events = read_batch
            events.extend(write_batch)
            if recording:
                name_index = {name: index for index, name
                              in enumerate(self.channel_names)}
                bursts = tuple(
                    (name_index[event.lane], event.start - start,
                     event.duration, event.args)
                    for event in events)
            events.append(TraceEvent("span", "PATH_READ", CATEGORY_PROTOCOL,
                                     self.lane, start, read_end - start))
            events.append(TraceEvent("span", "PATH_WRITE", CATEGORY_PROTOCOL,
                                     self.lane, write_start,
                                     write_end - write_start))
            emit_batch(tracer, events)
        if recording:
            table = self.table
            counter_deltas = []
            for ch, snap in before:
                now = _snapshot(channels[ch].counters)
                counter_deltas.append(
                    (ch, tuple(a - b for a, b in zip(now, snap))))
            bank_post = []
            for ch, rank_index, bank_index, _row in pattern.sig_banks:
                bank = channels[ch].ranks[rank_index].banks[bank_index]
                bank_post.append(
                    (ch, rank_index, bank_index, bank.open_row,
                     bank.ready_activate - start, bank.ready_cas - start,
                     bank.ready_precharge - start))
            acts = tuple((ch, rank_index, issue - start)
                         for ch, part_acts in act_parts
                         for rank_index, issue in part_acts)
            w2r_post = tuple(
                (ch, rank_index,
                 channels[ch]._write_to_read_ready[rank_index] - start)
                for ch, rank_index in pattern.sig_ranks)
            group_post = tuple(
                (ch, rank_index, group,
                 channels[ch]._last_group_cas[(rank_index, group)] - start)
                for ch, rank_index, group in pattern.sig_groups)
            bus_post = tuple(
                (part[0], channels[part[0]]._bus_free - start,
                 channels[part[0]]._last_bus_rank)
                for part in per_channel)
            note_first = tuple(
                (ch, rank_index, data_end - start)
                for ch, part_firsts in first_parts
                for rank_index, data_end in part_firsts.items())
            entry = DeltaEntry(
                read_end - start, write_start - start, write_end - start,
                return_time - start, tuple(counter_deltas),
                tuple(bank_post), acts, w2r_post, group_post, bus_post,
                note_first, bursts)
            if len(table) >= DELTA_TABLE_CAP:
                table.clear()
            table[(pattern.runs, sig)] = entry
        self.fast_accesses += 1
        return return_time

    # ------------------------------------------------------------------
    # Tier A: delta replay
    # ------------------------------------------------------------------

    def _replay(self, entry: DeltaEntry, start: int) -> None:
        channels = self.channels
        for ch, rank_index, bank_index, row, ra, rc, rp in entry.bank_post:
            bank = channels[ch].ranks[rank_index].banks[bank_index]
            bank.open_row = row
            bank.ready_activate = start + ra
            bank.ready_cas = start + rc
            bank.ready_precharge = start + rp
        for ch, rank_index, rel in entry.acts:
            rank = channels[ch].ranks[rank_index]
            issue = start + rel
            rank._act_history.append(issue)
            rank._last_act_time = issue
        for ch, rank_index, rel in entry.w2r_post:
            channels[ch]._write_to_read_ready[rank_index] = start + rel
        for ch, rank_index, group, rel in entry.group_post:
            channels[ch]._last_group_cas[(rank_index, group)] = start + rel
        for ch, rel, last_rank in entry.bus_post:
            channel = channels[ch]
            channel._bus_free = start + rel
            channel._last_bus_rank = last_rank
            channel._last_bus_was_write = True
        for ch, deltas in entry.counter_deltas:
            counters = channels[ch].counters
            counters.activates += deltas[0]
            counters.precharges += deltas[1]
            counters.reads += deltas[2]
            counters.writes += deltas[3]
            counters.row_hits += deltas[4]
            counters.row_misses += deltas[5]
            counters.row_conflicts += deltas[6]
            counters.busy_cycles += deltas[7]
        for ch, rank_index, rel in entry.note_first:
            channels[ch].ranks[rank_index].note_active(start + rel)
        tracer = self.tracer
        if tracer.enabled:
            names = self.channel_names
            events = [TraceEvent("span", "burst", CATEGORY_DRAM, names[ch],
                                 start + rel, duration, args)
                      for ch, rel, duration, args in entry.bursts]
            events.append(TraceEvent("span", "PATH_READ", CATEGORY_PROTOCOL,
                                     self.lane, start, entry.rel_read_end))
            events.append(TraceEvent(
                "span", "PATH_WRITE", CATEGORY_PROTOCOL, self.lane,
                start + entry.rel_write_start,
                entry.rel_write_end - entry.rel_write_start))
            emit_batch(tracer, events)
