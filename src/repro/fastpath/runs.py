"""Fast integer path-pattern production for the macro-replay core.

:class:`FastTreeRuns` and :class:`FastLowPowerRuns` reproduce
:meth:`repro.oram.layout.TreeLayout.path_runs` and
:meth:`repro.oram.layout.LowPowerLayout.path_runs` with the subtree-band
arithmetic, channel striping, and sequential address decode inlined into
flat integer loops — no :class:`~repro.dram.address.DecodedAddress`
objects, no per-bucket helper calls.  The per-level band constants
(``(1 << band_top) - 1`` etc.) depend only on the geometry, so both
producers fold them into a precomputed per-level term table at
construction; per access the band loop is three shifts, a mask, and two
multiply-adds per level.  ``tests/test_fastpath_runs.py`` pins content
equality against the layout classes over both geometries.

The product is a :class:`PathPattern`: the run list in a tuple-of-ints
form plus the derived metadata the fast access core needs — the touched
ranks eagerly (the eligibility check reads them every access) and the
first-touch banks / touched bank groups lazily (only the Tier-A
signature reads those, and on big trees patterns effectively never
repeat so the signature is rarely built).  Patterns are immutable and
memoized per ``(leaf, skip)`` with the same bounded clear-when-full
policy the layouts use.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.utils.memo import DEFAULT_MEMO_CAP, MEMO_ENABLED

#: One run: ``(channel, rank, bank, row, column, count)``.
Run6 = Tuple[int, int, int, int, int, int]


def _level_terms(total_levels: int, sub_total: int, subtree_levels: int,
                 lines_per_bucket: int, rank_levels: int) -> tuple:
    """Per-level constants of the subtree-band address computation.

    For (sub-)level ``s`` of a tree whose packed region spans
    ``sub_total`` levels, the bucket's first line is::

        const + (position >> in_band) * mult + (position & mask) * lpb

    with ``position`` the path's position within the (sub-)tree at that
    level.  Entries are ``(shift, in_band, mask, const, mult, pos_mask)``
    where ``shift`` turns a leaf into the full-width position
    (``leaf >> shift``) for level ``rank_levels + s`` and ``pos_mask``
    truncates it to the sub-tree width (a no-op for the full tree, used
    by the per-rank sub-tree layout).
    """
    terms = []
    for sub_level in range(sub_total):
        in_band = sub_level % subtree_levels
        band_top = sub_level - in_band
        depth = sub_total - band_top
        if depth > subtree_levels:
            depth = subtree_levels
        const = ((1 << band_top) - 1 + (1 << in_band) - 1) * lines_per_bucket
        mult = ((1 << depth) - 1) * lines_per_bucket
        shift = total_levels - 1 - (rank_levels + sub_level)
        terms.append((shift, in_band, (1 << in_band) - 1, const, mult,
                      (1 << sub_level) - 1))
    return tuple(terms)


class PathPattern:
    """One path access's run list plus signature/stamping metadata.

    ``runs`` is the Tier-A delta-table key component; ``per_channel``
    groups the runs for per-channel pass stamping while remembering each
    run's position in the original emission order (``slots``) so a
    multi-channel stamp reproduces the slow core's event order exactly.
    """

    __slots__ = ("runs", "per_channel", "sig_ranks", "seen",
                 "_banks_per_group", "_sig_banks", "_sig_groups",
                 "_slice_cache")

    def __init__(self, runs: Tuple[Run6, ...], banks_per_group: int,
                 runs5: Optional[tuple] = None,
                 sig_ranks: Optional[tuple] = None):
        self.runs = runs
        self.seen = 0
        self._banks_per_group = banks_per_group
        self._sig_banks: Optional[tuple] = None
        self._sig_groups: Optional[tuple] = None
        self._slice_cache: Dict[int, tuple] = {}
        if runs5 is not None:
            # single-channel producer already built the 5-tuple form
            self.per_channel = ((0, runs5, None),)
        else:
            by_channel: Dict[int, Tuple[list, list]] = {}
            for index, run in enumerate(runs):
                part = by_channel.get(run[0])
                if part is None:
                    part = by_channel[run[0]] = ([], [])
                part[0].append(run[1:])
                part[1].append(index)
            if len(by_channel) == 1:
                channel, (channel_runs, _) = next(iter(by_channel.items()))
                self.per_channel = ((channel, tuple(channel_runs), None),)
            else:
                self.per_channel = tuple(
                    (channel, tuple(part_runs), tuple(slots))
                    for channel, (part_runs, slots) in by_channel.items())
        if sig_ranks is not None:
            self.sig_ranks = sig_ranks
        else:
            ranks: Dict[Tuple[int, int], None] = {}
            for run in runs:
                ranks.setdefault((run[0], run[1]), None)
            self.sig_ranks = tuple(ranks)

    @property
    def sig_banks(self) -> tuple:
        """First-touch ``(channel, rank, bank, first_row)`` per bank."""
        banks = self._sig_banks
        if banks is None:
            first: Dict[Tuple[int, int, int], int] = {}
            for channel, rank, bank, row, _column, _count in self.runs:
                key = (channel, rank, bank)
                if key not in first:
                    first[key] = row
            banks = self._sig_banks = tuple(
                key + (row,) for key, row in first.items())
        return banks

    @property
    def sig_groups(self) -> tuple:
        """Touched ``(channel, rank, bank_group)`` triples."""
        groups = self._sig_groups
        if groups is None:
            seen: Dict[Tuple[int, int, int], None] = {}
            per_group = self._banks_per_group
            for run in self.runs:
                seen.setdefault((run[0], run[1], run[2] // per_group), None)
            groups = self._sig_groups = tuple(seen)
        return groups

    def slices(self, ways: int) -> Tuple[tuple, ...]:
        """Per-way run shares, matching ``SdimmDevice.slice_runs``.

        Way ``w`` takes ``ceil((count - w) / ways)`` lines of each run
        (zero-line shares dropped); addresses are unchanged, so every way
        streams the same rows — the Split design's bandwidth split.
        """
        cached = self._slice_cache.get(ways)
        if cached is None:
            shares = []
            for way in range(ways):
                share = []
                for _channel, rank, bank, row, column, count in self.runs:
                    portion = (count - way + ways - 1) // ways
                    if portion > 0:
                        share.append((rank, bank, row, column, portion))
                shares.append(tuple(share))
            cached = self._slice_cache[ways] = tuple(shares)
        return cached


class FastTreeRuns:
    """Pattern producer mirroring :class:`TreeLayout` (striped channels)."""

    def __init__(self, layout, banks_per_group: int):
        self.layout = layout
        self.levels = layout.geometry.levels
        self.lines_per_bucket = layout.oram.lines_per_bucket
        self.channels = layout.channels
        decoder = layout._decoder
        self.columns = decoder.columns
        self.banks = decoder.banks
        self.ranks = decoder.ranks
        self.rows = decoder.rows
        self.banks_per_group = banks_per_group
        self._terms = _level_terms(self.levels, self.levels,
                                   layout.subtree_levels,
                                   self.lines_per_bucket, 0)
        self._cache: Dict[Tuple[int, int], PathPattern] = {}

    def pattern(self, leaf: int, skip_levels: int) -> PathPattern:
        key = (leaf, skip_levels)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        lines_per_bucket = self.lines_per_bucket
        channels = self.channels
        columns = self.columns
        banks = self.banks
        ranks = self.ranks
        rows = self.rows
        ranges: list = []
        last_end = -1
        for shift, in_band, mask, const, mult, _ in self._terms[skip_levels:]:
            position = leaf >> shift
            base = (const + (position >> in_band) * mult
                    + (position & mask) * lines_per_bucket)
            if base == last_end:
                last_end = ranges[-1][1] = base + lines_per_bucket
            else:
                last_end = base + lines_per_bucket
                ranges.append([base, last_end])
        runs: list = []
        runs5: list = []
        rank_masks = [0] * channels
        for begin, end in ranges:
            for channel in range(channels):
                first = begin + (channel - begin) % channels
                if first >= end:
                    continue
                remaining = (end - first + channels - 1) // channels
                line = first // channels
                while remaining > 0:
                    column = line % columns
                    rest = line // columns
                    bank = rest % banks
                    rest //= banks
                    rank = rest % ranks
                    row = (rest // ranks) % rows
                    take = columns - column
                    if take > remaining:
                        take = remaining
                    runs.append((channel, rank, bank, row, column, take))
                    runs5.append((rank, bank, row, column, take))
                    rank_masks[channel] |= 1 << rank
                    line += take
                    remaining -= take
        sig_ranks = tuple((channel, rank)
                          for channel in range(channels)
                          for rank in range(ranks)
                          if rank_masks[channel] >> rank & 1)
        pattern = PathPattern(tuple(runs), self.banks_per_group,
                              tuple(runs5) if channels == 1 else None,
                              sig_ranks)
        if MEMO_ENABLED:
            if len(self._cache) >= DEFAULT_MEMO_CAP:
                self._cache.clear()
            self._cache[key] = pattern
        return pattern


class FastLowPowerRuns:
    """Pattern producer mirroring :class:`LowPowerLayout` (one rank/path)."""

    def __init__(self, layout, banks_per_group: int):
        self.layout = layout
        self.levels = layout.geometry.levels
        self.rank_levels = layout.rank_levels
        self.lines_per_bucket = layout.oram.lines_per_bucket
        decoder = layout._rank_decoders[0]
        self.columns = decoder.columns
        self.banks = decoder.banks
        self.rows = decoder.rows
        self.banks_per_group = banks_per_group
        self._terms = _level_terms(self.levels,
                                   layout._rank_geometry.levels,
                                   layout.subtree_levels,
                                   self.lines_per_bucket, self.rank_levels)
        self._cache: Dict[Tuple[int, int], PathPattern] = {}

    def pattern(self, leaf: int, skip_levels: int) -> PathPattern:
        key = (leaf, skip_levels)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        levels = self.levels
        rank_levels = self.rank_levels
        lines_per_bucket = self.lines_per_bucket
        columns = self.columns
        banks = self.banks
        rows = self.rows
        rank = leaf >> (levels - 1 - rank_levels)
        first_level = skip_levels if skip_levels > rank_levels else rank_levels
        ranges: list = []
        last_end = -1
        for shift, in_band, mask, const, mult, pos_mask in \
                self._terms[first_level - rank_levels:]:
            position = (leaf >> shift) & pos_mask
            base = (const + (position >> in_band) * mult
                    + (position & mask) * lines_per_bucket)
            if base == last_end:
                last_end = ranges[-1][1] = base + lines_per_bucket
            else:
                last_end = base + lines_per_bucket
                ranges.append([base, last_end])
        runs: list = []
        runs5: list = []
        for begin, end in ranges:
            line = begin
            remaining = end - begin
            while remaining > 0:
                column = line % columns
                rest = line // columns
                bank = rest % banks
                row = (rest // banks) % rows
                take = columns - column
                if take > remaining:
                    take = remaining
                runs.append((0, rank, bank, row, column, take))
                runs5.append((rank, bank, row, column, take))
                line += take
                remaining -= take
        pattern = PathPattern(tuple(runs), self.banks_per_group,
                              tuple(runs5), ((0, rank),))
        if MEMO_ENABLED:
            if len(self._cache) >= DEFAULT_MEMO_CAP:
                self._cache.clear()
            self._cache[key] = pattern
        return pattern
