"""The flat pass engine: stamp a whole read/write pass in one call.

:func:`stamp_pass` is the Tier-B workhorse of the macro-replay core: it
applies the exact DDR constraint chain of
:meth:`repro.dram.channel.Channel.schedule_run` to every run of one pass
with the timing fields, bus state, and counters hoisted into locals, and
collects the burst trace events into a plain list instead of pushing
them through the tracer one at a time.  :func:`emit_batch` then commits
such a list — straight into a :class:`CollectingTracer`'s event list and
through an inlined window fold when a :class:`WindowedTracer` wraps it.

Exactness contract: for an *eligible* pass (no touched rank parked —
callers check via :func:`pass_eligible`; refreshes are handled inline),
``stamp_pass`` leaves every bank, rank, bus, and counter field
byte-identical to a ``schedule_run`` loop over the same runs, and the
batched events are byte-identical to the tracer's.  The differential
tests against ``REPRO_REFERENCE_CORE=1`` pin this.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.dram.commands import PowerState
from repro.obs.timeseries import WindowSnapshot, WindowedTracer
from repro.obs.tracer import CATEGORY_DRAM, CollectingTracer, TraceEvent

_HIT = "hit"
_MISS = "miss"
_CONFLICT = "conflict"
_PARKED = (PowerState.POWER_DOWN, PowerState.SELF_REFRESH)
_ACTIVE = PowerState.ACTIVE_STANDBY


def pass_eligible(channel, rank_indices, earliest: int) -> bool:
    """True when a pass starting at ``earliest`` cannot hit a rank wake.

    ``schedule_run`` consults two pieces of rank state before the
    deterministic constraint chain: a parked power state (wake latency +
    refresh-schedule restart) and an overdue refresh.  Refreshes are
    handled inline by :func:`stamp_pass` via the rank's own
    ``maybe_refresh`` — only a parked rank forces the event core.
    """
    ranks = channel.ranks
    for rank_index in rank_indices:
        if ranks[rank_index].power_state in _PARKED:
            return False
    return True


def stamp_pass(channel, runs, is_write: bool, earliest: int,
               batch: Optional[list] = None, slots=None,
               acts: Optional[list] = None,
               firsts: Optional[Dict[int, int]] = None,
               refresh: bool = True) -> int:
    """Stamp one pass of ``runs`` on ``channel``; return its end cycle.

    ``runs`` are ``(rank, bank, row, column, count)`` tuples (one
    channel's share of a :class:`~repro.fastpath.runs.PathPattern`).
    Burst events append to ``batch`` when given, or land at
    ``batch[slots[i]]`` when ``slots`` maps runs back to a multi-channel
    emission order.  The Tier-A recorder passes ``acts`` to collect
    ``(rank, issue_time)`` per ACT and ``firsts`` (read passes) to
    record the first data_end per touched rank — replay needs both to
    rebuild ACT pacing state and the active-standby transition exactly.

    The caller must have established :func:`pass_eligible`; this body is
    the ``schedule_run`` constraint chain with wake elided (no touched
    rank is parked), refresh delegated to the rank's own
    ``maybe_refresh`` when due, and the bank state machine inlined.
    """
    t = channel.timing
    tburst = t.tburst
    tccd_l = t.tccd_l
    stride = tburst if tburst > tccd_l else tccd_l
    cas_latency = t.tcwl if is_write else t.tcl
    trp = t.trp
    trcd = t.trcd
    tras = t.tras
    trc = t.trc
    trrd = t.trrd
    tfaw = t.tfaw
    trtrs = t.trtrs
    if is_write:
        write_recovery = t.tcwl + tburst + t.twr
        twtr = t.twtr
        trtp = 0
    else:
        write_recovery = twtr = 0
        trtp = t.trtp
    ranks = channel.ranks
    banks_per_group = channel._banks_per_group
    last_group_cas = channel._last_group_cas
    write_to_read = channel._write_to_read_ready
    bus_free = channel._bus_free
    last_bus_rank = channel._last_bus_rank
    channel_name = channel.name
    start = earliest if earliest > 0 else 0
    write_flag = 1 if is_write else 0
    activates = precharges = row_hits = row_misses = row_conflicts = 0
    total_lines = 0
    end = 0
    slot_index = 0
    for rank_index, bank_index, row, _column, count in runs:
        rank = ranks[rank_index]
        run_start = start
        if refresh and rank.refresh_enabled \
                and rank._next_refresh_due <= run_start:
            # ``maybe_refresh`` is a strict no-op when nothing is due, so
            # gating on the due time makes this call-for-call identical
            # to ``schedule_run``'s unconditional one.  Callers that
            # already proved no touched rank is due at ``earliest`` pass
            # ``refresh=False`` to skip the per-run checks outright.
            run_start = rank.maybe_refresh(run_start)
        bank = rank.banks[bank_index]
        open_row = bank.open_row
        if open_row == row:
            outcome = _HIT
            row_hits += 1
        else:
            if open_row is None:
                outcome = _MISS
                row_misses += 1
            else:
                outcome = _CONFLICT
                row_conflicts += 1
                precharges += 1
                ready = bank.ready_precharge
                ready = (run_start if run_start > ready else ready) + trp
                if ready > bank.ready_activate:
                    bank.ready_activate = ready
            ready = bank.ready_activate
            candidate = run_start if run_start > ready else ready
            ready = rank._last_act_time + trrd
            if ready > candidate:
                candidate = ready
            history = rank._act_history
            if len(history) == history.maxlen:
                ready = history[0] + tfaw
                if ready > candidate:
                    candidate = ready
            bank.open_row = row
            bank.ready_cas = candidate + trcd
            bank.ready_precharge = candidate + tras
            bank.ready_activate = candidate + trc
            history.append(candidate)
            rank._last_act_time = candidate
            activates += 1
            if acts is not None:
                acts.append((rank_index, candidate))
        cas_issue = run_start
        ready = bank.ready_cas
        if ready > cas_issue:
            cas_issue = ready
        group = (rank_index, bank_index // banks_per_group)
        last = last_group_cas.get(group)
        if last is not None:
            ready = last + tccd_l
            if ready > cas_issue:
                cas_issue = ready
        ready = bus_free
        if last_bus_rank is not None and last_bus_rank != rank_index:
            ready += trtrs
        ready -= cas_latency
        if ready > cas_issue:
            cas_issue = ready
        if not is_write:
            ready = write_to_read.get(rank_index, 0)
            if ready > cas_issue:
                cas_issue = ready
        last_cas = cas_issue + (count - 1) * stride
        data_start = cas_issue + cas_latency
        data_end = last_cas + cas_latency + tburst
        if is_write:
            ready = last_cas + write_recovery
            if ready > bank.ready_precharge:
                bank.ready_precharge = ready
            write_to_read[rank_index] = data_end + twtr
        else:
            ready = last_cas + trtp
            if ready > bank.ready_precharge:
                bank.ready_precharge = ready
            if firsts is not None and rank_index not in firsts:
                firsts[rank_index] = data_end
        ready = last_cas + tccd_l
        if ready > bank.ready_cas:
            bank.ready_cas = ready
        last_group_cas[group] = last_cas
        bus_free = data_end
        last_bus_rank = rank_index
        if count > 1:
            row_hits += count - 1
        total_lines += count
        if rank.power_state is not _ACTIVE:
            # ``note_active`` early-exits when the rank is already in
            # active standby (the steady state) or parked; eligibility
            # excluded parked ranks, so this guard elides only no-ops.
            rank.note_active(data_end)
        if data_end > end:
            end = data_end
        if batch is not None:
            event = TraceEvent(
                "span", "burst", CATEGORY_DRAM, channel_name, data_start,
                data_end - data_start,
                {"rank": rank_index, "bank": bank_index, "row": row,
                 "write": write_flag, "lines": count, "outcome": outcome})
            if slots is None:
                batch.append(event)
            else:
                batch[slots[slot_index]] = event
        slot_index += 1
    channel._bus_free = bus_free
    channel._last_bus_rank = last_bus_rank
    channel._last_bus_was_write = is_write
    counters = channel.counters
    counters.activates += activates
    counters.precharges += precharges
    if is_write:
        counters.writes += total_lines
    else:
        counters.reads += total_lines
    counters.row_hits += row_hits
    counters.row_misses += row_misses
    counters.row_conflicts += row_conflicts
    counters.busy_cycles += total_lines * tburst
    return end


def emit_batch(tracer, events: List[TraceEvent]) -> None:
    """Commit a batch of prebuilt span events through ``tracer``.

    Equivalent to calling ``tracer.span(...)`` once per event, in order,
    but appends straight to a :class:`CollectingTracer`'s list and folds
    windows with :func:`_fold_batch` when a :class:`WindowedTracer`
    wraps the stream.  Any other enabled tracer gets per-event ``span``
    calls (exact, just not batched).
    """
    if not events:
        return
    if type(tracer) is WindowedTracer:
        inner = tracer.inner
        if type(inner) is CollectingTracer:
            inner.events.extend(events)
        elif inner.enabled:
            for event in events:
                inner.span(event.name, event.category, event.lane,
                           event.start, event.start + event.duration,
                           **event.args)
        _fold_batch(tracer, events)
    elif type(tracer) is CollectingTracer:
        tracer.events.extend(events)
    elif tracer.enabled:
        for event in events:
            tracer.span(event.name, event.category, event.lane,
                        event.start, event.start + event.duration,
                        **event.args)


def _fold_batch(windowed: WindowedTracer, events: List[TraceEvent]) -> None:
    """Fold a span batch into a :class:`WindowedTracer`'s windows.

    With ``on_flush`` unset (the common case — ``run_simulation`` only
    wires a sink when a controller subscribes), ``_flushed_through``
    stays at -1 forever, so the late-event check and flush scan in
    ``WindowedTracer._fold`` are provably inert; this fold inlines the
    remaining work (histogram record + high-water update).  With a sink
    attached, events route through ``_fold`` one by one to preserve the
    flush/lag semantics exactly.
    """
    if windowed._closed:
        raise RuntimeError("windowed tracer already closed")
    if windowed.on_flush is not None:
        for event in events:
            windowed._fold(event)
        return
    window_cycles = windowed.window_cycles
    windows = windowed._windows
    high_water = windowed._high_water
    histogram = None
    last_index = -1
    last_name = None
    last_category = None
    for event in events:
        start = event.start
        index = start // window_cycles
        name = event.name
        category = event.category
        # A batch is nearly always a run of same-named bursts in one
        # window; comparing the three fields beats building a tuple key
        # per event.
        if index != last_index or name != last_name \
                or category != last_category:
            window = windows.get(index)
            if window is None:
                window = windows[index] = WindowSnapshot(index, window_cycles)
            histogram = window.registry.histogram(category + "/" + name)
            last_index = index
            last_name = name
            last_category = category
        duration = event.duration
        buckets = histogram.buckets
        bucket = duration.bit_length()
        buckets[bucket] = buckets.get(bucket, 0) + 1
        histogram.count += 1
        histogram.total += duration
        if start > high_water:
            high_water = start
    windowed._high_water = high_water
