"""Terminal figure rendering for the reproduction benchmarks.

The paper's results are figures; these helpers draw them as ASCII so a
benchmark run regenerates something visually comparable: horizontal bar
charts for the normalized-execution-time figures (6, 8, 9, 10) and a
down-sampled line chart for the overflow curves (13a).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple


def bar_chart(title: str, rows: Sequence[Tuple[str, float]],
              width: int = 46, unit: str = "",
              reference: float = None) -> str:
    """Horizontal bar chart; optionally marks a reference value with '|'.

    Raises:
        ValueError: on empty input or negative values.
    """
    if not rows:
        raise ValueError("bar chart needs at least one row")
    if any(value < 0 for _, value in rows):
        raise ValueError("bar chart values must be non-negative")
    peak = max(value for _, value in rows)
    if reference is not None:
        peak = max(peak, reference)
    peak = peak or 1.0
    label_width = max(len(label) for label, _ in rows)
    lines = [title]
    for label, value in rows:
        filled = round(value / peak * width)
        bar = "#" * filled
        if reference is not None:
            mark = min(width, round(reference / peak * width))
            if mark >= len(bar):
                bar = bar + " " * (mark - len(bar)) + "|"
        lines.append(f"  {label.ljust(label_width)} {bar} "
                     f"{value:.3g}{unit}")
    return "\n".join(lines)


def grouped_bar_chart(title: str, groups: Sequence[str],
                      series: Dict[str, Sequence[float]],
                      width: int = 40) -> str:
    """One cluster of bars per group — the Figure 8/9 layout.

    Raises:
        ValueError: when a series' length does not match the groups.
    """
    for name, values in series.items():
        if len(values) != len(groups):
            raise ValueError(f"series {name!r} has {len(values)} values "
                             f"for {len(groups)} groups")
    peak = max((value for values in series.values() for value in values),
               default=1.0) or 1.0
    name_width = max(len(name) for name in series)
    lines = [title]
    for index, group in enumerate(groups):
        lines.append(f"  {group}")
        for name, values in series.items():
            filled = round(values[index] / peak * width)
            lines.append(f"    {name.ljust(name_width)} "
                         f"{'#' * filled} {values[index]:.3g}")
    return "\n".join(lines)


def line_chart(title: str, series: Dict[str, List[Tuple[float, float]]],
               width: int = 60, height: int = 12) -> str:
    """Down-sampled multi-series line chart (Figure 13a's curves).

    Each series is a list of (x, y) points; y is assumed in [0, 1] unless
    larger values force rescaling.
    """
    if not series or not any(series.values()):
        raise ValueError("line chart needs at least one point")
    xs = [x for points in series.values() for x, _ in points]
    ys = [y for points in series.values() for _, y in points]
    x_low, x_high = min(xs), max(xs)
    y_high = max(1.0, max(ys))
    x_span = (x_high - x_low) or 1
    grid = [[" "] * width for _ in range(height)]
    markers = "abcdefghij"
    legend = []
    for index, (name, points) in enumerate(sorted(series.items())):
        marker = markers[index % len(markers)]
        legend.append(f"{marker}={name}")
        for x, y in points:
            column = round((x - x_low) / x_span * (width - 1))
            row = height - 1 - round(y / y_high * (height - 1))
            grid[row][column] = marker
    lines = [title]
    for row_index, row in enumerate(grid):
        level = (height - 1 - row_index) / (height - 1) * y_high
        lines.append(f"  {level:4.2f} |" + "".join(row))
    lines.append("       +" + "-" * width)
    lines.append(f"        {x_low:<{width // 2}}{x_high:>{width // 2}}")
    lines.append("  " + "  ".join(legend))
    return "\n".join(lines)
