"""Rank model: banks, ACT pacing (tRRD/tFAW), refresh, and power states.

The rank is the granularity of the paper's low-power technique: the SDIMM
lays one ORAM subtree out per rank and keeps every rank except the active
one in power-down, paying a short exit latency that hides under the long
``accessORAM`` operation.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List

from repro.dram.bank import Bank, ScaledTiming
from repro.dram.commands import PowerState
from repro.utils.memo import REFERENCE_CORE

#: States note_activity leaves untouched (the low-power manager owns them).
_PARKED = (PowerState.POWER_DOWN, PowerState.SELF_REFRESH)


class Rank:
    """One rank: a set of banks plus rank-global constraints and state."""

    __slots__ = ("_t", "banks", "_act_history", "_last_act_time",
                 "refresh_enabled", "_next_refresh_due", "power_state",
                 "_state_since", "state_residency", "refresh_count",
                 "power_down_exits")

    def __init__(self, timing: ScaledTiming, banks_per_rank: int,
                 refresh_enabled: bool = False):
        self._t = timing
        self.banks: List[Bank] = [Bank(timing) for _ in range(banks_per_rank)]
        self._act_history: deque = deque(maxlen=4)
        self._last_act_time = -(10 ** 9)
        self.refresh_enabled = refresh_enabled
        self._next_refresh_due = timing.trefi
        self.power_state = PowerState.PRECHARGE_STANDBY
        self._state_since = 0
        self.state_residency: Dict[PowerState, int] = {
            state: 0 for state in PowerState}
        self.refresh_count = 0
        self.power_down_exits = 0

    # ------------------------------------------------------------------
    # ACT pacing
    # ------------------------------------------------------------------

    def earliest_activate(self, candidate: int) -> int:
        """Earliest time >= ``candidate`` an ACT may issue on this rank."""
        earliest = max(candidate, self._last_act_time + self._t.trrd)
        if len(self._act_history) == self._act_history.maxlen:
            earliest = max(earliest, self._act_history[0] + self._t.tfaw)
        return earliest

    def record_activate(self, issue_time: int) -> None:
        self._act_history.append(issue_time)
        self._last_act_time = issue_time

    # ------------------------------------------------------------------
    # Refresh
    # ------------------------------------------------------------------

    def maybe_refresh(self, now: int) -> int:
        """Perform any due refreshes; return the post-refresh ready time.

        Lazy model: a refresh that fell due within the last tREFI blocks
        the incoming access for tRFC (it is executing "now"); older missed
        refreshes ran in the background while the rank sat idle and only
        count toward statistics.  Under saturation accesses arrive densely,
        so effectively every refresh steals tRFC of channel time — the
        behaviour a cycle-accurate scheduler shows.  With refresh disabled
        this is a no-op returning ``now``.
        """
        if not self.refresh_enabled:
            return now
        horizon = now - self._t.trefi
        if self._next_refresh_due < horizon:
            missed = (horizon - self._next_refresh_due) // self._t.trefi + 1
            self.refresh_count += missed
            self._next_refresh_due += missed * self._t.trefi
        ready = now
        while self._next_refresh_due <= ready:
            self._next_refresh_due += self._t.trefi
            ready += self._t.trfc
            self.refresh_count += 1
        if ready != now:
            for bank in self.banks:
                bank.block_until(ready)
        return ready

    # ------------------------------------------------------------------
    # Power states
    # ------------------------------------------------------------------

    def _transition(self, new_state: PowerState, now: int) -> None:
        elapsed = max(0, now - self._state_since)
        self.state_residency[self.power_state] += elapsed
        self.power_state = new_state
        self._state_since = max(now, self._state_since)

    def enter_power_down(self, now: int) -> None:
        """CKE low.  Only legal with all banks precharged; the low-power
        manager precharges before parking a rank."""
        if self.power_state == PowerState.POWER_DOWN:
            return
        for bank in self.banks:
            bank.open_row = None
        self._transition(PowerState.POWER_DOWN, now)

    def enter_self_refresh(self, now: int) -> None:
        if self.power_state == PowerState.SELF_REFRESH:
            return
        for bank in self.banks:
            bank.open_row = None
        self._transition(PowerState.SELF_REFRESH, now)

    def wake(self, now: int) -> int:
        """Exit any low-power state; return the time the rank is usable.

        Parked ranks refresh themselves (DDR3 self-refresh / power-down
        with internal refresh), so missed external refreshes are forgiven:
        the refresh schedule restarts from the wake time.
        """
        if self.power_state == PowerState.POWER_DOWN:
            ready = now + self._t.txp
            self.power_down_exits += 1
        elif self.power_state == PowerState.SELF_REFRESH:
            ready = now + self._t.txpdll
            self.power_down_exits += 1
        else:
            return now
        self._transition(PowerState.PRECHARGE_STANDBY, ready)
        self._next_refresh_due = max(self._next_refresh_due,
                                     ready + self._t.trefi)
        for bank in self.banks:
            bank.block_until(ready)
        return ready

    def note_activity(self, now: int) -> None:
        """Track standby-vs-active residency as accesses come and go."""
        any_open = any(bank.open_row is not None for bank in self.banks)
        target = (PowerState.ACTIVE_STANDBY if any_open
                  else PowerState.PRECHARGE_STANDBY)
        if self.power_state in _PARKED:
            return
        if self.power_state != target:
            self._transition(target, now)

    def note_active(self, now: int) -> None:
        """:meth:`note_activity` for call sites that just opened a row.

        Every access path calls this right after a CAS, when the touched
        bank's row is guaranteed open — so the bank scan always resolves
        to ACTIVE_STANDBY and can be skipped.  Residency bookkeeping is
        identical to :meth:`note_activity`.
        """
        if REFERENCE_CORE:
            self.note_activity(now)
            return
        state = self.power_state
        if state is PowerState.ACTIVE_STANDBY or state in _PARKED:
            return
        self._transition(PowerState.ACTIVE_STANDBY, now)

    def finalize(self, end_time: int) -> None:
        """Close out state residency at the end of simulation."""
        self._transition(self.power_state, end_time)
