"""DRAM command and state vocabulary shared across the timing model."""

from __future__ import annotations

import enum


class DramCommand(enum.Enum):
    """The DDR3 commands the timing model issues."""

    ACTIVATE = "ACT"
    PRECHARGE = "PRE"
    READ = "RD"
    WRITE = "WR"
    REFRESH = "REF"
    POWER_DOWN_ENTER = "PDE"
    POWER_DOWN_EXIT = "PDX"
    SELF_REFRESH_ENTER = "SRE"
    SELF_REFRESH_EXIT = "SRX"


class PowerState(enum.Enum):
    """Rank power states tracked for background-energy accounting."""

    ACTIVE_STANDBY = "active"          # at least one bank open, clocks on
    PRECHARGE_STANDBY = "standby"      # all banks closed, clocks on
    POWER_DOWN = "power-down"          # CKE low; the low-power scheme's state
    SELF_REFRESH = "self-refresh"


class RowBufferOutcome(enum.Enum):
    """Classification of one column access against the bank's open row."""

    HIT = "hit"            # row already open: CAS only
    MISS = "miss"          # bank idle: RAS + CAS
    CONFLICT = "conflict"  # different row open: PRE + RAS + CAS
