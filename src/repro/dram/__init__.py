"""Cycle-level DDR3 memory-system model (the USIMM-like substrate).

The paper evaluates on USIMM, a trace-driven cycle-accurate simulator.  This
package provides the equivalent substrate: banks and ranks with full DDR3
timing state machines, channels with shared command/data buses, an FR-FCFS
scheduler with write-queue draining, configurable address interleaving, and
rank power-state tracking for the energy model.

The model is event-driven rather than cycle-ticked: every component exposes
"earliest time this command may issue" arithmetic, so scheduling a request
costs O(1) instead of O(cycles).  The ordering decisions (row hits first,
then oldest; reads before writes until the write queue hits its high
watermark) match USIMM's FR-FCFS configuration from the paper.
"""

from repro.dram.address import AddressMapper, DecodedAddress
from repro.dram.bank import Bank
from repro.dram.channel import Channel, MemoryRequest
from repro.dram.commands import DramCommand, PowerState
from repro.dram.rank import Rank
from repro.dram.scheduler import FrFcfsScheduler

__all__ = [
    "AddressMapper",
    "Bank",
    "Channel",
    "DecodedAddress",
    "DramCommand",
    "FrFcfsScheduler",
    "MemoryRequest",
    "PowerState",
    "Rank",
]
