"""FR-FCFS memory scheduling with write-queue draining (Section IV-A).

The paper's backend uses an FR-FCFS scheduler where "read requests are
prioritized until the write queue size exceeds 40".  This module implements
that policy over a :class:`~repro.dram.channel.Channel`: first-ready (row
hits) first, then oldest; reads have priority; once the write queue crosses
its high watermark the scheduler drains writes down to the low watermark.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.config import SchedulerConfig
from repro.dram.channel import AccessTiming, Channel, MemoryRequest
from repro.obs.tracer import CATEGORY_DRAM, NULL_TRACER, Tracer


class FrFcfsScheduler:
    """Request-level front door to one channel."""

    def __init__(self, channel: Channel, config: Optional[SchedulerConfig] = None,
                 tracer: Tracer = NULL_TRACER):
        self.channel = channel
        self.config = config or SchedulerConfig()
        self.tracer = tracer
        self.read_queue: List[MemoryRequest] = []
        self.write_queue: List[MemoryRequest] = []
        self._draining = False
        self.stats_drain_episodes = 0

    def enqueue(self, request: MemoryRequest) -> None:
        """Add a request.  Writes are posted (fire-and-forget) by callers."""
        if request.is_write:
            self.write_queue.append(request)
        else:
            self.read_queue.append(request)
        if self.tracer.enabled:
            self.tracer.counter("queue_depth", CATEGORY_DRAM,
                                self.channel.name, request.arrival_time,
                                self.pending)

    @property
    def pending(self) -> int:
        return len(self.read_queue) + len(self.write_queue)

    def has_work(self) -> bool:
        return self.pending > 0

    @property
    def write_queue_full(self) -> bool:
        return len(self.write_queue) >= self.config.write_queue_capacity

    def _update_drain_mode(self) -> None:
        if self._draining:
            if len(self.write_queue) <= self.config.write_drain_low:
                self._draining = False
        elif len(self.write_queue) > self.config.write_drain_high:
            self._draining = True
            self.stats_drain_episodes += 1

    def _pick(self, queue: List[MemoryRequest]) -> MemoryRequest:
        """FR-FCFS: oldest row-hit if any, else the oldest request."""
        for request in queue:
            rank = self.channel.ranks[request.address.rank]
            bank = rank.banks[request.address.bank]
            if bank.open_row == request.address.row:
                queue.remove(request)
                return request
        return queue.pop(0)

    def issue_next(self, now: int) -> Tuple[MemoryRequest, AccessTiming]:
        """Select and issue the best request; returns it with its timing.

        Raises:
            LookupError: if both queues are empty.
        """
        if not self.has_work():
            raise LookupError("no queued requests to issue")
        self._update_drain_mode()
        if self.read_queue and not self._draining:
            request = self._pick(self.read_queue)
        elif self.write_queue:
            request = self._pick(self.write_queue)
        else:
            request = self._pick(self.read_queue)
        timing = self.channel.schedule_access(
            request.address, request.is_write, max(now, request.arrival_time))
        request.completion_time = timing.data_end
        if self.tracer.enabled:
            self.tracer.counter("queue_depth", CATEGORY_DRAM,
                                self.channel.name, timing.cas_issue,
                                self.pending)
            self.tracer.instant("issue", CATEGORY_DRAM, self.channel.name,
                                timing.cas_issue,
                                write=int(request.is_write),
                                outcome=timing.outcome.value,
                                wait=timing.cas_issue - request.arrival_time)
        return request, timing
