"""Per-bank DDR3 state machine.

A bank tracks its open row and the earliest cycle at which each command
class may issue.  All times are in simulator cycles (the channel scales raw
DDR parameters into the simulation clock domain before constructing banks).
"""

from __future__ import annotations

from typing import Optional

from repro.dram.commands import RowBufferOutcome


class Bank:
    """One DRAM bank: open-row state plus per-command ready times."""

    __slots__ = ("_t", "open_row", "ready_activate", "ready_cas",
                 "ready_precharge")

    def __init__(self, timing_scaled: "ScaledTiming"):
        self._t = timing_scaled
        self.open_row: Optional[int] = None
        self.ready_activate = 0
        self.ready_cas = 0
        self.ready_precharge = 0

    def classify(self, row: int) -> RowBufferOutcome:
        """How a column access to ``row`` interacts with the row buffer."""
        if self.open_row is None:
            return RowBufferOutcome.MISS
        if self.open_row == row:
            return RowBufferOutcome.HIT
        return RowBufferOutcome.CONFLICT

    def precharge(self, issue_time: int) -> None:
        """Issue PRE at ``issue_time``; the bank may activate after tRP."""
        self.open_row = None
        self.ready_activate = max(self.ready_activate,
                                  issue_time + self._t.trp)

    def activate(self, issue_time: int, row: int) -> None:
        """Issue ACT at ``issue_time``, opening ``row``."""
        self.open_row = row
        self.ready_cas = issue_time + self._t.trcd
        self.ready_precharge = issue_time + self._t.tras
        self.ready_activate = issue_time + self._t.trc

    def read(self, issue_time: int) -> None:
        """Issue RD at ``issue_time`` (row must be open).

        Same-bank CAS pacing uses tCCD_L: accesses to one bank are always
        within one bank group (equal to tCCD on DDR3).
        """
        self.ready_precharge = max(self.ready_precharge,
                                   issue_time + self._t.trtp)
        self.ready_cas = max(self.ready_cas, issue_time + self._t.tccd_l)

    def write(self, issue_time: int) -> None:
        """Issue WR at ``issue_time`` (row must be open)."""
        write_recovery = issue_time + self._t.tcwl + self._t.tburst + self._t.twr
        self.ready_precharge = max(self.ready_precharge, write_recovery)
        self.ready_cas = max(self.ready_cas, issue_time + self._t.tccd_l)

    def block_until(self, time: int) -> None:
        """Freeze the bank until ``time`` (refresh / power-mode exits)."""
        self.open_row = None
        self.ready_activate = max(self.ready_activate, time)
        self.ready_cas = max(self.ready_cas, time)
        self.ready_precharge = max(self.ready_precharge, time)


class ScaledTiming:
    """DDR timing parameters scaled into simulator cycles.

    The simulation runs in CPU cycles; DDR3-1600's memory clock is half the
    1.6 GHz core clock (Table II), so every parameter is multiplied by
    ``scale`` exactly once, here, instead of sprinkling conversions through
    the state machines.
    """

    _FIELDS = ("trcd", "trp", "tcl", "tcwl", "tras", "trc", "tburst", "tccd",
               "tccd_l", "trtp", "twr", "twtr", "trtrs", "tfaw", "trrd",
               "trefi", "trfc", "txp", "txpdll")

    __slots__ = ("scale",) + _FIELDS

    def __init__(self, timing, scale: int):
        if scale < 1:
            raise ValueError("scale must be at least 1")
        self.scale = scale
        for name in self._FIELDS:
            setattr(self, name, getattr(timing, name) * scale)
