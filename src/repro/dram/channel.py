"""Channel model: shared command/data buses over a set of ranks.

A :class:`Channel` is used both for the CPU's main memory channels and for
each SDIMM's *internal* channel between the secure buffer and its DRAM
chips (the buffer has the same pin budget as an LRDIMM buffer, so the
internal channel has the same width and speed).  The ``on_dimm`` flag tags
transfers for the energy model, which charges on-DIMM I/O far less than
cross-channel I/O.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, NamedTuple, Optional

from repro.config import DramOrganization, DramTiming
from repro.dram.address import DecodedAddress
from repro.dram.bank import ScaledTiming
from repro.dram.commands import PowerState, RowBufferOutcome
from repro.dram.rank import Rank
from repro.obs.tracer import CATEGORY_DRAM, NULL_TRACER, Tracer
from repro.utils.memo import REFERENCE_CORE

_request_ids = itertools.count()

_PARKED = (PowerState.POWER_DOWN, PowerState.SELF_REFRESH)
_HIT = RowBufferOutcome.HIT
_CONFLICT = RowBufferOutcome.CONFLICT


@dataclass
class MemoryRequest:
    """One cache-line request presented to a channel scheduler."""

    address: DecodedAddress
    is_write: bool
    arrival_time: int
    request_id: int = field(default_factory=lambda: next(_request_ids))
    completion_time: Optional[int] = None


class AccessTiming(NamedTuple):
    """When one column access actually happened on the channel.

    A NamedTuple rather than a frozen dataclass: one is built per
    scheduled run and tuple construction skips the per-field
    ``object.__setattr__`` a frozen dataclass pays.
    """

    cas_issue: int
    data_start: int
    data_end: int
    outcome: RowBufferOutcome

    @property
    def latency_from(self) -> int:
        return self.data_end


class Channel:
    """One DDR3 channel: ranks, bus arbitration, and event counters."""

    def __init__(self, timing: DramTiming, organization: DramOrganization,
                 scale: int = 2, refresh_enabled: bool = False,
                 on_dimm: bool = False, name: str = "channel",
                 tracer: Tracer = NULL_TRACER):
        self.name = name
        self.tracer = tracer
        self.on_dimm = on_dimm
        self.timing = ScaledTiming(timing, scale)
        self.organization = organization
        self.ranks = [Rank(self.timing, organization.banks_per_rank,
                           refresh_enabled)
                      for _ in range(organization.ranks_per_channel)]
        self._bus_free = 0
        self._last_bus_rank: Optional[int] = None
        self._last_bus_was_write = False
        self._write_to_read_ready: Dict[int, int] = {}
        # DDR4 bank-group CAS pacing: last CAS time per (rank, group)
        self._banks_per_group = (organization.banks_per_rank //
                                 max(1, organization.bank_groups))
        self._last_group_cas: Dict[tuple, int] = {}
        self._row_lines = organization.row_bytes // 64
        self.counters = ChannelCounters()

    def _bank_group(self, address: DecodedAddress) -> tuple:
        return (address.rank, address.bank // self._banks_per_group)

    def _group_cas_ready(self, address: DecodedAddress) -> int:
        """Earliest CAS honouring same-bank-group tCCD_L spacing."""
        last = self._last_group_cas.get(self._bank_group(address))
        if last is None:
            return 0
        return last + self.timing.tccd_l

    def _note_cas(self, address: DecodedAddress, issue_time: int) -> None:
        self._last_group_cas[self._bank_group(address)] = issue_time

    # ------------------------------------------------------------------
    # Core scheduling primitive
    # ------------------------------------------------------------------

    def schedule_access(self, address: DecodedAddress, is_write: bool,
                        earliest: int) -> AccessTiming:
        """Schedule one column access no earlier than ``earliest``.

        Applies the full DDR3 constraint chain — power-state exit, overdue
        refresh, PRE/ACT as the row buffer demands, tRRD/tFAW pacing,
        CAS-to-data latency, data-bus occupancy, rank-to-rank switch and
        write-to-read turnaround — and commits the resulting state.
        """
        rank = self.ranks[address.rank]
        start = max(earliest, 0)
        start = rank.wake(start)
        start = rank.maybe_refresh(start)
        bank = rank.banks[address.bank]

        outcome = bank.classify(address.row)
        if outcome is RowBufferOutcome.CONFLICT:
            precharge_time = max(start, bank.ready_precharge)
            bank.precharge(precharge_time)
            self.counters.precharges += 1
        if bank.open_row is None:
            activate_time = max(start, bank.ready_activate)
            activate_time = rank.earliest_activate(activate_time)
            bank.activate(activate_time, address.row)
            rank.record_activate(activate_time)
            self.counters.activates += 1

        cas_latency = self.timing.tcwl if is_write else self.timing.tcl
        cas_issue = max(start, bank.ready_cas,
                        self._group_cas_ready(address))
        cas_issue = max(cas_issue, self._bus_ready(address.rank) - cas_latency)
        if not is_write:
            cas_issue = max(cas_issue,
                            self._write_to_read_ready.get(address.rank, 0))

        data_start = cas_issue + cas_latency
        data_end = data_start + self.timing.tburst

        if is_write:
            bank.write(cas_issue)
            self._write_to_read_ready[address.rank] = (
                data_end + self.timing.twtr)
            self.counters.writes += 1
        else:
            bank.read(cas_issue)
            self.counters.reads += 1
        self._note_cas(address, cas_issue)

        self._bus_free = data_end
        self._last_bus_rank = address.rank
        self._last_bus_was_write = is_write
        self.counters.note_outcome(outcome)
        self.counters.busy_cycles += self.timing.tburst
        rank.note_active(data_end)
        if self.tracer.enabled:
            self.tracer.span("burst", CATEGORY_DRAM, self.name,
                             data_start, data_end, rank=address.rank,
                             bank=address.bank, row=address.row,
                             write=int(is_write), lines=1,
                             outcome=outcome.value)
        return AccessTiming(cas_issue, data_start, data_end, outcome)

    def schedule_run(self, address: DecodedAddress, count: int,
                     is_write: bool, earliest: int) -> AccessTiming:
        """Schedule ``count`` back-to-back column accesses in one row.

        The run starts at ``address`` and streams consecutive columns —
        exactly what the subtree-packed ORAM layout produces.  Equivalent to
        ``count`` calls of :meth:`schedule_access` (one potential PRE/ACT,
        then CAS streaming at the burst rate) but O(1), which is what makes
        a pure-Python path access affordable.

        This is the hottest function of a timing-tier run, so the body
        trades the helper-per-constraint style of
        :meth:`_schedule_run_reference` for hoisted locals and inline
        comparisons.  Both versions apply the same constraint chain and
        are cycle-identical (``tests/test_refcore.py`` checks them against
        each other; ``REPRO_REFERENCE_CORE=1`` selects the reference one).
        """
        if REFERENCE_CORE:
            return self._schedule_run_reference(address, count, is_write,
                                                earliest)
        if count < 1:
            raise ValueError("run must cover at least one line")
        if address.column + count > self._row_lines:
            raise ValueError("run crosses a row boundary")
        t = self.timing
        counters = self.counters
        rank_index = address.rank
        rank = self.ranks[rank_index]
        start = earliest if earliest > 0 else 0
        if rank.power_state in _PARKED:
            start = rank.wake(start)
        if rank.refresh_enabled:
            start = rank.maybe_refresh(start)
        bank = rank.banks[address.bank]

        row = address.row
        if bank.open_row == row:
            outcome = _HIT
            counters.row_hits += 1
        else:
            outcome = bank.classify(row)
            if outcome is _CONFLICT:
                ready = bank.ready_precharge
                bank.precharge(start if start > ready else ready)
                counters.precharges += 1
                counters.row_conflicts += 1
            else:
                counters.row_misses += 1
            ready = bank.ready_activate
            activate_time = rank.earliest_activate(
                start if start > ready else ready)
            bank.activate(activate_time, row)
            rank.record_activate(activate_time)
            counters.activates += 1

        cas_latency = t.tcwl if is_write else t.tcl
        cas_issue = start
        ready = bank.ready_cas
        if ready > cas_issue:
            cas_issue = ready
        group = (rank_index, address.bank // self._banks_per_group)
        last_group_cas = self._last_group_cas
        last = last_group_cas.get(group)
        if last is not None:
            ready = last + t.tccd_l
            if ready > cas_issue:
                cas_issue = ready
        ready = self._bus_free
        last_bus_rank = self._last_bus_rank
        if last_bus_rank is not None and last_bus_rank != rank_index:
            ready += t.trtrs
        ready -= cas_latency
        if ready > cas_issue:
            cas_issue = ready
        if not is_write:
            ready = self._write_to_read_ready.get(rank_index, 0)
            if ready > cas_issue:
                cas_issue = ready

        tburst = t.tburst
        tccd_l = t.tccd_l
        stride = tburst if tburst > tccd_l else tccd_l
        data_start = cas_issue + cas_latency
        data_end = data_start + (count - 1) * stride + tburst
        last_cas = cas_issue + (count - 1) * stride

        if is_write:
            bank.write(last_cas)
            self._write_to_read_ready[rank_index] = data_end + t.twtr
            counters.writes += count
        else:
            bank.read(last_cas)
            counters.reads += count
        last_group_cas[group] = last_cas
        self._bus_free = data_end
        self._last_bus_rank = rank_index
        self._last_bus_was_write = is_write
        if count > 1:
            counters.row_hits += count - 1
        counters.busy_cycles += count * tburst
        rank.note_active(data_end)
        if self.tracer.enabled:
            self.tracer.span("burst", CATEGORY_DRAM, self.name,
                             data_start, data_end, rank=rank_index,
                             bank=address.bank, row=row,
                             write=int(is_write), lines=count,
                             outcome=outcome.value)
        return AccessTiming(cas_issue, data_start, data_end, outcome)

    def _schedule_run_reference(self, address: DecodedAddress, count: int,
                                is_write: bool, earliest: int) -> AccessTiming:
        """Reference :meth:`schedule_run`: one helper per DDR constraint.

        Kept as the readable specification of the constraint chain and as
        the baseline side of the hot-path benchmark
        (``benchmarks/bench_speedup.py``).
        """
        if count < 1:
            raise ValueError("run must cover at least one line")
        if address.column + count > self.organization.row_bytes // 64:
            raise ValueError("run crosses a row boundary")
        rank = self.ranks[address.rank]
        start = max(earliest, 0)
        start = rank.wake(start)
        start = rank.maybe_refresh(start)
        bank = rank.banks[address.bank]

        outcome = bank.classify(address.row)
        if outcome is RowBufferOutcome.CONFLICT:
            precharge_time = max(start, bank.ready_precharge)
            bank.precharge(precharge_time)
            self.counters.precharges += 1
        if bank.open_row is None:
            activate_time = max(start, bank.ready_activate)
            activate_time = rank.earliest_activate(activate_time)
            bank.activate(activate_time, address.row)
            rank.record_activate(activate_time)
            self.counters.activates += 1

        cas_latency = self.timing.tcwl if is_write else self.timing.tcl
        cas_issue = max(start, bank.ready_cas,
                        self._group_cas_ready(address))
        cas_issue = max(cas_issue, self._bus_ready(address.rank) - cas_latency)
        if not is_write:
            cas_issue = max(cas_issue,
                            self._write_to_read_ready.get(address.rank, 0))

        # within one bank, CAS pace at max(tBURST, tCCD_L): DDR4 streaming
        # inside one bank group leaves bubbles (DDR3: equal, gapless)
        stride = max(self.timing.tburst, self.timing.tccd_l)
        data_start = cas_issue + cas_latency
        data_end = data_start + (count - 1) * stride + self.timing.tburst
        last_cas = cas_issue + (count - 1) * stride

        if is_write:
            bank.write(last_cas)
            self._write_to_read_ready[address.rank] = (
                data_end + self.timing.twtr)
            self.counters.writes += count
        else:
            bank.read(last_cas)
            self.counters.reads += count
        self._note_cas(address, last_cas)
        self._bus_free = data_end
        self._last_bus_rank = address.rank
        self._last_bus_was_write = is_write
        self.counters.note_outcome(outcome)
        if count > 1:
            self.counters.row_hits += count - 1
        self.counters.busy_cycles += count * self.timing.tburst
        rank.note_activity(data_end)
        if self.tracer.enabled:
            self.tracer.span("burst", CATEGORY_DRAM, self.name,
                             data_start, data_end, rank=address.rank,
                             bank=address.bank, row=address.row,
                             write=int(is_write), lines=count,
                             outcome=outcome.value)
        return AccessTiming(cas_issue, data_start, data_end, outcome)

    def _bus_ready(self, rank_index: int) -> int:
        """Earliest time a new data burst may start on the shared bus."""
        ready = self._bus_free
        if self._last_bus_rank is not None and self._last_bus_rank != rank_index:
            ready += self.timing.trtrs
        return ready

    # ------------------------------------------------------------------
    # Convenience for protocol bursts
    # ------------------------------------------------------------------

    def schedule_lines(self, addresses, is_write: bool,
                       earliest: int) -> AccessTiming:
        """Schedule a burst of line accesses; return the last access timing.

        Used by ORAM backends for path reads/writes: each line flows through
        :meth:`schedule_access`, so row-buffer locality of the subtree layout
        shows up naturally as CAS-only hits.
        """
        last: Optional[AccessTiming] = None
        for address in addresses:
            last = self.schedule_access(address, is_write, earliest)
        if last is None:
            raise ValueError("schedule_lines requires at least one address")
        return last

    def command_slot(self, earliest: int) -> int:
        """Occupy one command-bus slot (PROBE polling); returns its time.

        Short commands ride the command/address bus.  We charge them a
        single memory-clock cycle of bus occupancy, serialized against data
        bursts only loosely (command and data buses are separate wires).
        """
        slot = max(earliest, self._bus_free - self.timing.tburst)
        self.counters.command_slots += 1
        return slot

    @property
    def bus_free_at(self) -> int:
        return self._bus_free

    def finalize(self, end_time: int) -> None:
        """Close out rank residency accounting at simulation end."""
        for rank in self.ranks:
            rank.note_activity(end_time)
            rank.finalize(end_time)


class ChannelCounters:
    """Event counts the energy model and reports consume."""

    def __init__(self):
        self.activates = 0
        self.precharges = 0
        self.reads = 0
        self.writes = 0
        self.row_hits = 0
        self.row_misses = 0
        self.row_conflicts = 0
        self.busy_cycles = 0
        self.command_slots = 0

    def note_outcome(self, outcome: RowBufferOutcome) -> None:
        if outcome is RowBufferOutcome.HIT:
            self.row_hits += 1
        elif outcome is RowBufferOutcome.MISS:
            self.row_misses += 1
        else:
            self.row_conflicts += 1

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def row_hit_rate(self) -> float:
        return self.row_hits / self.accesses if self.accesses else 0.0

    def as_dict(self) -> Dict[str, int]:
        return {
            "activates": self.activates,
            "precharges": self.precharges,
            "reads": self.reads,
            "writes": self.writes,
            "row_hits": self.row_hits,
            "row_misses": self.row_misses,
            "row_conflicts": self.row_conflicts,
            "busy_cycles": self.busy_cycles,
            "command_slots": self.command_slots,
        }
