"""Physical-address interleaving for one memory channel.

Maps a cache-line address to (rank, bank, row, column) coordinates.  The
non-secure baseline uses the classic row:rank:bank:column interleaving so
consecutive lines stream through one row buffer while independent rows
spread over banks and ranks.  The ORAM layouts in :mod:`repro.oram.layout`
bypass this mapper and place buckets explicitly; they still produce
:class:`DecodedAddress` coordinates so both paths share the timing model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.config import DramOrganization
from repro.utils.bitops import extract_bits, log2_exact
from repro.utils.memo import DEFAULT_MEMO_CAP, MEMO_ENABLED


@dataclass(frozen=True)
class DecodedAddress:
    """Coordinates of one cache line inside a channel."""

    rank: int
    bank: int
    row: int
    column: int

    def same_row(self, other: "DecodedAddress") -> bool:
        return (self.rank, self.bank, self.row) == (
            other.rank, other.bank, other.row)


class AddressMapper:
    """Line-address to coordinates mapping with a chosen interleaving.

    ``scheme`` orders the fields from least to most significant bit of the
    line address.  The default ``("column", "bank", "rank", "row")`` keeps a
    row's worth of lines contiguous (column fastest) and interleaves banks
    then ranks before moving to the next row — the layout used by the
    baseline simulator.
    """

    SCHEMES = {
        "row:rank:bank:col": ("column", "bank", "rank", "row"),
        "row:col:rank:bank": ("bank", "rank", "column", "row"),
        "row:bank:rank:col": ("column", "rank", "bank", "row"),
    }

    def __init__(self, organization: DramOrganization, line_bytes: int = 64,
                 scheme: str = "row:rank:bank:col"):
        if scheme not in self.SCHEMES:
            raise ValueError(f"unknown interleaving scheme {scheme!r}; "
                             f"choose from {sorted(self.SCHEMES)}")
        self.organization = organization
        self.line_bytes = line_bytes
        self.scheme = scheme
        self._field_bits = {
            "column": log2_exact(organization.row_bytes // line_bytes),
            "bank": log2_exact(organization.banks_per_rank),
            "rank": log2_exact(organization.ranks_per_channel),
            "row": log2_exact(organization.rows_per_bank),
        }
        self._order = self.SCHEMES[scheme]
        # decode() dominates the non-secure baseline's per-miss cost; the
        # mapping is pure, so memoize it (bounded: clears when full).
        self._decode_cache: Dict[int, DecodedAddress] = {}

    @property
    def lines_per_channel(self) -> int:
        return self.organization.channel_bytes // self.line_bytes

    def decode(self, line_address: int) -> DecodedAddress:
        """Split a line address into channel coordinates."""
        cached = self._decode_cache.get(line_address)
        if cached is not None:
            return cached
        if not 0 <= line_address < self.lines_per_channel:
            raise ValueError(
                f"line address {line_address} outside channel "
                f"(capacity {self.lines_per_channel} lines)")
        fields = {}
        low = 0
        for name in self._order:
            width = self._field_bits[name]
            fields[name] = extract_bits(line_address, low, width)
            low += width
        decoded = DecodedAddress(rank=fields["rank"], bank=fields["bank"],
                                 row=fields["row"], column=fields["column"])
        if MEMO_ENABLED:
            if len(self._decode_cache) >= DEFAULT_MEMO_CAP:
                self._decode_cache.clear()
            self._decode_cache[line_address] = decoded
        return decoded

    def encode(self, decoded: DecodedAddress) -> int:
        """Inverse of :meth:`decode`."""
        values = {"rank": decoded.rank, "bank": decoded.bank,
                  "row": decoded.row, "column": decoded.column}
        line_address = 0
        low = 0
        for name in self._order:
            width = self._field_bits[name]
            value = values[name]
            if value >> width:
                raise ValueError(f"{name}={value} does not fit in {width} bits")
            line_address |= value << low
            low += width
        return line_address
