"""Merkle-tree integrity over ORAM buckets (the Section II-B alternative).

The paper's threat model requires data integrity and names the two
standard tools: Merkle trees and PMMAC.  The system itself adopts PMMAC
(:mod:`repro.oram.integrity`) because its verification cost rides along
with the ORAM counters; this module implements the Merkle alternative so
the trade-off the paper alludes to is measurable:

* a Merkle tree stores one hash per bucket, parent hashes binding children,
  with only the root held on chip — no trusted counter state at all;
* verifying or updating a bucket touches the whole hash path: for a Path
  ORAM access that is *already* a tree path, the classic optimization
  applies — the ORAM path's buckets and their siblings cover every hash
  needed, so the extra memory traffic is the sibling metadata only.

:class:`MerkleBucketStore` drops into :class:`~repro.oram.path_oram.PathOram`
exactly like the PMMAC store, and :func:`integrity_traffic_comparison`
returns the per-access traffic both schemes add (the ablation bench uses
it).
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Dict, Optional, Tuple

from repro.config import OramConfig
from repro.crypto.ctr import CounterModeCipher
from repro.oram.bucket import Bucket
from repro.oram.integrity import IntegrityError
from repro.oram.tree import TreeGeometry

_HASH_BYTES = 16


def _hash(payload: bytes) -> bytes:
    return hashlib.sha256(payload).digest()[:_HASH_BYTES]


_EMPTY_SENTINEL = b"\x00" * _HASH_BYTES


class MerkleBucketStore:
    """Encrypted bucket storage authenticated by a bucket-aligned Merkle tree.

    The hash tree mirrors the ORAM tree: node *i*'s hash covers its
    ciphertext and its children's hashes, so the on-chip state is one
    root hash.  Never-written subtrees carry a sentinel hash, letting the
    tree start empty without materializing 2^L leaves.
    """

    def __init__(self, levels: int, bucket_capacity: int, block_bytes: int,
                 key: bytes):
        self.geometry = TreeGeometry(levels)
        self.bucket_count = self.geometry.bucket_count
        self.bucket_capacity = bucket_capacity
        self.block_bytes = block_bytes
        self._cipher = CounterModeCipher(key)
        self._cells: Dict[int, Tuple[int, bytes]] = {}   # untrusted
        self._hashes: Dict[int, bytes] = {}              # untrusted
        self._root: Optional[bytes] = None               # trusted (on chip)
        self.reads = 0
        self.writes = 0
        self.hash_checks = 0

    # ------------------------------------------------------------------

    def _node_hash(self, index: int) -> bytes:
        return self._hashes.get(index, _EMPTY_SENTINEL)

    def _compute_hash(self, index: int) -> bytes:
        cell = self._cells.get(index)
        body = (cell[1] if cell is not None else b"") + \
            (cell[0].to_bytes(8, "little") if cell is not None else b"")
        children = self.geometry.children(index)
        child_hashes = b"".join(self._node_hash(child)
                                for child in children)
        if cell is None and all(self._node_hash(child) == _EMPTY_SENTINEL
                                for child in children):
            return _EMPTY_SENTINEL
        return _hash(index.to_bytes(8, "little") + body + child_hashes)

    def _verify_path_to_root(self, index: int) -> None:
        """Check every hash from ``index`` up to the trusted root."""
        if self._root is None:
            return  # nothing written yet
        node = index
        while True:
            self.hash_checks += 1
            if not hmac.compare_digest(self._compute_hash(node),
                                       self._node_hash(node)):
                raise IntegrityError(
                    f"Merkle hash mismatch at node {node} "
                    f"(verifying bucket {index})",
                    index=index, kind="hash")
            if node == 0:
                if not hmac.compare_digest(self._node_hash(0), self._root):
                    raise IntegrityError(
                        f"Merkle root mismatch verifying bucket {index} "
                        f"(replay?)", index=index, kind="root")
                return
            node = self.geometry.parent(node)

    def _rehash_to_root(self, index: int) -> None:
        node = index
        while True:
            self._hashes[node] = self._compute_hash(node)
            if node == 0:
                self._root = self._hashes[0]
                return
            node = self.geometry.parent(node)

    # ------------------------------------------------------------------

    def read(self, index: int) -> Bucket:
        """Fetch, verify the hash path, decrypt.

        Raises:
            IntegrityError: on any hash-path or root mismatch.
        """
        self._check(index)
        self.reads += 1
        self._verify_path_to_root(index)
        cell = self._cells.get(index)
        if cell is None:
            return Bucket(self.bucket_capacity, self.block_bytes)
        counter, ciphertext = cell
        plaintext = self._cipher.decrypt(ciphertext, index, counter)
        bucket = Bucket.deserialize(plaintext, self.bucket_capacity,
                                    self.block_bytes)
        bucket.counter = counter
        return bucket

    def write(self, index: int, bucket: Bucket) -> None:
        """Encrypt under a bumped counter, store, rehash to the root.

        The counter lives in the untrusted cell (the hash path authenticates
        it); the caller's bucket object is never mutated.
        """
        self._check(index)
        self.writes += 1
        counter = (self._cells[index][0] + 1 if index in self._cells
                   else 1)
        ciphertext = self._cipher.encrypt(bucket.serialize(), index,
                                          counter)
        self._cells[index] = (counter, ciphertext)
        self._rehash_to_root(index)

    # ------------------------------------------------------------------
    # adversarial hooks for tests
    # ------------------------------------------------------------------

    def tamper(self, index: int, ciphertext: bytes) -> None:
        counter, _ = self._cells[index]
        self._cells[index] = (counter, ciphertext)

    def replay(self, index: int,
               cell: Tuple[int, bytes], hashes: Dict[int, bytes]) -> None:
        """Put back a captured (cell, hash-path) snapshot — everything an
        adversary controls; the on-chip root is out of reach."""
        self._cells[index] = cell
        self._hashes.update(hashes)

    def snapshot(self, index: int):
        cell = self._cells.get(index)
        if cell is None:
            return None
        node = index
        hashes = {}
        while True:
            hashes[node] = self._node_hash(node)
            if node == 0:
                break
            node = self.geometry.parent(node)
        return cell, hashes

    def _check(self, index: int) -> None:
        if not 0 <= index < self.bucket_count:
            raise ValueError(f"bucket index {index} out of range")


def integrity_traffic_comparison(oram: OramConfig,
                                 cached_levels: int) -> Dict[str, float]:
    """Extra memory traffic per accessORAM for each integrity scheme.

    PMMAC: the MAC and counter ride inside the bucket's metadata line —
    zero additional lines.  Merkle: each bucket on the path needs its
    sibling's hash to recompute the parent, ~one extra hash per level;
    hashes pack ``64 / _HASH_BYTES`` per line.
    """
    levels_in_memory = oram.levels - cached_levels
    hashes_per_line = oram.block_bytes // _HASH_BYTES
    merkle_lines = 2 * levels_in_memory / hashes_per_line  # read + write
    baseline = 2 * oram.lines_per_bucket * levels_in_memory
    return {
        "baseline_lines": float(baseline),
        "pmmac_extra_lines": 0.0,
        "merkle_extra_lines": merkle_lines,
        "merkle_overhead_fraction": merkle_lines / baseline,
    }
