"""The PosMap Lookaside Buffer front end (Freecursive ORAM, Section II-D).

On every LLC miss, the front end checks the PLB for the PosMap blocks of
ORAM_1 .. ORAM_n that cover the request.  The first hit at level *i* means
the child's leaf is already on chip, so only ORAM_{i-1} .. ORAM_0 need path
accesses; a complete miss walks the whole chain from the on-chip map.
Fetched PosMap blocks enter the PLB; since every access rewrites the entry
it covers, resident PosMap blocks are always dirty, and a PLB eviction adds
one write-back path access for the victim.

This front end is shared by every secure design in the paper: the baseline
Freecursive backend consumes its access list directly, and the SDIMM
designs run it CPU-side to generate ``accessORAM`` commands ("the CPU
manages the frontend of ORAM while SDIMMs accelerate the backend").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.cache.cache import SetAssociativeCache
from repro.config import OramConfig
from repro.utils.bitops import log2_exact

#: PLB keys pack (posmap block address, oram level) — levels must fit 3 bits.
_MAX_POSMAP_LEVELS = 7


@dataclass(frozen=True)
class OramAccess:
    """One accessORAM operation the backend must perform."""

    oram_level: int        # 0 = data ORAM, k >= 1 = PosMap ORAM_k
    block_address: int     # block index within that ORAM
    is_writeback: bool     # True for a dirty PLB-eviction write-back


class PlbFrontend:
    """Translates LLC-miss addresses into accessORAM lists via the PLB."""

    def __init__(self, oram: OramConfig, enabled: bool = True):
        if oram.recursive_posmaps > _MAX_POSMAP_LEVELS:
            raise ValueError(f"at most {_MAX_POSMAP_LEVELS} PosMap levels")
        self.oram = oram
        self.posmap_levels = oram.recursive_posmaps
        self._entry_shift = log2_exact(oram.posmap_entries_per_block)
        self.enabled = enabled
        self.plb: Optional[SetAssociativeCache] = None
        if enabled:
            self.plb = SetAssociativeCache(
                capacity_bytes=oram.plb_bytes,
                line_bytes=oram.block_bytes,
                associativity=oram.plb_assoc,
                name="plb")
        self.requests = 0
        self.accesses = 0
        self.plb_hits = 0
        self.writebacks = 0

    # ------------------------------------------------------------------

    def _posmap_block(self, address: int, level: int) -> int:
        return address >> (self._entry_shift * level)

    @staticmethod
    def _key(block_address: int, level: int) -> int:
        return (block_address << 3) | level

    @staticmethod
    def _unkey(key: int) -> "tuple[int, int]":
        return key >> 3, key & 7

    # ------------------------------------------------------------------

    def translate(self, address: int) -> List[OramAccess]:
        """accessORAM operations needed to serve a miss on ``address``.

        The returned list is in issue order: PLB-eviction write-backs first,
        then the PosMap read chain top-down, ending with the data access.
        """
        self.requests = self.requests + 1
        if not self.enabled or self.plb is None:
            chain = [OramAccess(level, self._posmap_block(address, level),
                                False)
                     for level in range(self.posmap_levels, -1, -1)]
            self.accesses += len(chain)
            return chain

        hit_level = self.posmap_levels + 1
        for level in range(1, self.posmap_levels + 1):
            if self.plb.probe(self._key(self._posmap_block(address, level),
                                        level)):
                hit_level = level
                self.plb_hits += 1
                break

        operations: List[OramAccess] = []
        # Fetch the missing PosMap blocks (levels hit_level-1 .. 1) and
        # install them in the PLB, recording dirty evictions.
        for level in range(hit_level - 1, 0, -1):
            block = self._posmap_block(address, level)
            result = self.plb.access(self._key(block, level), is_write=True)
            if result.victim_dirty and result.victim_address is not None:
                victim_block, victim_level = self._unkey(result.victim_address)
                operations.append(OramAccess(victim_level, victim_block,
                                             True))
                self.writebacks += 1
        # Touch the hit block (its entry gets rewritten, staying dirty).
        if hit_level <= self.posmap_levels:
            block = self._posmap_block(address, hit_level)
            self.plb.access(self._key(block, hit_level), is_write=True)
        # The read chain itself, top-down, ending at the data ORAM.
        for level in range(min(hit_level, self.posmap_levels), -1, -1):
            if hit_level <= self.posmap_levels and level == hit_level:
                continue  # served from the PLB, no path access
            operations.append(OramAccess(
                level, self._posmap_block(address, level), False))
        self.accesses += len(operations)
        return operations

    @property
    def accesses_per_request(self) -> float:
        """The paper's headline 1.4 accessORAMs per LLC miss."""
        return self.accesses / self.requests if self.requests else 0.0
