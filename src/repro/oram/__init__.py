"""Path ORAM and Freecursive ORAM (the paper's baseline and substrate).

Two tiers share the same geometry and layout code:

* the *functional* tier (:class:`PathOram`, :class:`RecursiveOram`,
  :class:`FreecursiveOram`) stores real blocks, runs real encryption and
  PMMAC integrity, and is used to prove correctness and obliviousness;
* the *timing* tier (in :mod:`repro.sim` and :mod:`repro.core`) reuses the
  geometry, layout, and PLB models to drive the DRAM simulator without
  payload bytes — Path ORAM's obliviousness makes its timing
  content-independent, which is what makes this split sound.
"""

from repro.oram.bucket import Block, Bucket
from repro.oram.freecursive import FreecursiveOram
from repro.oram.integrity import EncryptedBucketStore, IntegrityError
from repro.oram.layout import LowPowerLayout, TreeLayout
from repro.oram.path_oram import PathOram, StashOverflowError
from repro.oram.plb import PlbFrontend
from repro.oram.posmap import PositionMap
from repro.oram.recursive import RecursiveOram
from repro.oram.stash import Stash
from repro.oram.tree import TreeGeometry

__all__ = [
    "Block",
    "Bucket",
    "EncryptedBucketStore",
    "FreecursiveOram",
    "IntegrityError",
    "LowPowerLayout",
    "PathOram",
    "PlbFrontend",
    "PositionMap",
    "RecursiveOram",
    "Stash",
    "StashOverflowError",
    "TreeGeometry",
    "TreeLayout",
]
