"""The Path ORAM stash and the greedy path write-back.

The stash temporarily holds blocks read off a path (plus any that could not
be evicted earlier).  Write-back walks the just-read path from the *leaf up*
and greedily packs each bucket with stash blocks whose assigned leaf shares
the path at that level — the standard Path ORAM eviction that keeps the
stash small with overwhelming probability for Z >= 4.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.obs.tracer import CATEGORY_STASH, NULL_TRACER, StepClock, Tracer
from repro.oram.bucket import Block
from repro.oram.tree import TreeGeometry


class Stash:
    """Address-indexed block storage with greedy eviction planning.

    With a tracer attached, every occupancy change is sampled as a
    ``stash_occupancy`` counter on ``lane``, yielding the occupancy
    timeline the paper's stash-size argument (Section II-C) is about.
    """

    def __init__(self, capacity: int, tracer: Tracer = NULL_TRACER,
                 lane: str = "stash", clock: Optional[StepClock] = None):
        self.capacity = capacity
        self._blocks: Dict[int, Block] = {}
        self.peak_occupancy = 0
        self.tracer = tracer
        self.lane = lane
        self.clock = clock if clock is not None else StepClock()

    def _sample(self) -> None:
        self.tracer.counter("stash_occupancy", CATEGORY_STASH, self.lane,
                            self.clock.tick(), len(self._blocks))

    def __len__(self) -> int:
        return len(self._blocks)

    def __contains__(self, address: int) -> bool:
        return address in self._blocks

    def get(self, address: int) -> Block:
        return self._blocks[address]

    def add(self, block: Block) -> None:
        """Insert or replace a block (same address replaces in place)."""
        self._blocks[block.address] = block
        self.peak_occupancy = max(self.peak_occupancy, len(self._blocks))
        if self.tracer.enabled:
            self._sample()

    def remove(self, address: int) -> Block:
        block = self._blocks.pop(address)
        if self.tracer.enabled:
            self._sample()
        return block

    def addresses(self) -> List[int]:
        return list(self._blocks)

    @property
    def over_capacity(self) -> bool:
        return len(self._blocks) > self.capacity

    def plan_eviction(self, geometry: TreeGeometry, leaf: int,
                      bucket_capacity: int) -> Dict[int, List[Block]]:
        """Choose which stash blocks go to which bucket of ``leaf``'s path.

        Walks levels leaf-to-root; at each level, takes up to
        ``bucket_capacity`` blocks whose own leaf path passes through that
        bucket (i.e. whose deepest common level with ``leaf`` is at least
        the bucket's level).  Selected blocks are removed from the stash.

        Returns a map from level to the block list for that level's bucket.
        """
        placement: Dict[int, List[Block]] = {}
        remaining = list(self._blocks.values())
        for level in range(geometry.levels - 1, -1, -1):
            chosen: List[Block] = []
            survivors: List[Block] = []
            for block in remaining:
                fits = (len(chosen) < bucket_capacity and
                        geometry.deepest_common_level(block.leaf, leaf) >= level)  # reprolint: disable=SEC003 -- leaf comparison inside trusted SRAM; result never leaves the stash
                if fits:  # reprolint: disable=SEC003 -- greedy eviction runs in trusted SRAM; write-back shape is the fixed full path regardless of which blocks fit
                    chosen.append(block)
                else:
                    survivors.append(block)
            remaining = survivors
            if chosen:
                placement[level] = chosen
                for block in chosen:
                    del self._blocks[block.address]
        if self.tracer.enabled and placement:
            self._sample()
        return placement
