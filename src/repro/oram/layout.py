"""ORAM tree placement in DRAM (Ren et al. packing + the low-power layout).

Two layouts, both keyed on the same subtree-packed linearization:

* :class:`TreeLayout` — the optimized baseline arrangement: the tree is
  re-organized as a tree of small subtrees whose buckets sit in adjacent
  memory locations (high row-buffer hit rate), with consecutive cache lines
  striped across channels for channel parallelism [Ren et al.].
* :class:`LowPowerLayout` — the paper's Section III-E arrangement for an
  SDIMM's internal channel: each rank stores one whole subtree (selected by
  leaf MSBs) and the shared top levels live in the secure buffer's SRAM, so
  an access touches exactly one rank and the others can power down.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import DramOrganization, OramConfig
from repro.dram.address import DecodedAddress
from repro.oram.tree import TreeGeometry
from repro.utils.bitops import log2_exact
from repro.utils.memo import DEFAULT_MEMO_CAP, MEMO_ENABLED


def subtree_packed_index(geometry: TreeGeometry, bucket: int,
                         subtree_levels: int) -> int:
    """Linear storage index of a bucket under subtree packing.

    Levels are grouped into bands of ``subtree_levels``; within a band, each
    subtree's buckets are stored contiguously in BFS order, so a path read
    touches one contiguous run per band instead of hopping rows every level.
    """
    level = geometry.level_of(bucket)
    position = geometry.position_of(bucket)
    band = level // subtree_levels
    level_in_band = level % subtree_levels
    band_top_level = band * subtree_levels
    # depth of subtrees in this band (the last band may be shallower)
    depth = min(subtree_levels, geometry.levels - band_top_level)
    subtree_size = (1 << depth) - 1
    subtree_id = position >> level_in_band
    within = (1 << level_in_band) - 1 + (position & ((1 << level_in_band) - 1))
    band_base = (1 << band_top_level) - 1
    return band_base + subtree_id * subtree_size + within


class _SequentialDecoder:
    """Line index -> (rank, bank, row, column), column fastest.

    Consecutive line indices fill a row, then move to the next bank, then
    the next rank, then the next row — keeping small contiguous runs inside
    one row buffer.  Indices beyond capacity wrap (the timing tier stores no
    data, so aliasing is harmless and keeps huge trees addressable).
    """

    def __init__(self, organization: DramOrganization, line_bytes: int,
                 ranks: Optional[int] = None, fixed_rank: Optional[int] = None):
        self.columns = organization.row_bytes // line_bytes
        self.banks = organization.banks_per_rank
        self.ranks = ranks if ranks is not None else organization.ranks_per_channel
        self.rows = organization.rows_per_bank
        self.fixed_rank = fixed_rank

    def decode(self, line_index: int) -> DecodedAddress:
        column = line_index % self.columns
        line_index //= self.columns
        bank = line_index % self.banks
        line_index //= self.banks
        if self.fixed_rank is None:
            rank = line_index % self.ranks
            line_index //= self.ranks
        else:
            rank = self.fixed_rank
        row = line_index % self.rows
        return DecodedAddress(rank=rank, bank=bank, row=row, column=column)


def _bucket_line_ranges(geometry: TreeGeometry, buckets, subtree_levels: int,
                        lines_per_bucket: int) -> List[Tuple[int, int]]:
    """Contiguous [begin, end) line-index ranges covering ``buckets``."""
    ranges: List[Tuple[int, int]] = []
    for bucket in buckets:
        base = subtree_packed_index(geometry, bucket,
                                    subtree_levels) * lines_per_bucket
        if ranges and ranges[-1][1] == base:
            ranges[-1] = (ranges[-1][0], base + lines_per_bucket)
        else:
            ranges.append((base, base + lines_per_bucket))
    return ranges


def _split_rows(decoder: "_SequentialDecoder", start_line: int,
                count: int) -> List[Tuple[DecodedAddress, int]]:
    """Split a contiguous per-channel line range at row boundaries."""
    runs = []
    remaining = count
    line = start_line
    while remaining > 0:
        address = decoder.decode(line)
        in_row = decoder.columns - address.column
        take = min(remaining, in_row)
        runs.append((address, take))
        line += take
        remaining -= take
    return runs


class TreeLayout:
    """Baseline placement: subtree packing + channel striping."""

    def __init__(self, geometry: TreeGeometry, oram: OramConfig,
                 organization: DramOrganization, channels: int,
                 subtree_levels: int = 4):
        if channels < 1:
            raise ValueError("need at least one channel")
        self.geometry = geometry
        self.oram = oram
        self.channels = channels
        self.subtree_levels = subtree_levels
        self._decoder = _SequentialDecoder(organization, oram.block_bytes)
        # path_runs is pure in (leaf, skip_levels) and dominates every
        # timing-tier path access; memoized results are immutable tuples.
        self._runs_cache: Dict[Tuple[int, int], Tuple] = {}

    def bucket_lines(self, bucket: int) -> List[Tuple[int, DecodedAddress]]:
        """(channel, coordinates) of each cache line of one bucket."""
        linear = subtree_packed_index(self.geometry, bucket,
                                      self.subtree_levels)
        base = linear * self.oram.lines_per_bucket
        lines = []
        for offset in range(self.oram.lines_per_bucket):
            global_line = base + offset
            channel = global_line % self.channels
            lines.append((channel,
                          self._decoder.decode(global_line // self.channels)))
        return lines

    def path_lines(self, leaf: int,
                   skip_levels: int = 0) -> List[Tuple[int, DecodedAddress]]:
        """All lines of the path to ``leaf``, skipping on-chip-cached levels."""
        lines = []
        for bucket in self.geometry.path(leaf)[skip_levels:]:
            lines.extend(self.bucket_lines(bucket))
        return lines

    def path_runs(self, leaf: int, skip_levels: int = 0
                  ) -> Sequence[Tuple[int, DecodedAddress, int]]:
        """The path's lines coalesced into same-row streaming runs.

        Returns (channel, first-line coordinates, line count) triples that
        :meth:`repro.dram.channel.Channel.schedule_run` consumes.  Exactly
        covers :meth:`path_lines` — adjacent buckets in one packing band
        merge into longer runs; channel striping and row boundaries split
        them.  The result is a memoized immutable tuple — do not mutate.
        """
        cache_key = (leaf, skip_levels)
        cached = self._runs_cache.get(cache_key)
        if cached is not None:
            return cached
        ranges = _bucket_line_ranges(
            self.geometry, self.geometry.path(leaf)[skip_levels:],
            self.subtree_levels, self.oram.lines_per_bucket)
        runs = []
        for begin, end in ranges:
            for channel in range(self.channels):
                # lines of this channel within [begin, end)
                first = begin + (channel - begin) % self.channels
                if first >= end:
                    continue
                count = (end - first + self.channels - 1) // self.channels
                runs.extend(
                    (channel, address, run_count)
                    for address, run_count in _split_rows(
                        self._decoder, first // self.channels, count))
        result = tuple(runs)
        if MEMO_ENABLED:
            if len(self._runs_cache) >= DEFAULT_MEMO_CAP:
                self._runs_cache.clear()
            self._runs_cache[cache_key] = result
        return result


class LowPowerLayout:
    """Section III-E placement inside one SDIMM: one subtree per rank.

    The top ``log2(ranks)`` levels of the (SDIMM-local) tree are held in
    the secure buffer's SRAM — :meth:`bucket_lines` returns ``None`` for
    them.  Every remaining bucket maps into the rank owning its subtree, so
    one ``accessORAM`` touches exactly one rank.
    """

    def __init__(self, geometry: TreeGeometry, oram: OramConfig,
                 organization: DramOrganization,
                 ranks: Optional[int] = None,
                 subtree_levels: int = 4):
        self.geometry = geometry
        self.oram = oram
        self.ranks = ranks if ranks is not None else organization.ranks_per_dimm
        self.rank_levels = log2_exact(self.ranks)
        if self.rank_levels >= geometry.levels:
            raise ValueError("tree too shallow to split across ranks")
        self.subtree_levels = subtree_levels
        self._organization = organization
        # geometry of the per-rank subtree
        self._rank_geometry = TreeGeometry(geometry.levels - self.rank_levels)
        # decoders are stateless per rank; build each once instead of per
        # bucket/path call
        self._rank_decoders = [
            _SequentialDecoder(organization, oram.block_bytes,
                               fixed_rank=rank)
            for rank in range(self.ranks)]
        self._runs_cache: Dict[Tuple[int, int], Tuple] = {}

    def rank_of_leaf(self, leaf: int) -> int:
        """Which rank serves an access to ``leaf`` (its subtree owner)."""
        return leaf >> (self.geometry.levels - 1 - self.rank_levels)

    def bucket_lines(self, bucket: int) -> Optional[List[DecodedAddress]]:
        """Coordinates of one bucket, or None if it lives in buffer SRAM."""
        level = self.geometry.level_of(bucket)
        if level < self.rank_levels:
            return None
        position = self.geometry.position_of(bucket)
        rank = position >> (level - self.rank_levels)
        # re-root the bucket inside its rank's subtree
        sub_level = level - self.rank_levels
        sub_position = position & ((1 << sub_level) - 1)
        sub_bucket = self._rank_geometry.bucket_at(sub_level, sub_position)
        linear = subtree_packed_index(self._rank_geometry, sub_bucket,
                                      self.subtree_levels)
        decoder = self._rank_decoders[rank]
        base = linear * self.oram.lines_per_bucket
        return [decoder.decode(base + offset)
                for offset in range(self.oram.lines_per_bucket)]

    def path_lines(self, leaf: int,
                   skip_levels: int = 0) -> List[DecodedAddress]:
        """DRAM lines of the path to ``leaf`` (SRAM-resident levels omitted).

        ``skip_levels`` counts levels cached CPU-side on top of the
        SRAM-resident top of this tree.
        """
        lines = []
        for bucket in self.geometry.path(leaf)[skip_levels:]:
            located = self.bucket_lines(bucket)
            if located is not None:
                lines.extend(located)
        return lines

    def path_runs(self, leaf: int,
                  skip_levels: int = 0) -> Sequence[Tuple[DecodedAddress, int]]:
        """The path's DRAM lines coalesced into same-row streaming runs.

        All runs land in the one rank owning ``leaf``'s subtree — the
        low-power invariant — so entries are (coordinates, count) pairs.
        The result is a memoized immutable tuple — do not mutate.
        """
        cache_key = (leaf, skip_levels)
        cached = self._runs_cache.get(cache_key)
        if cached is not None:
            return cached
        rank = self.rank_of_leaf(leaf)
        sub_buckets = []
        for bucket in self.geometry.path(leaf)[skip_levels:]:
            level = self.geometry.level_of(bucket)
            if level < self.rank_levels:
                continue
            sub_level = level - self.rank_levels
            sub_position = self.geometry.position_of(bucket) & \
                ((1 << sub_level) - 1)
            sub_buckets.append(
                self._rank_geometry.bucket_at(sub_level, sub_position))
        decoder = self._rank_decoders[rank]
        runs = []
        for begin, end in _bucket_line_ranges(
                self._rank_geometry, sub_buckets, self.subtree_levels,
                self.oram.lines_per_bucket):
            runs.extend(_split_rows(decoder, begin, end - begin))
        result = tuple(runs)
        if MEMO_ENABLED:
            if len(self._runs_cache) >= DEFAULT_MEMO_CAP:
                self._runs_cache.clear()
            self._runs_cache[cache_key] = result
        return result
