"""The position map: logical block address -> current leaf ID.

Initial positions are uniformly random; every access remaps the touched
block to a fresh uniform leaf.  The map is materialized lazily so that
sparse address spaces (and the huge trees of the timing tier) cost memory
proportional to the touched footprint only.
"""

from __future__ import annotations

from typing import Dict

from repro.utils.rng import DeterministicRng


class PositionMap:
    """Lazily materialized address -> leaf mapping."""

    def __init__(self, leaf_count: int, rng: DeterministicRng):
        if leaf_count < 1:
            raise ValueError("need at least one leaf")
        self.leaf_count = leaf_count
        self._rng = rng
        self._positions: Dict[int, int] = {}

    def lookup(self, address: int) -> int:
        """Current leaf for ``address``, drawing an initial one on first use."""
        leaf = self._positions.get(address)
        if leaf is None:
            leaf = self._rng.random_leaf(self.leaf_count)
            self._positions[address] = leaf
        return leaf

    def remap(self, address: int) -> int:
        """Assign and return a fresh uniform leaf for ``address``."""
        leaf = self._rng.random_leaf(self.leaf_count)
        self._positions[address] = leaf
        return leaf

    def lookup_and_remap(self, address: int) -> tuple:
        """The accessORAM step 1: read the old leaf, install a new one."""
        old_leaf = self.lookup(address)
        new_leaf = self.remap(address)
        return old_leaf, new_leaf

    def set(self, address: int, leaf: int) -> None:
        if not 0 <= leaf < self.leaf_count:
            raise ValueError(f"leaf {leaf} out of range")
        self._positions[address] = leaf

    @property
    def touched_addresses(self) -> int:
        return len(self._positions)
