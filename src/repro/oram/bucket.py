"""Block and bucket records for the functional ORAM tier.

Each tree node (bucket) holds ``Z`` block slots, some of which may be dummy
(empty), plus metadata: per-slot address tags and leaf IDs, and one shared
write counter used for counter-mode encryption and PMMAC.  The Split
protocol serializes buckets to bytes and slices them; the serialization
format here is therefore explicit and byte-exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

#: Tag value marking an empty (dummy) slot in serialized form.
DUMMY_TAG = (1 << 64) - 1


@dataclass
class Block:
    """One real data block: its logical address, current leaf, and payload."""

    address: int
    leaf: int
    data: bytes

    def copy(self) -> "Block":
        return Block(self.address, self.leaf, self.data)


class Bucket:
    """A tree node: ``Z`` optional blocks plus a shared write counter."""

    def __init__(self, capacity: int, block_bytes: int):
        self.capacity = capacity
        self.block_bytes = block_bytes
        self.slots: List[Optional[Block]] = [None] * capacity
        self.counter = 0

    @property
    def occupancy(self) -> int:
        return sum(1 for slot in self.slots if slot is not None)

    @property
    def is_full(self) -> bool:
        return self.occupancy == self.capacity

    def blocks(self) -> List[Block]:
        return [slot for slot in self.slots if slot is not None]

    def copy(self) -> "Bucket":
        """Deep copy: slot blocks are copied so callers cannot alias state."""
        duplicate = Bucket(self.capacity, self.block_bytes)
        duplicate.slots = [slot.copy() if slot is not None else None
                           for slot in self.slots]
        duplicate.counter = self.counter
        return duplicate

    def insert(self, block: Block) -> None:
        """Place a block in the first free slot.

        Raises:
            OverflowError: if the bucket is full.
        """
        if len(block.data) != self.block_bytes:
            raise ValueError(
                f"block payload is {len(block.data)} bytes, "
                f"bucket expects {self.block_bytes}")
        for index, slot in enumerate(self.slots):
            if slot is None:
                self.slots[index] = block
                return
        raise OverflowError("bucket is full")

    def clear(self) -> List[Block]:
        """Remove and return all real blocks (path read into the stash)."""
        removed = self.blocks()
        self.slots = [None] * self.capacity
        return removed

    # ------------------------------------------------------------------
    # Serialization (used by the crypto layer and the Split protocol)
    # ------------------------------------------------------------------

    _HEADER_BYTES_PER_SLOT = 16  # 8-byte tag + 8-byte leaf

    @property
    def serialized_bytes(self) -> int:
        return self.capacity * (self._HEADER_BYTES_PER_SLOT + self.block_bytes)

    def serialize(self) -> bytes:
        """Flatten the bucket to bytes: per-slot (tag, leaf, payload).

        Dummy slots serialize as DUMMY_TAG with a zero payload, so the
        serialized size is constant — a requirement for indistinguishable
        ciphertexts.
        """
        parts = []
        for slot in self.slots:
            if slot is None:
                parts.append(DUMMY_TAG.to_bytes(8, "little"))
                parts.append((0).to_bytes(8, "little"))
                parts.append(bytes(self.block_bytes))
            else:
                parts.append(slot.address.to_bytes(8, "little"))
                parts.append(slot.leaf.to_bytes(8, "little"))
                parts.append(slot.data)
        return b"".join(parts)

    @classmethod
    def deserialize(cls, raw: bytes, capacity: int,
                    block_bytes: int) -> "Bucket":
        stride = cls._HEADER_BYTES_PER_SLOT + block_bytes
        if len(raw) != capacity * stride:
            raise ValueError(f"serialized bucket has {len(raw)} bytes, "
                             f"expected {capacity * stride}")
        bucket = cls(capacity, block_bytes)
        for index in range(capacity):
            offset = index * stride
            tag = int.from_bytes(raw[offset:offset + 8], "little")
            leaf = int.from_bytes(raw[offset + 8:offset + 16], "little")
            payload = raw[offset + 16:offset + stride]
            if tag != DUMMY_TAG:
                bucket.slots[index] = Block(tag, leaf, payload)
        return bucket
