"""Functional Freecursive ORAM: recursion shortcut by the PLB.

Combines the PLB front end with per-level Path ORAM backends.  Data flows
through ORAM_0 with full fidelity; the PosMap ORAMs are exercised with the
exact access pattern the PLB dictates (reads for chain fetches, writes for
dirty evictions).

Modelling note: PosMap block *content* consistency through the PLB is
maintained by each level's internal position map (the controller mirror),
not by threading leaf entries through PosMap payloads as
:class:`~repro.oram.recursive.RecursiveOram` does.  The observable access
sequence — which ORAM levels are touched, how many paths, read vs write —
is identical to Fletcher et al.'s design; the full content-carrying
recursion is proven separately by ``RecursiveOram``.
"""

from __future__ import annotations

from typing import List, Optional

from repro.config import OramConfig
from repro.oram.path_oram import Op, PathOram
from repro.oram.plb import OramAccess, PlbFrontend
from repro.utils.bitops import ceil_log2
from repro.utils.rng import DeterministicRng


class FreecursiveOram:
    """PLB front end + Path ORAM backends, the paper's baseline system.

    ``unified_tree=True`` follows Fletcher et al.'s recommendation (which
    the paper adopts): data and every PosMap level live in *one* tree, so
    an adversary cannot tell which ORAM a path access serves.  Blocks are
    namespaced by level inside the shared address space.  The default
    (separate trees per level) is the simpler construction the recursion
    literature describes.
    """

    def __init__(self, config: OramConfig, rng: DeterministicRng,
                 data_levels: Optional[int] = None,
                 plb_enabled: bool = True,
                 record_trace: bool = False,
                 unified_tree: bool = False):
        self.config = config
        self.frontend = PlbFrontend(config, enabled=plb_enabled)
        self.rng = rng
        self.unified_tree = unified_tree
        levels = data_levels if data_levels is not None else config.levels
        entry_shift = ceil_log2(config.posmap_entries_per_block)
        self.orams: List[PathOram] = []
        if unified_tree:
            # one tree, sized for the data ORAM (PosMap blocks are a small
            # additional load); every level shares it
            shared = PathOram(
                levels=max(2, levels),
                blocks_per_bucket=config.blocks_per_bucket,
                block_bytes=config.block_bytes,
                stash_capacity=config.stash_capacity,
                rng=rng.child("freecursive-unified"),
                record_trace=record_trace,
            )
            self.orams = [shared] * (config.recursive_posmaps + 1)
        else:
            for level in range(config.recursive_posmaps + 1):
                level_levels = max(2, levels - entry_shift * level)
                self.orams.append(PathOram(
                    levels=level_levels,
                    blocks_per_bucket=config.blocks_per_bucket,
                    block_bytes=config.block_bytes,
                    stash_capacity=config.stash_capacity,
                    rng=rng.child(f"freecursive-oram{level}"),
                    record_trace=record_trace,
                ))

    # ------------------------------------------------------------------

    def read(self, address: int) -> bytes:
        """Read one block through the PLB-shortcut recursion."""
        return self._serve(address, Op.READ, None)

    def write(self, address: int, data: bytes) -> None:
        """Write one block through the PLB-shortcut recursion."""
        self._serve(address, Op.WRITE, data)

    def _serve(self, address: int, op: Op, data: Optional[bytes]) -> bytes:
        result = bytes(self.config.block_bytes)
        for access in self.frontend.translate(address):
            result = self._perform(access, address, op, data)
        return result

    def _namespaced(self, level: int, block_address: int) -> int:
        """Block key inside the unified tree: level tag in the low bits."""
        if not self.unified_tree:
            return block_address
        return (block_address << 3) | level

    def _perform(self, access: OramAccess, address: int, op: Op,
                 data: Optional[bytes]) -> bytes:
        oram = self.orams[access.oram_level]
        if access.oram_level == 0:
            return oram.access(self._namespaced(0, address), op, data)
        key = self._namespaced(access.oram_level, access.block_address)
        if access.is_writeback:
            return oram.access(key, Op.WRITE,
                               bytes(self.config.block_bytes))
        return oram.access(key, Op.READ)

    # ------------------------------------------------------------------

    @property
    def accesses_per_request(self) -> float:
        return self.frontend.accesses_per_request

    @property
    def total_path_accesses(self) -> int:
        distinct = {id(oram): oram for oram in self.orams}
        return sum(oram.access_count for oram in distinct.values())
