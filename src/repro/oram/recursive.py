"""Recursive Path ORAM: the position map stored in smaller ORAMs.

ORAM_0 holds data; ORAM_k (k >= 1) holds the position map of ORAM_{k-1},
packing ``entries_per_block`` leaf IDs per block.  Recursion stops when the
top position map fits on chip.  Every data access walks the chain top-down:
the on-chip map yields the top PosMap block's leaf, each PosMap access
reads the child's current leaf and installs a fresh one (a read-modify-write
inside a single path access), and the final access serves the data block.

This module carries *real* content through the recursion — it is the
correctness proof for the scheme.  The Freecursive front end
(:mod:`repro.oram.plb`) then shortcuts this chain with the PLB.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.oram.path_oram import Op, PathOram
from repro.oram.tree import TreeGeometry
from repro.utils.bitops import ceil_log2, log2_exact
from repro.utils.rng import DeterministicRng

#: A 4-byte entry of all ones marks "leaf not yet assigned".
UNSET_ENTRY = 0xFFFFFFFF
ENTRY_BYTES = 4


def _read_entry(payload: bytes, slot: int) -> int:
    offset = slot * ENTRY_BYTES
    return int.from_bytes(payload[offset:offset + ENTRY_BYTES], "little")


def _write_entry(payload: bytes, slot: int, value: int) -> bytes:
    offset = slot * ENTRY_BYTES
    return (payload[:offset] + value.to_bytes(ENTRY_BYTES, "little") +
            payload[offset + ENTRY_BYTES:])


class RecursiveOram:
    """A full recursive Path ORAM hierarchy with on-chip top map."""

    def __init__(self, data_blocks: int, block_bytes: int,
                 blocks_per_bucket: int, stash_capacity: int,
                 rng: DeterministicRng,
                 entries_per_block: int = 16,
                 max_posmap_levels: int = 5,
                 onchip_entries: int = 64,
                 record_trace: bool = False,
                 encryption_key: Optional[bytes] = None):
        if data_blocks < 1:
            raise ValueError("need at least one data block")
        if entries_per_block * ENTRY_BYTES > block_bytes:
            raise ValueError("entries do not fit in a block")
        self.entries_per_block = entries_per_block
        self._entry_shift = log2_exact(entries_per_block)
        self.rng = rng
        self.orams: List[PathOram] = []

        block_count = data_blocks
        level = 0
        while True:
            levels = max(2, ceil_log2(max(2, block_count)) + 1)
            fill = 0 if level == 0 else 0xFF
            store = None
            if encryption_key is not None:
                # every level's tree sits in untrusted memory: encrypt and
                # PMMAC each, under level-separated keys
                from repro.oram.integrity import EncryptedBucketStore

                store = EncryptedBucketStore(
                    bucket_count=(1 << levels) - 1,
                    bucket_capacity=blocks_per_bucket,
                    block_bytes=block_bytes,
                    key=encryption_key + bytes([level]))
            self.orams.append(PathOram(
                levels=levels,
                blocks_per_bucket=blocks_per_bucket,
                block_bytes=block_bytes,
                stash_capacity=stash_capacity,
                rng=rng.child(f"oram{level}"),
                store=store,
                record_trace=record_trace,
                new_block_fill=fill,
            ))
            # The on-chip map holds one leaf per block of the top ORAM;
            # recurse until that fits (or the level budget runs out).
            if block_count <= onchip_entries or level == max_posmap_levels:
                break
            block_count = -(-block_count // entries_per_block)
            level += 1

        self._onchip: Dict[int, int] = {}
        self._onchip_rng = rng.child("onchip")
        self.data_accesses = 0

    @property
    def posmap_levels(self) -> int:
        """Number of PosMap ORAMs stored in memory (the paper's n)."""
        return len(self.orams) - 1

    @property
    def top_geometry(self) -> TreeGeometry:
        return self.orams[-1].geometry

    # ------------------------------------------------------------------
    # Public interface
    # ------------------------------------------------------------------

    def read(self, address: int) -> bytes:
        """Read one data block through the full PosMap recursion."""
        return self._access(address, Op.READ, None)

    def write(self, address: int, data: bytes) -> None:
        """Write one data block through the full PosMap recursion."""
        self._access(address, Op.WRITE, data)

    @property
    def total_path_accesses(self) -> int:
        return sum(oram.access_count for oram in self.orams)

    # ------------------------------------------------------------------
    # The recursive chain
    # ------------------------------------------------------------------

    def _chain_addresses(self, address: int) -> List[int]:
        """Block address at each ORAM level: p_0 = address, p_k = p_{k-1}/E."""
        chain = [address]
        for _ in range(self.posmap_levels):
            chain.append(chain[-1] >> self._entry_shift)
        return chain

    def _onchip_lookup_and_remap(self, top_block: int) -> tuple:
        top = self.orams[-1]
        old_leaf = self._onchip.get(top_block)
        if old_leaf is None:
            old_leaf = self._onchip_rng.random_leaf(top.geometry.leaf_count)
        new_leaf = self._onchip_rng.random_leaf(top.geometry.leaf_count)
        self._onchip[top_block] = new_leaf
        return old_leaf, new_leaf

    def _access(self, address: int, op: Op, data: Optional[bytes]) -> bytes:
        self.data_accesses += 1
        chain = self._chain_addresses(address)
        top_level = self.posmap_levels
        old_leaf, new_leaf = self._onchip_lookup_and_remap(chain[top_level])

        # Walk PosMap ORAMs top-down.  At level k we access block chain[k],
        # whose payload holds the current leaf of chain[k-1]; we read it and
        # install a fresh leaf in the same path access.
        for level in range(top_level, 0, -1):
            oram = self.orams[level]
            child_oram = self.orams[level - 1]
            slot = chain[level - 1] & (self.entries_per_block - 1)
            child_new_leaf = self.rng.random_leaf(
                child_oram.geometry.leaf_count)
            child_old_leaf_holder = []

            def update_entry(payload: bytes, slot=slot,
                             child_oram=child_oram,
                             child_new_leaf=child_new_leaf,
                             holder=child_old_leaf_holder) -> bytes:
                entry = _read_entry(payload, slot)
                if entry == UNSET_ENTRY:
                    entry = child_oram.rng.random_leaf(
                        child_oram.geometry.leaf_count)
                holder.append(entry)
                return _write_entry(payload, slot, child_new_leaf)

            oram.access_with_leaves(chain[level], old_leaf, new_leaf,
                                    Op.WRITE, transform=update_entry)
            old_leaf = child_old_leaf_holder[0]
            new_leaf = child_new_leaf

        return self.orams[0].access_with_leaves(address, old_leaf, new_leaf,
                                                op, data)
