"""Functional Path ORAM (Stefanov et al.), the paper's base construction.

Implements the four-step ``accessORAM(a, op, d')`` interface of Section
II-C: position-map lookup-and-remap, path read into the stash, block
service, and greedy path write-back.  Every access — real or dummy — reads
and writes exactly one full path, which is what makes the observable bucket
trace independent of the program's addresses and operations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from repro.oram.bucket import Block, Bucket
from repro.oram.posmap import PositionMap
from repro.oram.stash import Stash
from repro.oram.tree import TreeGeometry
from repro.utils.rng import DeterministicRng


class StashOverflowError(Exception):
    """Raised when the stash exceeds capacity and eviction cannot drain it.

    Carries ``occupancy`` / ``capacity`` so failure records
    (:mod:`repro.faults`) can report how far over budget the stash was.
    """

    def __init__(self, message: str, occupancy: int = 0, capacity: int = 0):
        super().__init__(message)
        self.occupancy = occupancy
        self.capacity = capacity


class Op(enum.Enum):
    """Operation kinds accepted by accessORAM."""

    READ = "read"
    WRITE = "write"
    DUMMY = "dummy"


@dataclass(frozen=True)
class TraceEvent:
    """One bucket touch visible to a physical-bus adversary."""

    kind: str       # "read" or "write"
    bucket: int


class PathOram:
    """A single Path ORAM tree with stash, posmap, and observable trace."""

    def __init__(self, levels: int, blocks_per_bucket: int, block_bytes: int,
                 stash_capacity: int, rng: DeterministicRng,
                 store=None, record_trace: bool = False,
                 background_eviction: bool = True,
                 new_block_fill: int = 0,
                 tracer=None, trace_lane: str = "stash"):
        from repro.obs.tracer import NULL_TRACER
        from repro.oram.integrity import PlainBucketStore

        self.new_block_fill = new_block_fill
        self.geometry = TreeGeometry(levels)
        self.blocks_per_bucket = blocks_per_bucket
        self.block_bytes = block_bytes
        self.rng = rng
        self.posmap = PositionMap(self.geometry.leaf_count, rng.child("posmap"))
        self.stash = Stash(stash_capacity,
                           tracer=tracer if tracer is not None
                           else NULL_TRACER,
                           lane=trace_lane)
        self.store = store if store is not None else PlainBucketStore(
            self.geometry.bucket_count, blocks_per_bucket, block_bytes)
        self.record_trace = record_trace
        self.trace: List[TraceEvent] = []
        self.background_eviction = background_eviction
        self.access_count = 0
        self.dummy_access_count = 0
        self.background_evictions = 0

    # ------------------------------------------------------------------
    # Public interface
    # ------------------------------------------------------------------

    def access(self, address: int, op: Op,
               new_data: Optional[bytes] = None) -> bytes:
        """The accessORAM(a, op, d') interface.

        Returns the block's data before a write, or its current data for a
        read.  A block never written reads as zeroes.
        """
        if op is Op.DUMMY:
            return self.dummy_access()
        if op is Op.WRITE and new_data is None:
            raise ValueError("write requires new_data")
        if op is Op.WRITE and len(new_data) != self.block_bytes:
            raise ValueError(f"block must be {self.block_bytes} bytes")
        old_leaf, new_leaf = self.posmap.lookup_and_remap(address)
        return self._access_leaves(address, old_leaf, new_leaf, op, new_data)

    def access_with_leaves(self, address: int, old_leaf: int, new_leaf: int,
                           op: Op, new_data: Optional[bytes] = None,
                           transform=None) -> bytes:
        """accessORAM with externally managed position state.

        The recursive construction stores this ORAM's position map in the
        next ORAM up, so the caller supplies both leaves.  ``transform``
        enables the read-modify-write a PosMap block update needs: it
        receives the old payload and returns the new one, all within one
        path access.
        """
        return self._access_leaves(address, old_leaf, new_leaf, op, new_data,
                                   transform)

    def dummy_access(self) -> bytes:
        """A structurally identical access that serves no block.

        Used for background eviction and the Independent protocol's
        transfer-queue drain: reads a uniformly random path and writes it
        back, indistinguishable on the bus from a real access.
        """
        leaf = self.rng.random_leaf(self.geometry.leaf_count)
        self.dummy_access_count += 1
        self.access_count += 1
        self._read_path(leaf)
        self._write_path(leaf)
        self._handle_pressure()
        return bytes(self.block_bytes)

    def read_path_into_stash(self, leaf: int) -> None:
        """Public path-read primitive for protocol controllers (SDIMMs)."""
        self._read_path(leaf)

    def write_path_from_stash(self, leaf: int) -> None:
        """Public path write-back primitive for protocol controllers."""
        self._write_path(leaf)

    def relieve_pressure(self) -> None:
        """Run background eviction if the stash is over capacity."""
        self._handle_pressure()

    # ------------------------------------------------------------------
    # The four accessORAM steps
    # ------------------------------------------------------------------

    def _access_leaves(self, address: int, old_leaf: int, new_leaf: int,
                       op: Op, new_data: Optional[bytes],
                       transform=None) -> bytes:
        self.access_count += 1
        # Step 2: fetch the whole path into the stash.
        self._read_path(old_leaf)
        # Step 3: serve the block and move it to its new leaf.
        if address in self.stash:
            block = self.stash.get(address)
        else:
            fill = bytes([self.new_block_fill]) * self.block_bytes
            block = Block(address, old_leaf, fill)
            self.stash.add(block)
        result = block.data
        if transform is not None:
            block.data = transform(result)
            if len(block.data) != self.block_bytes:
                raise ValueError("transform changed the block size")
        elif op is Op.WRITE:
            block.data = new_data
        block.leaf = new_leaf
        # Step 4: write back as much of the stash as fits on the old path.
        self._write_path(old_leaf)
        self._handle_pressure()
        return result

    def _read_path(self, leaf: int) -> None:
        for bucket_index in self.geometry.path(leaf):
            bucket = self.store.read(bucket_index)
            for block in bucket.clear():
                self.stash.add(block)
            if self.record_trace:
                self.trace.append(TraceEvent("read", bucket_index))

    def _write_path(self, leaf: int) -> None:
        placement = self.stash.plan_eviction(
            self.geometry, leaf, self.blocks_per_bucket)
        for level in range(self.geometry.levels):
            bucket_index = self.geometry.path_bucket(leaf, level)
            bucket = Bucket(self.blocks_per_bucket, self.block_bytes)
            for block in placement.get(level, []):
                bucket.insert(block)
            self.store.write(bucket_index, bucket)
            if self.record_trace:
                self.trace.append(TraceEvent("write", bucket_index))

    def _handle_pressure(self) -> None:
        if not self.stash.over_capacity:
            return
        if not self.background_eviction:
            raise StashOverflowError(
                f"stash holds {len(self.stash)} blocks, "
                f"capacity {self.stash.capacity}",
                occupancy=len(self.stash), capacity=self.stash.capacity)
        # Background eviction [Ren et al.]: dummy accesses drain the stash.
        attempts = 0
        while self.stash.over_capacity:
            attempts += 1
            if attempts > 64:
                raise StashOverflowError(
                    "background eviction failed to drain the stash",
                    occupancy=len(self.stash),
                    capacity=self.stash.capacity)
            self.background_evictions += 1
            leaf = self.rng.random_leaf(self.geometry.leaf_count)
            self._read_path(leaf)
            self._write_path(leaf)

    # ------------------------------------------------------------------
    # Introspection for tests and examples
    # ------------------------------------------------------------------

    def blocks_in_tree(self) -> int:
        """Count real blocks currently stored in tree buckets."""
        total = 0
        for index in range(self.geometry.bucket_count):
            cell = getattr(self.store, "_buckets", {}).get(index)
            if cell is not None:
                total += cell.occupancy
        return total

    def invariant_block_on_path_or_stash(self, address: int) -> bool:
        """The core ORAM invariant: a block is in the stash or on its path."""
        if address in self.stash:
            return True
        leaf = self.posmap.lookup(address)
        for bucket_index in self.geometry.path(leaf):
            bucket = self.store.read(bucket_index)
            for block in bucket.blocks():
                if block.address == address:
                    # put everything back where it was
                    self._restore(bucket_index, bucket)
                    return True
            self._restore(bucket_index, bucket)
        return False

    def _restore(self, bucket_index: int, bucket: Bucket) -> None:
        # Every store hands out copies on read, so an un-written read never
        # perturbs stored state — nothing to restore.  Kept for symmetry.
        pass
