"""Binary-tree geometry for Path ORAM.

Buckets are numbered in heap order: the root is bucket 0 and the children
of bucket ``b`` are ``2b + 1`` and ``2b + 2``.  Leaves are numbered 0 to
``leaf_count - 1`` left to right.  All protocols (baseline, Independent,
Split) share this geometry; the Independent protocol additionally partitions
the tree into per-SDIMM subtrees selected by the most significant bits of
the leaf ID.
"""

from __future__ import annotations

from typing import List

from repro.utils.bitops import log2_exact


class TreeGeometry:
    """Index arithmetic for a Path ORAM tree of ``levels`` levels."""

    def __init__(self, levels: int):
        if levels < 1:
            raise ValueError("tree needs at least one level")
        self.levels = levels
        self.leaf_count = 1 << (levels - 1)
        self.bucket_count = (1 << levels) - 1

    def level_of(self, bucket: int) -> int:
        """Tree level of a bucket (root is level 0)."""
        self._check_bucket(bucket)
        return (bucket + 1).bit_length() - 1

    def bucket_at(self, level: int, position: int) -> int:
        """Bucket index for the ``position``-th node of ``level``."""
        if not 0 <= level < self.levels:
            raise ValueError(f"level {level} out of range")
        if not 0 <= position < (1 << level):
            raise ValueError(f"position {position} out of range at level {level}")
        return (1 << level) - 1 + position

    def position_of(self, bucket: int) -> int:
        """Position of a bucket within its level (0 = leftmost)."""
        return bucket - ((1 << self.level_of(bucket)) - 1)

    def path(self, leaf: int) -> List[int]:
        """Bucket indices from the root down to ``leaf``'s leaf bucket."""
        self._check_leaf(leaf)
        return [self.bucket_at(level, leaf >> (self.levels - 1 - level))
                for level in range(self.levels)]

    def path_bucket(self, leaf: int, level: int) -> int:
        """The single bucket of ``leaf``'s path at ``level``."""
        self._check_leaf(leaf)
        return self.bucket_at(level, leaf >> (self.levels - 1 - level))

    def on_path(self, bucket: int, leaf: int) -> bool:
        """Whether ``bucket`` lies on the root-to-``leaf`` path."""
        level = self.level_of(bucket)
        return self.path_bucket(leaf, level) == bucket

    def deepest_common_level(self, leaf_a: int, leaf_b: int) -> int:
        """Deepest level shared by the paths to two leaves.

        This is the deepest level at which a block mapped to ``leaf_a`` may
        be stored when evicting along the path to ``leaf_b`` — the heart of
        the greedy Path ORAM write-back.
        """
        self._check_leaf(leaf_a)
        self._check_leaf(leaf_b)
        differing = leaf_a ^ leaf_b
        if differing == 0:
            return self.levels - 1
        return self.levels - 1 - differing.bit_length()

    def subtree_of_leaf(self, leaf: int, partitions: int) -> int:
        """Which of ``partitions`` leaf-MSB subtrees owns ``leaf``.

        The Independent protocol partitions "based on the most significant
        bits of the leaf ID"; with ``partitions`` SDIMMs, SDIMM *i* owns
        leaves ``[i * leaf_count/partitions, (i+1) * leaf_count/partitions)``.
        """
        self._check_leaf(leaf)
        bits = log2_exact(partitions)
        return leaf >> (self.levels - 1 - bits)

    def subtree_levels(self, partitions: int) -> int:
        """Levels inside each partition's subtree (shared top excluded)."""
        return self.levels - log2_exact(partitions)

    def leaves_under(self, bucket: int) -> range:
        """The leaf IDs whose paths pass through ``bucket``."""
        level = self.level_of(bucket)
        span = 1 << (self.levels - 1 - level)
        start = self.position_of(bucket) * span
        return range(start, start + span)

    def parent(self, bucket: int) -> int:
        self._check_bucket(bucket)
        if bucket == 0:
            raise ValueError("root has no parent")
        return (bucket - 1) // 2

    def children(self, bucket: int) -> List[int]:
        self._check_bucket(bucket)
        left = 2 * bucket + 1
        if left >= self.bucket_count:
            return []
        return [left, left + 1]

    def _check_bucket(self, bucket: int) -> None:
        if not 0 <= bucket < self.bucket_count:
            raise ValueError(f"bucket {bucket} out of range "
                             f"(tree has {self.bucket_count})")

    def _check_leaf(self, leaf: int) -> None:
        if not 0 <= leaf < self.leaf_count:
            raise ValueError(f"leaf {leaf} out of range "
                             f"(tree has {self.leaf_count})")
