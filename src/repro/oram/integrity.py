"""Encrypted, integrity-protected bucket storage (PMMAC).

Untrusted memory sees only ciphertext buckets; each bucket is encrypted
under counter mode keyed by (bucket index, write counter) and authenticated
by a PMMAC tag binding index, counter, and ciphertext together.

Replay detection requires that the *expected* counter comes from trusted
state — in Freecursive ORAM the counters are carried through the recursive
PosMap hierarchy so only a root counter lives on chip.  We model that
trusted chain directly as an on-controller counter mirror: the simulation
equivalent is exact (a replayed stale bucket fails verification because the
controller expects a newer counter), without re-deriving counters through
the recursion on every access.

Both stores honour the same contract so they are *observationally
equivalent* and interchangeable under :class:`~repro.oram.path_oram.PathOram`:

* ``read`` returns a bucket the caller owns outright — mutating it never
  reaches the store without an explicit ``write``;
* ``write`` never mutates the caller's bucket — the write counter is
  trusted controller state, tracked internally.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.crypto.ctr import CounterModeCipher
from repro.crypto.mac import MacError, PmmacAuthenticator
from repro.oram.bucket import Bucket


class IntegrityError(Exception):
    """Raised when untrusted memory returns a bucket that fails PMMAC.

    Carries structured fields so failure records and resilience policies
    (:mod:`repro.faults`) can act on *what* failed, not a message string:

    * ``index`` — the bucket index whose verification failed;
    * ``expected_counter`` — the trusted counter the verifier demanded;
    * ``kind`` — one of ``"mac"`` (tag mismatch: tampering, relocation, or
      replay), ``"missing"`` (a written cell vanished from memory),
      ``"hash"``/``"root"`` (Merkle path/root mismatch).
    """

    def __init__(self, message: str, index: Optional[int] = None,
                 expected_counter: Optional[int] = None,
                 kind: str = "mac"):
        super().__init__(message)
        self.index = index
        self.expected_counter = expected_counter
        self.kind = kind


class PlainBucketStore:
    """Unprotected bucket storage: the fast default for functional tests."""

    def __init__(self, bucket_count: int, bucket_capacity: int,
                 block_bytes: int):
        self.bucket_count = bucket_count
        self.bucket_capacity = bucket_capacity
        self.block_bytes = block_bytes
        self._buckets: Dict[int, Bucket] = {}
        self._counters: Dict[int, int] = {}
        self.reads = 0
        self.writes = 0

    def read(self, index: int) -> Bucket:
        """Return a *copy* of the stored bucket (never the live object).

        The encrypted store deserializes a fresh bucket on every read, so
        returning the stored object by reference here would make the two
        stores observably different: caller mutations would leak into the
        plain store without a ``write``.  The copy keeps them equivalent.
        """
        self._check(index)
        self.reads += 1
        bucket = self._buckets.get(index)
        if bucket is None:
            fresh = Bucket(self.bucket_capacity, self.block_bytes)
            fresh.counter = self._counters.get(index, 0)
            return fresh
        restored = bucket.copy()
        restored.counter = self._counters.get(index, 0)
        return restored

    def write(self, index: int, bucket: Bucket) -> None:
        """Snapshot the bucket; the caller's object is left untouched."""
        self._check(index)
        self.writes += 1
        self._counters[index] = self._counters.get(index, 0) + 1
        self._buckets[index] = bucket.copy()

    def _check(self, index: int) -> None:
        if not 0 <= index < self.bucket_count:
            raise ValueError(f"bucket index {index} out of range")


class EncryptedBucketStore:
    """Counter-mode encrypted storage with PMMAC verification.

    The *untrusted* side is ``_cells`` — what an adversary probing the DRAM
    chips sees and may tamper with via :meth:`tamper` / :meth:`replay`.  The
    *trusted* side is ``_expected_counters``, the controller's view of each
    bucket's write counter (the stand-in for Freecursive's recursive counter
    chain).
    """

    def __init__(self, bucket_count: int, bucket_capacity: int,
                 block_bytes: int, key: bytes):
        self.bucket_count = bucket_count
        self.bucket_capacity = bucket_capacity
        self.block_bytes = block_bytes
        self._cipher = CounterModeCipher(key)
        self._mac = PmmacAuthenticator(key)
        self._cells: Dict[int, Tuple[bytes, bytes]] = {}    # untrusted
        self._expected_counters: Dict[int, int] = {}        # trusted
        self.reads = 0
        self.writes = 0
        self.verifications = 0

    def read(self, index: int) -> Bucket:
        """Fetch, verify against the trusted counter, and decrypt.

        Raises:
            IntegrityError: on any MAC mismatch (tampering, relocation, or
                replay of a stale version), with ``index`` /
                ``expected_counter`` / ``kind`` attached.
        """
        self._check(index)
        self.reads += 1
        counter = self._expected_counters.get(index, 0)
        cell = self._cells.get(index)
        if cell is None:
            if counter:
                raise IntegrityError(
                    f"bucket {index} missing from memory but written "
                    f"{counter} times", index=index,
                    expected_counter=counter, kind="missing")
            return Bucket(self.bucket_capacity, self.block_bytes)
        ciphertext, tag = cell
        self.verifications += 1
        try:
            self._mac.verify(index, counter, ciphertext, tag)
        except MacError as error:
            raise IntegrityError(
                f"bucket {index} failed PMMAC against trusted counter "
                f"{counter}: {error}", index=index,
                expected_counter=counter, kind="mac") from error
        plaintext = self._cipher.decrypt(ciphertext, index, counter)
        bucket = Bucket.deserialize(plaintext, self.bucket_capacity,
                                    self.block_bytes)
        bucket.counter = counter
        return bucket

    def write(self, index: int, bucket: Bucket) -> None:
        """Re-encrypt under a bumped counter and store with a fresh tag.

        The bumped counter is trusted controller state; the caller's bucket
        object — which the stash or an outer protocol may still hold — is
        not mutated.
        """
        self._check(index)
        self.writes += 1
        counter = self._expected_counters.get(index, 0) + 1
        self._expected_counters[index] = counter
        plaintext = bucket.serialize()
        ciphertext = self._cipher.encrypt(plaintext, index, counter)
        tag = self._mac.tag(index, counter, ciphertext)
        self._cells[index] = (ciphertext, tag)

    def snapshot(self, index: int) -> Optional[Tuple[bytes, bytes]]:
        """The raw cell an adversary would observe (None if never written)."""
        return self._cells.get(index)

    def tamper(self, index: int, ciphertext: bytes) -> None:
        """Adversarial hook for tests: overwrite a cell's ciphertext."""
        _, tag = self._cells[index]
        self._cells[index] = (ciphertext, tag)

    def replay(self, index: int, cell: Tuple[bytes, bytes]) -> None:
        """Adversarial hook for tests: put back a previously captured cell."""
        self._cells[index] = cell

    def _check(self, index: int) -> None:
        if not 0 <= index < self.bucket_count:
            raise ValueError(f"bucket index {index} out of range")
