"""The serving tier's control plane: windowed signals in, decisions out.

One :class:`ServeControlPlane` rides along one
:class:`~repro.serve.scheduler.BatchingScheduler` run.  The scheduler
feeds it public per-event facts (a request was admitted / shed / a
completion finished with some sojourn) and, at every fixed tick-window
boundary, asks it to flush: the plane aggregates each closed window into
a signal, evaluates the attached controllers, and returns the decisions
for the scheduler to apply.  Window boundaries are pure functions of the
tick clock, so an adaptive run re-plans at exactly the same instants on
every replay — the decision log is part of the byte-identical report.

The signal aggregation lives in :meth:`window_signal` specifically so
the obliviousness audit can subclass it: the negative control in
:func:`repro.obs.audit.audit_adaptive_control` overrides it to leak an
address-derived term into the controller and must be caught.

The plane also owns the morphed-mode plant for declassified tenants: a
host-side overlay that mirrors every write, serves a morphed tenant's
reads without touching the ORAM, and remembers the dirty addresses to
replay into the protocol when the tenant reclassifies.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.control.admission import AdmissionController
from repro.control.decisions import ControlDecision, window_p99
from repro.control.morph import MODE_MORPHED, MODE_SECURE, MorphController

#: ticks of scheduler time charged per controller evaluation — the
#: control plane's overhead is real work and shows up in utilization
CONTROL_EVAL_TICKS = 1

#: link messages one morphed (non-secure) access costs: the request and
#: the response still cross the encrypted link, nothing else does
PLAIN_LINK_EVENTS = 2


class ServeControlPlane:
    """Windowed controller harness for one scheduler run."""

    def __init__(self, window_ticks: int,
                 admission: Optional[AdmissionController] = None,
                 morph: Optional[MorphController] = None,
                 block_bytes: int = 64):
        if window_ticks < 1:
            raise ValueError("control window must be at least one tick")
        self.window_ticks = window_ticks
        self.admission = admission
        self.morph = morph
        self.block_bytes = block_bytes
        self.decisions: List[ControlDecision] = []
        self.overhead_ticks = 0
        self._next_window = 0
        self._win_sojourns: Dict[int, List[int]] = {}
        self._win_shed: Dict[int, int] = {}
        self._win_tenants: Dict[int, Dict[str, int]] = {}
        # morphed-mode plant: a host-side mirror of the logical store
        self.overlay: Dict[int, bytes] = {}
        self.dirty: Dict[str, Set[int]] = {}

    # -- per-event facts the scheduler reports --------------------------

    def note_admitted(self, request) -> None:
        window = request.arrival // self.window_ticks
        tenants = self._win_tenants.setdefault(window, {})
        tenants[request.tenant] = tenants.get(request.tenant, 0) + 1

    def note_shed(self, request) -> None:
        window = request.arrival // self.window_ticks
        self._win_shed[window] = self._win_shed.get(window, 0) + 1

    def note_completion(self, finish: int, sojourn: int) -> None:
        window = finish // self.window_ticks
        self._win_sojourns.setdefault(window, []).append(sojourn)

    def note_write(self, address: int, data: bytes) -> None:
        """Mirror a write into the overlay (secure or morphed alike)."""
        self.overlay[address] = data

    # -- morphed-mode plant ---------------------------------------------

    def mode(self, tenant: str) -> str:
        if self.morph is None:
            return MODE_SECURE
        return self.morph.mode(tenant)

    def plain_read(self, address: int) -> bytes:
        """A morphed read: overlay value, or zeros like an unwritten
        ORAM block."""
        return self.overlay.get(address, bytes(self.block_bytes))

    def plain_write(self, tenant: str, address: int, data: bytes) -> None:
        self.overlay[address] = data
        self.dirty.setdefault(tenant, set()).add(address)

    def take_dirty(self, tenant: str) -> List[int]:
        """The tenant's dirty addresses, sorted, cleared — the write-back
        list a reclassification must replay into the protocol."""
        return sorted(self.dirty.pop(tenant, ()))

    # -- window machinery -----------------------------------------------

    def window_signal(self, index: int) -> Tuple[Optional[int], int]:
        """Aggregate one closed window into ``(p99, shed)``.

        The audit's negative control overrides this to taint the signal
        with secret-derived data; the base implementation is a pure
        function of public sojourn and shed counts.
        """
        sojourns = self._win_sojourns.pop(index, [])
        shed = self._win_shed.pop(index, 0)
        p99 = window_p99(sojourns) if sojourns else None
        return p99, shed

    def _morph_candidates(self, tenants: Dict[str, int]) -> List[str]:
        """Window tenants plus every currently-morphed tenant: an idle
        morphed tenant must still see low-load windows to revert."""
        candidates = set(tenants)
        if self.morph is not None:
            candidates.update(
                tenant for tenant, mode in self.morph.modes().items()
                if mode == MODE_MORPHED)
        return sorted(candidates)

    def flush_until(self, tick: int, depth: int) -> Tuple[
            List[ControlDecision], List[str]]:
        """Evaluate every window that closed at or before ``tick``.

        Returns the new decisions plus the tenants that just
        reclassified (morphed back to secure) — the scheduler owes each
        of those a dirty-address replay into the protocol.
        """
        fresh: List[ControlDecision] = []
        reclassified: List[str] = []
        while (self._next_window + 1) * self.window_ticks <= tick:
            index = self._next_window
            boundary = (index + 1) * self.window_ticks
            tenants = self._win_tenants.pop(index, {})
            if self.admission is not None:
                p99, shed = self.window_signal(index)
                self.overhead_ticks += CONTROL_EVAL_TICKS
                fresh.append(self.admission.plan(index, boundary, p99,
                                                 shed, depth))
            else:
                self._win_sojourns.pop(index, None)
                self._win_shed.pop(index, None)
            if self.morph is not None:
                for tenant in self._morph_candidates(tenants):
                    self.overhead_ticks += CONTROL_EVAL_TICKS
                    decision = self.morph.plan(index, boundary, tenant,
                                               tenants.get(tenant, 0))
                    if decision is None:
                        continue
                    fresh.append(decision)
                    if (decision.applied and
                            decision.after.get("mode") == MODE_SECURE):
                        reclassified.append(tenant)
            self._next_window += 1
        self.decisions.extend(fresh)
        return fresh, reclassified

    def flush_final(self, last_tick: int, depth: int) -> Tuple[
            List[ControlDecision], List[str]]:
        """Close every window with data left after the final completion."""
        pending = [self._next_window]
        for tracker in (self._win_sojourns, self._win_shed,
                        self._win_tenants):
            pending.extend(tracker.keys())
        horizon = (max(max(pending), last_tick // self.window_ticks) + 1) \
            * self.window_ticks
        return self.flush_until(horizon, depth)

    # -- report payload --------------------------------------------------

    def payload(self) -> Dict[str, object]:
        """The report/ledger ``control`` section (canonical-JSON safe)."""
        final: Dict[str, object] = {}
        if self.admission is not None:
            final["batch"] = self.admission.batch_size
            final["limit"] = self.admission.admit_limit
        if self.morph is not None:
            final["modes"] = self.morph.modes()
        return {
            "window_ticks": self.window_ticks,
            "windows": self._next_window,
            "decisions": [decision.to_dict()
                          for decision in self.decisions],
            "applied": sum(1 for decision in self.decisions
                           if decision.applied),
            "overhead_ticks": self.overhead_ticks,
            "final": final,
        }
