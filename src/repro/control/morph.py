"""Runtime morphing between secure and non-secure SDIMM modes.

Section III-A.4: "an SDIMM-based system can easily morph between a
secure and non-secure memory".  The seam already exists — the backends
expose ``submit_plain`` next to ``submit`` — and this module closes the
loop over it: a :class:`MorphController` watches a tenant's sustained
load (a public per-window admitted count) and flips the tenant between
``secure`` and ``morphed`` mode, but only for tenants the operator has
*declassified*.  A tenant that never appears in the declassified set can
never leave secure mode, no matter what the load does — the controller
enforces the policy, the audit enforces that the controller's inputs
stayed public.

Hysteresis (separate high/low watermarks plus a sustain count) makes the
controller immune to single-window spikes and guarantees convergence on
step loads: a constant load is on one side of the watermark band, so
after ``sustain`` windows the mode settles and never flips again.

:func:`drive_morphing_backend` is the sim-tier plant: it replays an
arrival list through a cycle-accurate backend, evaluating the controller
at fixed cycle-window boundaries and routing each access through
``submit`` or ``submit_plain`` per the tenant's current mode.  Each
evaluation emits a ``CONTROL`` tracer span so controller overhead shows
up in hotspot attribution like any protocol phase.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.control.decisions import ControlDecision
from repro.obs.tracer import CATEGORY_PROTOCOL, NULL_TRACER, Tracer

MODE_SECURE = "secure"
MODE_MORPHED = "morphed"

#: cycles charged per controller evaluation in the sim-tier driver
CONTROL_EVAL_CYCLES = 1


class MorphController:
    """Hysteretic per-tenant design switch, gated by declassification."""

    def __init__(self, declassified: FrozenSet[str],
                 high_watermark: int = 8, low_watermark: int = 2,
                 sustain: int = 2, name: str = "morph"):
        if low_watermark >= high_watermark:
            raise ValueError("low watermark must sit below high watermark")
        if sustain < 1:
            raise ValueError("sustain must be at least 1 window")
        self.name = name
        self.declassified = frozenset(declassified)
        self.high_watermark = high_watermark
        self.low_watermark = low_watermark
        self.sustain = sustain
        self._modes: Dict[str, str] = {}
        self._streaks: Dict[str, int] = {}

    def mode(self, tenant: str) -> str:
        return self._modes.get(tenant, MODE_SECURE)

    def modes(self) -> Dict[str, str]:
        """Current mode of every tenant the controller has seen."""
        return {tenant: self.mode(tenant) for tenant in sorted(self._modes)}

    def plan(self, window: int, tick: int, tenant: str,
             load: int) -> Optional[ControlDecision]:
        """Evaluate one tenant against one window's admitted count.

        Returns a decision only when the mode flips (or a flip was
        earned but blocked by the declassification gate) — steady
        windows leave no record, keeping decision logs proportional to
        actual mode changes.
        """
        mode = self.mode(tenant)
        wants = mode
        if mode == MODE_SECURE and load >= self.high_watermark:
            wants = MODE_MORPHED
        elif mode == MODE_MORPHED and load <= self.low_watermark:
            wants = MODE_SECURE
        if wants == mode:
            self._streaks[tenant] = 0
            return None
        streak = self._streaks.get(tenant, 0) + 1
        self._streaks[tenant] = streak
        if streak < self.sustain:
            return None
        self._streaks[tenant] = 0
        signal = {"tenant": tenant, "load": load, "streak": streak}
        before = {"mode": mode}
        if wants == MODE_MORPHED and tenant not in self.declassified:
            return ControlDecision(
                controller=self.name, window=window, tick=tick,
                signal=signal, before=before, after=dict(before),
                applied=False, reason="not-declassified")
        self._modes[tenant] = wants
        return ControlDecision(
            controller=self.name, window=window, tick=tick, signal=signal,
            before=before, after={"mode": wants}, applied=True,
            reason=f"sustained-{'high' if wants == MODE_MORPHED else 'low'}"
                   "-load")


@dataclass
class MorphDriveResult:
    """What one morphing sim-tier drive produced."""

    decisions: List[ControlDecision]
    secure_accesses: int
    plain_accesses: int
    completions: List[int]
    control_cycles: int
    end_cycle: int


def drive_morphing_backend(backend, events, controller: MorphController,
                           arrivals: List[Tuple[int, str, int, bool]],
                           window_cycles: int,
                           tracer: Tracer = NULL_TRACER) -> MorphDriveResult:
    """Replay ``arrivals`` through a morphing backend under control.

    ``arrivals`` is a list of ``(cycle, tenant, line_address, is_write)``
    in non-decreasing cycle order.  At every ``window_cycles`` boundary
    the controller is evaluated on each tenant's admitted count for the
    window just closed — a pure function of public arrival counts — and
    subsequent accesses for a morphed tenant go through the backend's
    ``submit_plain`` seam instead of the full ``accessORAM`` chain.

    The drive is batched per window: a window's accesses are submitted,
    the event queue drains, then the boundary evaluation runs at the
    later of the window end and the quiesce time.  Every evaluation
    charges :data:`CONTROL_EVAL_CYCLES` and emits a ``CONTROL`` span.
    """
    if window_cycles < 1:
        raise ValueError("window must be at least one cycle")
    decisions: List[ControlDecision] = []
    completions: List[int] = []
    secure = plain = control_cycles = 0
    window_loads: Dict[str, int] = {}
    window_index = 0
    position = 0
    count = len(arrivals)
    while position < count:
        window_end = (window_index + 1) * window_cycles
        while position < count and arrivals[position][0] < window_end:
            cycle, tenant, address, is_write = arrivals[position]
            window_loads[tenant] = window_loads.get(tenant, 0) + 1
            if controller.mode(tenant) == MODE_MORPHED:
                plain += 1
                backend.submit_plain(address, cycle, is_write,
                                     completions.append)
            else:
                secure += 1
                backend.submit(address, cycle, is_write,
                               completions.append)
            position += 1
        quiesce = events.run()
        boundary = max(window_end, quiesce)
        for tenant in sorted(window_loads):
            decision = controller.plan(window_index, boundary, tenant,
                                       window_loads[tenant])
            control_cycles += CONTROL_EVAL_CYCLES
            if tracer.enabled:
                tracer.span("CONTROL", CATEGORY_PROTOCOL, "control-plane",
                            boundary, boundary + CONTROL_EVAL_CYCLES)
            if decision is not None:
                decisions.append(decision)
        window_loads.clear()
        window_index += 1
    end_cycle = events.run()
    backend.finalize(end_cycle)
    return MorphDriveResult(decisions=decisions, secure_accesses=secure,
                            plain_accesses=plain, completions=completions,
                            control_cycles=control_cycles,
                            end_cycle=end_cycle)
