"""Feedback control of the transfer queue's drain probability *p*.

Section IV-C fixes the open-loop math: draining with probability *p*
gives utilization rho = lambda / (lambda + p), and M/M/1/K overflow
probability ``mm1k_full_probability(rho, K)``.  The controller inverts
that chain.  Given an overflow *budget* epsilon it solves for the
largest utilization the budget admits (:func:`target_utilization`),
measures the actual per-access arrival fraction over a cycle window,
and re-plans

    p* = lambda_hat * (1 - rho*) / rho*

(:func:`setpoint_probability`, the inverse of
:func:`repro.analysis.queueing.drain_utilization`).  Because the model
is exact for the plant we simulate, one application per load level
reaches the set-point; a deadband absorbs measurement jitter so the
controller provably cannot oscillate on constant input.

Inputs are restricted to public aggregate counts
(:meth:`TransferQueue.counters_dict`): arrivals and offered accesses per
window, never an address or payload.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.queueing import mm1k_full_probability
from repro.control.decisions import ControlDecision


def setpoint_probability(target_rho: float,
                         arrival_rate: float = 0.25) -> float:
    """The drain probability that hits ``target_rho``: the inverse of
    ``drain_utilization``, clamped into the valid lottery range [0, 1].
    """
    if not 0.0 < target_rho <= 1.0:
        raise ValueError("target utilization must be in (0, 1]")
    if arrival_rate < 0:
        raise ValueError("arrival rate must be non-negative")
    return min(1.0, max(0.0, arrival_rate * (1.0 - target_rho) / target_rho))


def target_utilization(capacity: int, overflow_budget: float,
                       tolerance: float = 1e-9) -> float:
    """Largest rho with M/M/1/K overflow probability <= the budget.

    ``mm1k_full_probability`` is monotone increasing in rho, so a plain
    bisection over [0, 1] converges; running the queue at the largest
    admissible rho spends the fewest dummy drain accesses that still
    meet the budget.
    """
    if capacity < 1:
        raise ValueError("capacity must be at least 1")
    if not 0.0 < overflow_budget < 1.0:
        raise ValueError("overflow budget must be in (0, 1)")
    if mm1k_full_probability(1.0, capacity) <= overflow_budget:
        return 1.0
    low, high = 0.0, 1.0
    while high - low > tolerance:
        mid = (low + high) / 2.0
        if mm1k_full_probability(mid, capacity) <= overflow_budget:
            low = mid
        else:
            high = mid
    return low


class DrainController:
    """Re-plans a transfer queue's *p* at cycle-window boundaries.

    The controller is pure: :meth:`plan` maps public window counts to a
    :class:`ControlDecision`, and the caller applies
    ``queue.set_drain_probability(decision.after["p"])`` when
    ``decision.applied`` — the setter's own validation is the hard
    p-in-[0,1] backstop behind the clamp here.
    """

    def __init__(self, capacity: int, initial_probability: float,
                 overflow_budget: float = 1e-6, deadband: float = 0.02,
                 name: str = "drain"):
        if not 0.0 <= initial_probability <= 1.0:
            raise ValueError("drain probability must be in [0, 1]")
        if deadband < 0:
            raise ValueError("deadband must be non-negative")
        self.name = name
        self.capacity = capacity
        self.overflow_budget = overflow_budget
        self.deadband = deadband
        self.target_rho = target_utilization(capacity, overflow_budget)
        self.probability = initial_probability
        self._last_arrivals = 0
        self._last_offered = 0

    def plan(self, window: int, tick: int, arrivals: int,
             offered: int) -> ControlDecision:
        """One evaluation: cumulative public counts in, decision out.

        ``arrivals`` is the queue's cumulative arrival count and
        ``offered`` the cumulative accesses that could have produced an
        arrival; their per-window deltas estimate the arrival fraction
        lambda_hat that the set-point inversion needs.
        """
        arrived = arrivals - self._last_arrivals
        seen = offered - self._last_offered
        self._last_arrivals = arrivals
        self._last_offered = offered
        before = {"p": self.probability}
        signal = {"arrivals": arrived, "offered": seen}
        if seen <= 0:
            return ControlDecision(
                controller=self.name, window=window, tick=tick,
                signal=signal, before=before, after=dict(before),
                applied=False, reason="no-traffic")
        lambda_hat = arrived / seen
        signal["lambda"] = lambda_hat
        planned = (0.0 if lambda_hat == 0.0 else
                   setpoint_probability(self.target_rho, lambda_hat))
        if abs(planned - self.probability) <= self.deadband:
            return ControlDecision(
                controller=self.name, window=window, tick=tick,
                signal=signal, before=before,
                after=dict(before), applied=False, reason="within-deadband")
        self.probability = planned
        return ControlDecision(
            controller=self.name, window=window, tick=tick, signal=signal,
            before=before, after={"p": planned}, applied=True,
            reason="setpoint")

    def measured_setpoint(self) -> Optional[float]:
        """The last planned probability (None before any plan)."""
        return self.probability
