"""Adaptive control plane: deterministic, cycle-driven feedback loops.

Controllers close the loop over signals the repo already computes — the
transfer queue's public counters, the scheduler's sojourn/shed windows,
per-tenant load — and re-plan only at fixed window boundaries, so every
decision is a pure function of public aggregates and the decision log
replays byte-identically.  The obliviousness audit
(``repro.obs.audit.audit_adaptive_control``) holds the control plane to
exactly that: adapting must not become a side channel.
"""

from repro.control.admission import AdmissionController
from repro.control.decisions import (ControlDecision, applied_count,
                                     decisions_payload, window_p99)
from repro.control.drain import (DrainController, setpoint_probability,
                                 target_utilization)
from repro.control.morph import (MODE_MORPHED, MODE_SECURE,
                                 MorphController, MorphDriveResult,
                                 drive_morphing_backend)
from repro.control.plane import (CONTROL_EVAL_TICKS, PLAIN_LINK_EVENTS,
                                 ServeControlPlane)

__all__ = [
    "AdmissionController",
    "ControlDecision",
    "CONTROL_EVAL_TICKS",
    "DrainController",
    "MODE_MORPHED",
    "MODE_SECURE",
    "MorphController",
    "MorphDriveResult",
    "PLAIN_LINK_EVENTS",
    "ServeControlPlane",
    "applied_count",
    "decisions_payload",
    "drive_morphing_backend",
    "setpoint_probability",
    "target_utilization",
    "window_p99",
]
