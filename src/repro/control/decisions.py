"""Structured records of every control-plane action.

A :class:`ControlDecision` is the unit the adaptive control plane is
audited in: one record per controller evaluation that changed (or
deliberately declined to change) a knob, carrying the public signal it
acted on and the before/after state.  Decisions ride on serving reports
and inside the digest-protected ledger core, so a re-run that decides
differently is a byte-level diff — replay stability of the decision log
is part of the determinism contract.

Decisions are pure data: controllers *return* them and the plant (the
scheduler, the migration model) applies them.  Nothing in a decision may
derive from an address, a payload, or any other secret — the audit
(:func:`repro.obs.audit.audit_adaptive_control`) compares decision logs
across distinct address streams to enforce exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Union

Scalar = Union[int, float, str]


@dataclass(frozen=True)
class ControlDecision:
    """One controller evaluation at a window boundary.

    ``signal`` is the public measurement the controller saw; ``before``
    and ``after`` are the knob values around the evaluation.  When
    ``applied`` is False the knobs were left alone and ``reason`` says
    why (deadband, clamp, not-declassified, ...).
    """

    controller: str
    window: int
    tick: int
    signal: Dict[str, Scalar] = field(default_factory=dict)
    before: Dict[str, Scalar] = field(default_factory=dict)
    after: Dict[str, Scalar] = field(default_factory=dict)
    applied: bool = False
    reason: str = ""

    def to_dict(self) -> Dict[str, object]:
        """Canonical payload (stable key order via canonical_json)."""
        return {
            "controller": self.controller,
            "window": self.window,
            "tick": self.tick,
            "signal": dict(self.signal),
            "before": dict(self.before),
            "after": dict(self.after),
            "applied": self.applied,
            "reason": self.reason,
        }


def decisions_payload(decisions: List[ControlDecision]) -> List[Dict]:
    return [decision.to_dict() for decision in decisions]


def applied_count(decisions: List[ControlDecision]) -> int:
    return sum(1 for decision in decisions if decision.applied)


def window_p99(sojourns: List[int]) -> int:
    """Nearest-rank p99 of one window's sojourns (deterministic, exact).

    Windows are small (bounded by the requests a window can finish), so
    an exact sort beats a reservoir here and keeps the controller's
    input a pure function of the window's completions.
    """
    if not sojourns:
        raise ValueError("p99 of an empty window is undefined")
    ordered = sorted(sojourns)
    rank = max(1, -(-99 * len(ordered) // 100))  # ceil without floats
    return ordered[rank - 1]
