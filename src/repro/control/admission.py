"""Feedback control of the scheduler's admission depth and batch size.

The :class:`~repro.serve.scheduler.BatchingScheduler` has two knobs: how
many requests may wait (admission limit, bounded by the configured
capacity K) and how many drain per batch.  The controller steers the
window p99 sojourn toward an SLO target using only public aggregates —
the window's p99, its shed count, and the queue depth at the boundary —
with monotone, clamped moves:

* over SLO: grow the batch (amortize per-batch protocol cost) until the
  batch cap, then shrink the admission limit (shed earlier instead of
  queueing deeper);
* under half the SLO with sheds: re-open admission toward K;
* under half the SLO with a drained queue: shrink the batch back down;
* inside the [SLO/2, SLO] deadband: do nothing.

On a constant signal every move is monotone toward a clamp, so the
controller reaches a fixed point and stays there — the no-oscillation
property the hypothesis suite checks.  The admission limit never
exceeds the configured K, so the queue-bound invariant depth <= K holds
under any decision sequence.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.control.decisions import ControlDecision, Scalar


class AdmissionController:
    """SLO-tracking controller for batch size and admission limit."""

    def __init__(self, slo_p99: int, queue_capacity: int,
                 batch_size: int = 1, batch_cap: int = 0,
                 name: str = "admission"):
        if slo_p99 < 1:
            raise ValueError("SLO target must be positive")
        if queue_capacity < 1:
            raise ValueError("admission queue needs capacity >= 1")
        if batch_size < 1:
            raise ValueError("batch size must be at least 1")
        self.name = name
        self.slo_p99 = slo_p99
        self.capacity = queue_capacity
        self.batch_cap = max(batch_size,
                             batch_cap if batch_cap >= 1 else queue_capacity)
        self.batch_size = min(batch_size, self.batch_cap)
        self.admit_limit = queue_capacity

    def _state(self) -> Dict[str, Scalar]:
        return {"batch": self.batch_size, "limit": self.admit_limit}

    def plan(self, window: int, tick: int, p99: Optional[int], shed: int,
             depth: int) -> ControlDecision:
        """One evaluation at a window boundary.

        ``p99`` is the window's nearest-rank p99 sojourn (None when the
        window finished nothing — the controller holds, it has no
        measurement), ``shed`` the window's shed count, ``depth`` the
        queue depth at the boundary.
        """
        before = self._state()
        signal: Dict[str, Scalar] = {"p99": -1 if p99 is None else p99,
                                     "shed": shed, "depth": depth}

        def hold(reason: str) -> ControlDecision:
            return ControlDecision(
                controller=self.name, window=window, tick=tick,
                signal=signal, before=before, after=dict(before),
                applied=False, reason=reason)

        def move(reason: str) -> ControlDecision:
            after = self._state()
            if after == before:
                return hold("at-clamp")
            return ControlDecision(
                controller=self.name, window=window, tick=tick,
                signal=signal, before=before, after=after, applied=True,
                reason=reason)

        if p99 is None:
            return hold("no-completions")
        if p99 > self.slo_p99:
            if self.batch_size < self.batch_cap:
                self.batch_size = min(self.batch_cap, self.batch_size * 2)
                return move("over-slo:grow-batch")
            self.admit_limit = max(1, self.admit_limit * 3 // 4)
            return move("over-slo:tighten-admission")
        if 2 * p99 < self.slo_p99:
            if shed > 0 and self.admit_limit < self.capacity:
                self.admit_limit = min(
                    self.capacity,
                    self.admit_limit + max(1, self.capacity // 8))
                return move("under-slo:reopen-admission")
            if depth <= self.batch_size and self.batch_size > 1:
                self.batch_size = max(1, self.batch_size // 2)
                return move("under-slo:shrink-batch")
            return hold("under-slo:steady")
        return hold("within-deadband")
