"""Event-driven memory backends for every design point of Figures 6-9.

Each backend exposes ``submit(line_address, now, on_complete)``: the chain
of ``accessORAM`` operations a miss needs (PLB walk) advances through
completion events, and exclusive resources (SDIMM internal channels, the
serial Freecursive backend, split groups) are :class:`WorkQueue`\\ s, so
independent chains genuinely overlap — the source of the Independent
protocol's parallelism.

* :class:`NonSecureBackend` — plain FR-FCFS DRAM, the normalization base.
* :class:`FreecursiveBackend` — the paper's baseline: one serial ORAM
  backend whose path bursts stripe over all main channels.
* :class:`IndependentBackend` — one ORAM subtree per SDIMM; shuffles on the
  SDIMM-internal channels; ACCESS/PROBE/FETCH_RESULT/APPEND on main buses.
* :class:`SplitBackend` — every access fans out over all SDIMMs; data moves
  locally, metadata and the one requested block cross the main buses.
* :class:`IndepSplitBackend` — independent groups of split pairs.

Obliviousness makes ORAM timing content-independent (leaves are fresh
uniform draws, APPEND broadcasts unconditional), so backends draw leaf
randomness locally instead of tracking block positions.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Tuple

from repro.config import DesignPoint, SystemConfig
from repro.core.lowpower import RankPowerManager
from repro.dram.address import AddressMapper
from repro.dram.channel import Channel, MemoryRequest
from repro.dram.scheduler import FrFcfsScheduler
from repro.fastpath import (AccessFastPath, FASTPATH_ENABLED,
                            FastLowPowerRuns, FastTreeRuns, emit_batch,
                            pass_eligible, stamp_pass)
from repro.obs.tracer import (CATEGORY_PROTOCOL, NULL_TRACER, Tracer)
from repro.oram.layout import LowPowerLayout, TreeLayout
from repro.oram.plb import PlbFrontend
from repro.oram.tree import TreeGeometry
from repro.sim.bus import LinkBus
from repro.sim.events import EventQueue, WorkQueue
from repro.utils.bitops import ceil_div, log2_exact
from repro.utils.rng import DeterministicRng

CompletionCallback = Optional[Callable[[int], None]]


class BackendCounters:
    """Protocol-level counters shared by the secure backends."""

    def __init__(self):
        self.accessorams = 0
        self.probe_commands = 0
        self.drain_accesses = 0
        self.append_messages = 0
        self.result_blocks = 0

    def as_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)


# ----------------------------------------------------------------------
# Non-secure baseline
# ----------------------------------------------------------------------

class NonSecureBackend:
    """Conventional DRAM behind FR-FCFS schedulers (one per channel)."""

    def __init__(self, config: SystemConfig, events: EventQueue,
                 tracer: Tracer = NULL_TRACER):
        scale = config.cpu.cpu_cycles_per_mem_cycle
        self.config = config
        self.events = events
        self.tracer = tracer
        self.channels = [
            Channel(config.timing, config.organization, scale=scale,
                    refresh_enabled=config.refresh_enabled,
                    name=f"main{index}", tracer=tracer)
            for index in range(config.channels)
        ]
        self.schedulers = [FrFcfsScheduler(channel, config.scheduler,
                                           tracer=tracer)
                           for channel in self.channels]
        self._issuing = [False] * config.channels
        self._callbacks: Dict[int, CompletionCallback] = {}
        self.mapper = AddressMapper(config.organization,
                                    config.oram.block_bytes)
        self.buses: List[LinkBus] = []
        self.counters = BackendCounters()

    def submit(self, line_address: int, now: int, is_write: bool,
               on_complete: CompletionCallback = None) -> None:
        channel_index = line_address % len(self.channels)
        local_line = (line_address // len(self.channels)) % \
            self.mapper.lines_per_channel
        request = MemoryRequest(self.mapper.decode(local_line), is_write,
                                now)
        if on_complete is not None:
            self._callbacks[request.request_id] = on_complete
        self.schedulers[channel_index].enqueue(request)
        self._pump(channel_index)

    def _pump(self, channel_index: int) -> None:
        """Issue the next request; re-arm when its data burst starts.

        Re-arming at data_start (not data_end) lets the next request's
        PRE/ACT preparation overlap the current burst, as a real controller
        pipelines them; the shared data bus still serializes the bursts
        inside :meth:`Channel.schedule_access`.
        """
        if self._issuing[channel_index]:
            return
        scheduler = self.schedulers[channel_index]
        if not scheduler.has_work():
            return
        request, timing = scheduler.issue_next(self.events.now)
        self._issuing[channel_index] = True
        callback = self._callbacks.pop(request.request_id, None)

        def rearm():
            self._issuing[channel_index] = False
            self._pump(channel_index)

        self.events.at(timing.data_start, rearm)
        if callback is not None:
            self.events.at(timing.data_end,
                           lambda: callback(timing.data_end))

    def finalize(self, end_cycle: int) -> None:
        for index, scheduler in enumerate(self.schedulers):
            while scheduler.has_work():
                scheduler.issue_next(end_cycle)
        for channel in self.channels:
            channel.finalize(end_cycle)


# ----------------------------------------------------------------------
# Freecursive baseline (the paper's comparison point)
# ----------------------------------------------------------------------

class FreecursiveBackend:
    """Serial Freecursive ORAM backend striped over the main channels."""

    def __init__(self, config: SystemConfig, events: EventQueue,
                 tracer: Tracer = NULL_TRACER):
        scale = config.cpu.cpu_cycles_per_mem_cycle
        self.config = config
        self.events = events
        self.tracer = tracer
        self.channels = [
            Channel(config.timing, config.organization, scale=scale,
                    refresh_enabled=config.refresh_enabled,
                    name=f"main{index}", tracer=tracer)
            for index in range(config.channels)
        ]
        self.geometry = TreeGeometry(config.oram.levels)
        self.layout = TreeLayout(self.geometry, config.oram,
                                 config.organization, config.channels)
        self.frontend = PlbFrontend(config.oram)
        self.rng = DeterministicRng(config.seed, "freecursive-backend")
        self.skip_levels = config.effective_cached_levels
        self.crypto = config.oram.crypto_latency_cycles
        self.work = WorkQueue(events, "oram-backend")
        self.buses: List[LinkBus] = []
        self.counters = BackendCounters()
        self.fastpath: Optional[AccessFastPath] = None
        if FASTPATH_ENABLED:
            self.fastpath = AccessFastPath(
                self.channels,
                FastTreeRuns(self.layout,
                             self.channels[0]._banks_per_group),
                self.skip_levels, self.crypto, "oram-backend", tracer)

    def submit(self, line_address: int, now: int, is_write: bool,
               on_complete: CompletionCallback = None) -> None:
        operations = self.frontend.translate(line_address)
        self.counters.accessorams += len(operations)
        pending = len(operations)
        state = {"remaining": pending, "finish": now}

        def op_done(finish: int) -> None:
            state["remaining"] -= 1
            state["finish"] = finish
            if state["remaining"] == 0 and on_complete is not None:
                on_complete(finish)

        for _ in range(pending):
            self.work.enqueue(now, self._access_oram, op_done)

    def _access_oram(self, start: int) -> int:
        leaf = self.rng.random_leaf(self.geometry.leaf_count)
        fast = self.fastpath
        if fast is not None:
            end = fast.try_access(leaf, start)
            if end is not None:
                return end
        runs = self.layout.path_runs(leaf, self.skip_levels)
        read_end = start
        for channel_index, address, count in runs:
            timing = self.channels[channel_index].schedule_run(
                address, count, False, start)
            read_end = max(read_end, timing.data_end)
        write_start = read_end + self.crypto
        write_end = write_start
        for channel_index, address, count in runs:
            timing = self.channels[channel_index].schedule_run(
                address, count, True, write_start)
            write_end = max(write_end, timing.data_end)
        if self.tracer.enabled:
            self.tracer.span("PATH_READ", CATEGORY_PROTOCOL,
                             "oram-backend", start, read_end)
            self.tracer.span("PATH_WRITE", CATEGORY_PROTOCOL,
                             "oram-backend", write_start, write_end)
        return write_end + self.crypto

    def fastpath_stats(self) -> Tuple[int, int]:
        """(attempted accesses, macro-replayed accesses) for the ledger."""
        fast = self.fastpath
        if fast is None:
            return (0, 0)
        return (fast.attempts, fast.fast_accesses)

    def finalize(self, end_cycle: int) -> None:
        for channel in self.channels:
            channel.finalize(end_cycle)


# ----------------------------------------------------------------------
# SDIMM building block
# ----------------------------------------------------------------------

class SdimmDevice:
    """One SDIMM's internal world: secure buffer + its private channel.

    The device is an exclusive resource: jobs (whole or sliced path
    accesses) run through its :class:`WorkQueue` in arrival order.
    """

    def __init__(self, config: SystemConfig, events: EventQueue, name: str,
                 local_levels: int, skip_levels: int,
                 rng: DeterministicRng, tracer: Tracer = NULL_TRACER):
        scale = config.cpu.cpu_cycles_per_mem_cycle
        organization = dataclasses.replace(config.organization,
                                           dimms_per_channel=1)
        self.name = name
        self.tracer = tracer
        self.channel = Channel(config.timing, organization, scale=scale,
                               refresh_enabled=config.refresh_enabled,
                               on_dimm=True, name=name, tracer=tracer)
        self.geometry = TreeGeometry(local_levels)
        self.low_power = config.sdimm.low_power_ranks
        if self.low_power:
            self.layout = LowPowerLayout(self.geometry, config.oram,
                                         organization)
            self.power = RankPowerManager(self.channel, enabled=True)
        else:
            self.layout = TreeLayout(self.geometry, config.oram,
                                     organization, channels=1)
            self.power = RankPowerManager(self.channel, enabled=False)
        self.skip_levels = min(skip_levels, local_levels - 1)
        self.crypto = config.oram.crypto_latency_cycles
        self.rng = rng
        self.work = WorkQueue(events, name)
        self.path_accesses = 0
        # morphed-mode mapper, built once so its decode memo survives
        self._plain_mapper = AddressMapper(self.channel.organization, 64)
        self.fastpath: Optional[AccessFastPath] = None
        if FASTPATH_ENABLED:
            banks_per_group = self.channel._banks_per_group
            producer = (FastLowPowerRuns(self.layout, banks_per_group)
                        if self.low_power
                        else FastTreeRuns(self.layout, banks_per_group))
            self.fastpath = AccessFastPath([self.channel], producer,
                                           self.skip_levels, self.crypto,
                                           name, tracer)

    # ------------------------------------------------------------------

    def _path_runs(self, leaf: int) -> List:
        """(coordinates, line count) streaming runs of one path."""
        if self.low_power:
            return self.layout.path_runs(leaf, self.skip_levels)
        return [(address, count) for _, address, count in
                self.layout.path_runs(leaf, self.skip_levels)]

    @staticmethod
    def slice_runs(runs: List, way: int, ways: int) -> List:
        """One device's 1/N share of a path (Split bit-slicing).

        A member's DRAM stores its slices packed, so its share of a
        ``count``-line run occupies about ``count / ways`` lines of its own
        memory at the same coordinates.
        """
        if ways <= 1:
            return runs
        share = []
        for address, count in runs:
            portion = (count - way + ways - 1) // ways
            if portion > 0:
                share.append((address, portion))
        return share

    def random_leaf(self) -> int:
        return self.rng.random_leaf(self.geometry.leaf_count)

    def prepare_rank(self, leaf: int, start: int) -> int:
        """Wake the rank owning ``leaf``'s subtree (low-power layout)."""
        if self.low_power:
            return self.power.prepare_access(
                self.layout.rank_of_leaf(leaf), start)
        return start

    def schedule_runs(self, runs: List, is_write: bool, start: int) -> int:
        end = start
        for address, count in runs:
            timing = self.channel.schedule_run(address, count, is_write,
                                               start)
            end = max(end, timing.data_end)
        return end

    def perform_path_access(self, start: int) -> int:
        """One local accessORAM: path read, crypto, path write-back."""
        self.path_accesses += 1
        leaf = self.random_leaf()
        start = self.prepare_rank(leaf, start)
        fast = self.fastpath
        if fast is not None:
            end = fast.try_access(leaf, start)
            if end is not None:
                return end
        runs = self._path_runs(leaf)
        if not runs:
            return start + 2 * self.crypto
        read_end = self.schedule_runs(runs, False, start)
        write_end = self.schedule_runs(runs, True, read_end + self.crypto)
        if self.tracer.enabled:
            self.tracer.span("PATH_READ", CATEGORY_PROTOCOL, self.name,
                             start, read_end)
            self.tracer.span("PATH_WRITE", CATEGORY_PROTOCOL, self.name,
                             read_end + self.crypto, write_end)
        return write_end + self.crypto

    @property
    def dram_path_lines(self) -> int:
        """Lines one full path access touches in this device's DRAM."""
        return sum(count for _, count in self._path_runs(0))

    def perform_plain_access(self, start: int, line_address: int,
                             is_write: bool) -> int:
        """A single non-secure line access on this DIMM (morphed mode).

        Section III-A.4: "an SDIMM-based system can easily morph between a
        secure and non-secure memory" — the buffer simply relays a normal
        access instead of running ``accessORAM``.
        """
        mapper = self._plain_mapper
        address = mapper.decode(line_address % mapper.lines_per_channel)
        start = self.prepare_rank_by_index(address.rank, start)
        timing = self.channel.schedule_access(address, is_write, start)
        return timing.data_end

    def prepare_rank_by_index(self, rank: int, start: int) -> int:
        if self.low_power:
            return self.power.prepare_access(rank, start)
        return start

    def finalize(self, end_cycle: int) -> None:
        self.power.finish(end_cycle)
        self.channel.finalize(end_cycle)


# ----------------------------------------------------------------------
# Independent protocol backend
# ----------------------------------------------------------------------

class IndependentBackend:
    """One subtree per SDIMM; requests fan out, shuffles stay local."""

    def __init__(self, config: SystemConfig, events: EventQueue,
                 tracer: Tracer = NULL_TRACER):
        scale = config.cpu.cpu_cycles_per_mem_cycle
        self.config = config
        self.events = events
        self.tracer = tracer
        count = config.sdimm_count
        partition_bits = log2_exact(count)
        local_levels = config.oram.levels - partition_bits
        skip = max(0, config.effective_cached_levels - partition_bits)
        rng = DeterministicRng(config.seed, "independent-backend")
        self.devices = [
            SdimmDevice(config, events, f"sdimm{index}", local_levels, skip,
                        rng.child(f"dev{index}"), tracer=tracer)
            for index in range(count)
        ]
        burst = config.timing.tburst * scale
        self.buses = [LinkBus(burst, name=f"bus{index}", tracer=tracer)
                      for index in range(config.channels)]
        self._bus_of = [index // config.organization.dimms_per_channel
                        for index in range(count)]
        self.frontend = PlbFrontend(config.oram)
        self.rng = rng.child("route")
        self.probe_interval = (config.sdimm.probe_interval_mem_cycles *
                               scale)
        self.drain_probability = config.sdimm.drain_probability
        self.crypto = config.oram.crypto_latency_cycles
        self.channels = [device.channel for device in self.devices]
        self.counters = BackendCounters()

    def submit(self, line_address: int, now: int, is_write: bool,
               on_complete: CompletionCallback = None) -> None:
        for bus in self.buses:
            bus.advance(now)
        operations = self.frontend.translate(line_address)
        self.counters.accessorams += len(operations)
        self._next_op(len(operations), now, on_complete)

    def _next_op(self, remaining: int, now: int,
                 on_complete: CompletionCallback) -> None:
        if remaining == 0:
            if on_complete is not None:
                on_complete(now)
            return
        owner = self.rng.randrange(len(self.devices))
        device = self.devices[owner]
        bus = self.buses[self._bus_of[owner]]

        # Step 1: ACCESS + one block of data on the owner's channel.
        access_start, request_end = bus.reserve_block(now)
        arrival = request_end + self.crypto
        if self.tracer.enabled:
            self.tracer.span("ACCESS", CATEGORY_PROTOCOL, bus.name,
                             access_start, request_end)

        def done(ready: int) -> None:
            # Step 5: PROBE polling finds the response, FETCH_RESULT
            # returns the block.
            detected = self._probe(request_end, ready, bus)
            _, response_end = bus.reserve_block(detected)
            self.counters.result_blocks += 1
            if self.tracer.enabled:
                self.tracer.span("PROBE", CATEGORY_PROTOCOL, bus.name,
                                 ready, detected)
                self.tracer.span("FETCH_RESULT", CATEGORY_PROTOCOL,
                                 bus.name, detected, response_end)
            # Step 6: APPEND one block to every SDIMM (dummies included).
            new_owner = self.rng.randrange(len(self.devices))
            for index, target in enumerate(self.devices):
                target_bus = self.buses[self._bus_of[index]]
                append_start, append_end = \
                    target_bus.reserve_block(response_end)
                self.counters.append_messages += 1
                if self.tracer.enabled:
                    self.tracer.span("APPEND", CATEGORY_PROTOCOL,
                                     target_bus.name, append_start,
                                     append_end)
                migrated = index == new_owner and new_owner != owner
                if migrated and self.rng.bernoulli(self.drain_probability):
                    # queue drain: the receiver spends a dummy access
                    self.counters.drain_accesses += 1
                    if self.tracer.enabled:
                        self.tracer.instant("drain", CATEGORY_PROTOCOL,
                                            target.name, append_end)
                    target.work.enqueue(append_end,
                                        target.perform_path_access)
            self._next_op(remaining - 1, response_end + self.crypto,
                          on_complete)

        device.work.enqueue(arrival, device.perform_path_access, done)

    def _probe(self, first_possible: int, ready: int, bus: LinkBus) -> int:
        """Poll from ``first_possible`` until after ``ready``."""
        interval = self.probe_interval
        elapsed = max(0, ready - first_possible)
        polls = elapsed // interval + 1
        self.counters.probe_commands += polls
        bus.command_slots += int(polls)
        return max(first_possible + polls * interval, ready)

    def submit_plain(self, line_address: int, now: int, is_write: bool,
                     on_complete: CompletionCallback = None) -> None:
        """Morphed non-secure access: one line, no ORAM (Section III-A.4).

        The request and response still cross the (encrypted) link — one
        block each way — but the buffer relays a single DRAM access
        instead of shuffling a path.
        """
        device_index = line_address % len(self.devices)
        device = self.devices[device_index]
        bus = self.buses[self._bus_of[device_index]]
        _, request_end = bus.reserve_block(now)

        def work(start: int) -> int:
            return device.perform_plain_access(start, line_address,
                                               is_write)

        def done(ready: int) -> None:
            _, response_end = bus.reserve_block(ready)
            if on_complete is not None:
                on_complete(response_end)

        device.work.enqueue(request_end, work,
                            done if not is_write else None)

    def finalize(self, end_cycle: int) -> None:
        for device in self.devices:
            device.finalize(end_cycle)

    def fastpath_stats(self) -> Tuple[int, int]:
        attempts = fast = 0
        for device in self.devices:
            if device.fastpath is not None:
                attempts += device.fastpath.attempts
                fast += device.fastpath.fast_accesses
        return attempts, fast


# ----------------------------------------------------------------------
# Split protocol backend
# ----------------------------------------------------------------------

class SplitGroupDevice:
    """A set of SDIMMs serving every access together, bit-sliced.

    The group as a whole is the exclusive resource (one split access
    engages every member), so it owns the WorkQueue; members contribute
    their internal channels.
    """

    def __init__(self, config: SystemConfig, events: EventQueue,
                 members: List[SdimmDevice], member_buses: List[LinkBus],
                 crypto: int, name: str, tracer: Tracer = NULL_TRACER):
        self.config = config
        self.name = name
        self.tracer = tracer
        self.members = members
        self.member_buses = member_buses
        self.ways = len(members)
        self.crypto = crypto
        self.work = WorkQueue(events, name)
        geometry = members[0].geometry
        self.geometry = geometry
        self._path_buckets = geometry.levels - members[0].skip_levels
        # RECEIVE_LIST payload: ~8 B counter + 2 B of orders per bucket,
        # plus the (always present) updated block.
        self._list_lines = ceil_div(self._path_buckets * 10, 64) + 1
        self._last_data_ready = 0
        self.fastpath_attempts = 0
        self.fastpath_accesses = 0
        leader = members[0]
        self._fast_producer = (leader.fastpath.producer
                               if leader.fastpath is not None else None)

    def _stamp_member_pass(self, member: SdimmDevice, share, is_write: bool,
                           earliest: int, rank_indices) -> Optional[int]:
        """Stamp one member's pass share flat, or ``None`` to fall back.

        An empty share is trivially "stamped" (the event core would
        schedule nothing and return ``earliest``); otherwise the pass
        must be eligible on the member's channel.  Per-member event
        batches commit immediately, so the emission order matches the
        slow core's member-by-member loop exactly.
        """
        if not share:
            return earliest
        if not pass_eligible(member.channel, rank_indices, earliest):
            return None
        batch = [] if self.tracer.enabled else None
        end = stamp_pass(member.channel, share, is_write, earliest, batch)
        if batch:
            emit_batch(self.tracer, batch)
        return end

    def perform_split_access(self, start: int) -> int:
        """One split accessORAM; returns the *backend busy-until* time.

        The CPU-visible data-ready time (before write-back) is stored in
        ``last_data_ready`` for the completion callback.
        """
        leader = self.members[0]
        leaf = leader.random_leaf()
        producer = self._fast_producer
        shares = rank_indices = None
        if producer is not None:
            self.fastpath_attempts += 1
            pattern = producer.pattern(leaf, leader.skip_levels)
            if pattern.runs:
                shares = pattern.slices(self.ways)
                rank_indices = tuple(rank for _, rank in pattern.sig_ranks)
        all_fast = shares is not None
        runs = None
        # Step 1: FETCH_DATA — every member pulls its slice of the path.
        read_ends = []
        for way, member in enumerate(self.members):
            member.path_accesses += 1
            member_start = member.prepare_rank(leaf, start)
            end = None
            if shares is not None:
                end = self._stamp_member_pass(member, shares[way], False,
                                              member_start, rank_indices)
            if end is None:
                all_fast = False
                if runs is None:
                    runs = leader._path_runs(leaf)
                share = SdimmDevice.slice_runs(runs, way, self.ways)
                end = member.schedule_runs(share, False, member_start)
            read_ends.append(end)
        # Step 2: metadata slices cross the main bus (1 line per bucket in
        # total, split across the members' buses).
        meta_end = start
        share_lines = ceil_div(self._path_buckets, self.ways)
        for bus in self.member_buses:
            _, end = bus.reserve_lines(start, share_lines)
            meta_end = max(meta_end, end)
        merged = max(max(read_ends), meta_end) + self.crypto
        # Step 4: FETCH_STASH — the one requested block, sliced.  The
        # eviction plan depends only on the merged metadata, so RECEIVE_LIST
        # (step 5) ships concurrently with the block fetch.
        stash_end = merged
        list_end = merged
        for bus in self.member_buses:
            _, end = bus.reserve_lines(merged, 1)
            stash_end = max(stash_end, end)
            _, end = bus.reserve_lines(merged,
                                       ceil_div(self._list_lines, self.ways))
            list_end = max(list_end, end)
        data_ready = stash_end + self.crypto
        self._last_data_ready = data_ready
        write_ends = []
        for way, member in enumerate(self.members):
            end = None
            if shares is not None:
                end = self._stamp_member_pass(member, shares[way], True,
                                              list_end, rank_indices)
            if end is None:
                all_fast = False
                if runs is None:
                    runs = leader._path_runs(leaf)
                share = SdimmDevice.slice_runs(runs, way, self.ways)
                end = member.schedule_runs(share, True, list_end)
            write_ends.append(end)
        write_end = max(write_ends)
        if all_fast:
            self.fastpath_accesses += 1
        if self.tracer.enabled:
            lane = self.name
            self.tracer.span("FETCH_DATA", CATEGORY_PROTOCOL, lane,
                             start, max(read_ends))
            self.tracer.span("METADATA", CATEGORY_PROTOCOL, lane,
                             start, meta_end)
            self.tracer.span("FETCH_STASH", CATEGORY_PROTOCOL, lane,
                             merged, stash_end)
            self.tracer.span("RECEIVE_LIST", CATEGORY_PROTOCOL, lane,
                             merged, list_end)
            self.tracer.span("PATH_WRITE", CATEGORY_PROTOCOL, lane,
                             list_end, write_end)
        return write_end

    @property
    def last_data_ready(self) -> int:
        return self._last_data_ready


class SplitBackend:
    """All SDIMMs serve each access together (SPLIT-2 / SPLIT-4)."""

    def __init__(self, config: SystemConfig, events: EventQueue,
                 tracer: Tracer = NULL_TRACER):
        scale = config.cpu.cpu_cycles_per_mem_cycle
        self.config = config
        self.events = events
        self.tracer = tracer
        count = config.sdimm_count
        skip = config.effective_cached_levels
        rng = DeterministicRng(config.seed, "split-backend")
        devices = [
            SdimmDevice(config, events, f"sdimm{index}", config.oram.levels,
                        skip, rng.child(f"dev{index}"), tracer=tracer)
            for index in range(count)
        ]
        burst = config.timing.tburst * scale
        self.buses = [LinkBus(burst, name=f"bus{index}", tracer=tracer)
                      for index in range(config.channels)]
        member_buses = [self.buses[index //
                                   config.organization.dimms_per_channel]
                        for index in range(count)]
        self.group = SplitGroupDevice(config, events, devices, member_buses,
                                      config.oram.crypto_latency_cycles,
                                      "split-group", tracer=tracer)
        self.devices = devices
        self.frontend = PlbFrontend(config.oram)
        self.channels = [device.channel for device in devices]
        self.counters = BackendCounters()

    def submit(self, line_address: int, now: int, is_write: bool,
               on_complete: CompletionCallback = None) -> None:
        for bus in self.buses:
            bus.advance(now)
        operations = self.frontend.translate(line_address)
        self.counters.accessorams += len(operations)
        self._next_op(len(operations), now, on_complete)

    def _next_op(self, remaining: int, now: int,
                 on_complete: CompletionCallback) -> None:
        if remaining == 0:
            if on_complete is not None:
                on_complete(now)
            return
        group = self.group

        def done(_finish: int) -> None:
            # the chain continues as soon as the requested block arrives;
            # the write-back keeps the group busy in the background
            self._next_op(remaining - 1, group.last_data_ready, on_complete)

        group.work.enqueue(now, group.perform_split_access, done)

    def finalize(self, end_cycle: int) -> None:
        for device in self.devices:
            device.finalize(end_cycle)

    def fastpath_stats(self) -> Tuple[int, int]:
        attempts = self.group.fastpath_attempts
        fast = self.group.fastpath_accesses
        for device in self.devices:
            if device.fastpath is not None:
                attempts += device.fastpath.attempts
                fast += device.fastpath.fast_accesses
        return attempts, fast


# ----------------------------------------------------------------------
# Combined INDEP-SPLIT backend
# ----------------------------------------------------------------------

class IndepSplitBackend:
    """Independent groups of split pairs (Figure 7e)."""

    def __init__(self, config: SystemConfig, events: EventQueue,
                 tracer: Tracer = NULL_TRACER):
        scale = config.cpu.cpu_cycles_per_mem_cycle
        self.config = config
        self.events = events
        self.tracer = tracer
        per_channel = config.organization.dimms_per_channel
        group_count = config.channels
        partition_bits = log2_exact(group_count)
        local_levels = config.oram.levels - partition_bits
        skip = max(0, config.effective_cached_levels - partition_bits)
        rng = DeterministicRng(config.seed, "indep-split-backend")
        burst = config.timing.tburst * scale
        self.buses = [LinkBus(burst, name=f"bus{index}", tracer=tracer)
                      for index in range(config.channels)]
        self.groups: List[SplitGroupDevice] = []
        self.devices: List[SdimmDevice] = []
        for group_index in range(group_count):
            members = [
                SdimmDevice(config, events,
                            f"sdimm{group_index * per_channel + member}",
                            local_levels, skip,
                            rng.child(f"dev{group_index}-{member}"),
                            tracer=tracer)
                for member in range(per_channel)
            ]
            self.devices.extend(members)
            member_buses = [self.buses[group_index]] * per_channel
            self.groups.append(SplitGroupDevice(
                config, events, members, member_buses,
                config.oram.crypto_latency_cycles,
                f"split-group{group_index}", tracer=tracer))
        self.frontend = PlbFrontend(config.oram)
        self.rng = rng.child("route")
        self.drain_probability = config.sdimm.drain_probability
        self.crypto = config.oram.crypto_latency_cycles
        self.channels = [device.channel for device in self.devices]
        self.counters = BackendCounters()

    def submit(self, line_address: int, now: int, is_write: bool,
               on_complete: CompletionCallback = None) -> None:
        for bus in self.buses:
            bus.advance(now)
        operations = self.frontend.translate(line_address)
        self.counters.accessorams += len(operations)
        self._next_op(len(operations), now, on_complete)

    def _next_op(self, remaining: int, now: int,
                 on_complete: CompletionCallback) -> None:
        if remaining == 0:
            if on_complete is not None:
                on_complete(now)
            return
        owner = self.rng.randrange(len(self.groups))
        group = self.groups[owner]
        bus = self.buses[owner]
        access_start, request_end = bus.reserve_block(now)
        arrival = request_end + self.crypto
        if self.tracer.enabled:
            self.tracer.span("ACCESS", CATEGORY_PROTOCOL, bus.name,
                             access_start, request_end)

        def done(_finish: int) -> None:
            result_start, response_end = \
                bus.reserve_block(group.last_data_ready)
            self.counters.result_blocks += 1
            if self.tracer.enabled:
                self.tracer.span("FETCH_RESULT", CATEGORY_PROTOCOL,
                                 bus.name, result_start, response_end)
            new_owner = self.rng.randrange(len(self.groups))
            for index, target in enumerate(self.groups):
                append_start, append_end = \
                    self.buses[index].reserve_block(response_end)
                self.counters.append_messages += 1
                if self.tracer.enabled:
                    self.tracer.span("APPEND", CATEGORY_PROTOCOL,
                                     self.buses[index].name, append_start,
                                     append_end)
                migrated = index == new_owner and new_owner != owner
                if migrated and self.rng.bernoulli(self.drain_probability):
                    self.counters.drain_accesses += 1
                    if self.tracer.enabled:
                        self.tracer.instant("drain", CATEGORY_PROTOCOL,
                                            target.name, append_end)
                    target.work.enqueue(append_end,
                                        target.perform_split_access)
            self._next_op(remaining - 1, response_end + self.crypto,
                          on_complete)

        group.work.enqueue(arrival, group.perform_split_access, done)

    def finalize(self, end_cycle: int) -> None:
        for device in self.devices:
            device.finalize(end_cycle)

    def fastpath_stats(self) -> Tuple[int, int]:
        attempts = fast = 0
        for group in self.groups:
            attempts += group.fastpath_attempts
            fast += group.fastpath_accesses
        for device in self.devices:
            if device.fastpath is not None:
                attempts += device.fastpath.attempts
                fast += device.fastpath.fast_accesses
        return attempts, fast


BACKEND_CLASSES = {
    DesignPoint.NONSECURE: NonSecureBackend,
    DesignPoint.FREECURSIVE: FreecursiveBackend,
    DesignPoint.INDEP_2: IndependentBackend,
    DesignPoint.INDEP_4: IndependentBackend,
    DesignPoint.SPLIT_2: SplitBackend,
    DesignPoint.SPLIT_4: SplitBackend,
    DesignPoint.INDEP_SPLIT: IndepSplitBackend,
}
