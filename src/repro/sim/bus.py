"""The main-channel link bus used by SDIMM designs.

In an SDIMM system the CPU's memory channel no longer carries path
shuffles, only protocol messages: encrypted blocks (ACCESS payloads,
FETCH_RESULT returns, APPENDs), metadata lines (Split), and short commands.

The bus is a slotted resource with *backfill*: the memory controller packs
a message into the earliest idle gap at or after its requested time, so a
response scheduled far in the future (the SDIMM is still shuffling) does
not block an unrelated request from using the idle bus in between.  Busy
intervals are kept sorted and disjoint; :meth:`advance` prunes intervals
that can no longer be backfilled because simulation time has passed them.
"""

from __future__ import annotations

import bisect
from typing import List, Tuple

from repro.obs.tracer import CATEGORY_BUS, NULL_TRACER, Tracer


class LinkBus:
    """One DDR channel's data bus as seen by the SDIMM protocols."""

    def __init__(self, burst_cycles: int, command_cycles: int = 1,
                 name: str = "bus", tracer: Tracer = NULL_TRACER):
        if burst_cycles < 1:
            raise ValueError("burst must take at least one cycle")
        self.name = name
        self.tracer = tracer
        self.burst_cycles = burst_cycles
        self.command_cycles = command_cycles
        self._busy: List[Tuple[int, int]] = []   # sorted disjoint intervals
        self._prune_before = 0
        self.block_transfers = 0
        self.line_transfers = 0
        self.command_slots = 0
        self.busy_cycles = 0
        self.stall_cycles = 0
        self.stalls_injected = 0

    # ------------------------------------------------------------------

    def reserve_block(self, earliest: int) -> Tuple[int, int]:
        """Transfer one 64 B block (plus its command); returns (start, end)."""
        self.block_transfers += 1
        start, end = self._reserve(earliest,
                                   self.burst_cycles + self.command_cycles)
        if self.tracer.enabled:
            self.tracer.span("xfer_block", CATEGORY_BUS, self.name,
                             start, end)
        return start, end

    def reserve_lines(self, earliest: int, count: int) -> Tuple[int, int]:
        """Transfer ``count`` cache-line-sized bursts back to back."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if count == 0:
            return earliest, earliest
        self.line_transfers += count
        start, end = self._reserve(earliest, count * self.burst_cycles)
        if self.tracer.enabled:
            self.tracer.span("xfer_lines", CATEGORY_BUS, self.name,
                             start, end, lines=count)
        return start, end

    def command_slot(self, earliest: int) -> int:
        """A short command (PROBE and friends) on the command bus."""
        self.command_slots += 1
        # command/address wires are separate from data; no data-bus time
        slot = max(earliest, 0)
        if self.tracer.enabled:
            self.tracer.instant("command", CATEGORY_BUS, self.name, slot)
        return slot

    def inject_stall(self, start: int, cycles: int) -> Tuple[int, int]:
        """Reserve a dead interval: a transient SDIMM buffer stall.

        Fault injection (repro.faults) uses this to model the buffer chip
        holding the channel without transferring data — later reservations
        backfill around or after it exactly as they would a real transfer.
        Returns the occupied ``(start, end)`` interval.
        """
        if cycles < 1:
            raise ValueError("a stall must occupy at least one cycle")
        start, end = self._reserve(max(start, 0), cycles)
        self.stall_cycles += cycles
        self.stalls_injected += 1
        if self.tracer.enabled:
            self.tracer.span("stall", CATEGORY_BUS, self.name, start, end,
                             injected=1)
        return start, end

    def advance(self, now: int) -> None:
        """Tell the bus simulation time reached ``now``.

        Intervals ending before ``now`` can never be backfilled again (all
        future requests ask for ``earliest >= now``), so they are dropped to
        keep allocation fast.
        """
        self._prune_before = max(self._prune_before, now)
        if self._busy and self._busy[0][1] < self._prune_before:
            self._busy = [interval for interval in self._busy
                          if interval[1] >= self._prune_before]

    # ------------------------------------------------------------------

    def _reserve(self, earliest: int, duration: int) -> Tuple[int, int]:
        earliest = max(earliest, 0)
        start = self._find_gap(earliest, duration)
        self._insert(start, start + duration)
        self.busy_cycles += duration
        return start, start + duration

    def _find_gap(self, earliest: int, duration: int) -> int:
        candidate = earliest
        # skip intervals that end at or before the candidate
        index = bisect.bisect_right(self._busy, (candidate, candidate)) - 1
        index = max(index, 0)
        for busy_start, busy_end in self._busy[index:]:
            if busy_end <= candidate:
                continue
            if busy_start - candidate >= duration:
                return candidate
            candidate = max(candidate, busy_end)
        return candidate

    def _insert(self, start: int, end: int) -> None:
        index = bisect.bisect_left(self._busy, (start, end))
        self._busy.insert(index, (start, end))
        # merge neighbours touching this interval
        merged: List[Tuple[int, int]] = []
        for interval in self._busy:
            if merged and interval[0] <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], interval[1]))
            else:
                merged.append(interval)
        self._busy = merged

    @property
    def free_at(self) -> int:
        """End of the last reservation (idle gaps may exist before it)."""
        return self._busy[-1][1] if self._busy else 0

    @property
    def total_transfers(self) -> int:
        return self.block_transfers + self.line_transfers
