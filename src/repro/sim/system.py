"""Full-system assembly: config + workload -> one measured run.

This is the USIMM-equivalent entry point the benchmarks call: pick a
design point (Figure 7), build its backend, generate the workload's miss
trace, warm up, and measure.
"""

from __future__ import annotations

import gc
from typing import Optional

from repro.config import DesignPoint, SystemConfig
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.sim.backends import BACKEND_CLASSES
from repro.sim.cpu import SimulationDriver
from repro.sim.events import EventQueue
from repro.sim.stats import RunResult
from repro.workloads.spec import WorkloadProfile, get_profile
from repro.workloads.synthetic import iterate_trace


def build_backend(config: SystemConfig, events: Optional[EventQueue] = None,
                  tracer: Tracer = NULL_TRACER):
    """Instantiate the memory backend for a validated configuration."""
    config.validate()
    backend_class = BACKEND_CLASSES.get(config.design)
    if backend_class is None:
        raise ValueError(f"no backend for design {config.design}")
    return backend_class(config, events if events is not None
                         else EventQueue(), tracer=tracer)


def run_simulation(config: SystemConfig,
                   workload,
                   trace_length: int = 20_000,
                   warmup_records: Optional[int] = None,
                   trace_seed: int = 2018,
                   window_policy: str = "in-order",
                   tracer: Tracer = NULL_TRACER,
                   on_fault: str = "raise",
                   window_cycles: int = 0,
                   window_sink=None) -> RunResult:
    """Run one (design, workload) pair and return its measurements.

    ``workload`` is a profile name from :data:`repro.workloads.SPEC_PROFILES`
    or a :class:`~repro.workloads.spec.WorkloadProfile`.  Following the
    paper's methodology the first portion of the trace warms the LLC/PLB
    and DRAM state; measurements cover the remainder.  The paper uses
    1M + 1M accesses — scale ``trace_length`` up for higher fidelity runs
    (the default keeps a full benchmark sweep tractable in pure Python).

    ``window_cycles > 0`` is the time-series seam: every tracer event is
    additionally folded into tumbling cycle windows
    (:mod:`repro.obs.timeseries`), the snapshots land on
    ``RunResult.windows``, and ``window_sink(snapshot)`` — if given —
    fires as each window falls behind the stream's high-water mark (the
    hook a runtime controller subscribes to).
    """
    if isinstance(workload, WorkloadProfile):
        profile = workload
    else:
        profile = get_profile(workload)
    if warmup_records is None:
        warmup_records = trace_length // 3
    if warmup_records >= trace_length:
        raise ValueError("warm-up must leave a measurement window")

    windowed = None
    if window_cycles > 0:
        from repro.obs.timeseries import WindowedTracer

        windowed = WindowedTracer(tracer, window_cycles,
                                  on_flush=window_sink)
        tracer = windowed
    events = EventQueue()
    backend = build_backend(config, events, tracer=tracer)
    driver = SimulationDriver(config, backend, events, mlp=profile.mlp,
                              workload_name=profile.name,
                              window_policy=window_policy,
                              tracer=tracer)
    trace = iterate_trace(profile, trace_length, seed=trace_seed)
    # One run allocates millions of short-lived tuples/events; cyclic
    # collection pauses buy nothing mid-run (the object graph is torn
    # down wholesale afterwards) and cost ~15% of wall time, so pause
    # the collector for the duration.  Purely a host-side change: the
    # simulated state machine never observes the collector.
    was_collecting = gc.isenabled()
    if was_collecting:
        gc.disable()
    try:
        result = driver.run(trace, warmup_records=warmup_records,
                            on_fault=on_fault)
    finally:
        if was_collecting:
            gc.enable()
    if windowed is not None:
        from repro.obs.timeseries import windows_to_dicts

        result.windows = windows_to_dicts(windowed.close())
    return result


def run_trace_file(config: SystemConfig, path: str, mlp: int = 4,
                   warmup_records: int = 0,
                   window_policy: str = "in-order",
                   tracer: Tracer = NULL_TRACER,
                   on_fault: str = "raise") -> RunResult:
    """Run a trace previously saved with
    :func:`repro.workloads.trace.save_trace` (or captured elsewhere in the
    same format) through any design point."""
    from repro.workloads.trace import load_trace

    records = load_trace(path)
    if warmup_records >= len(records):
        raise ValueError("warm-up must leave a measurement window")
    events = EventQueue()
    backend = build_backend(config, events, tracer=tracer)
    driver = SimulationDriver(config, backend, events, mlp=mlp,
                              workload_name=path,
                              window_policy=window_policy,
                              tracer=tracer)
    return driver.run(records, warmup_records=warmup_records,
                      on_fault=on_fault)


def run_design_comparison(designs, workload, channels: int,
                          config_factory,
                          trace_length: int = 20_000,
                          **kwargs) -> dict:
    """Run several designs on one workload with a shared config factory.

    ``config_factory(design, channels)`` builds the configuration (e.g.
    :func:`repro.config.table2_config`).  Returns {design: RunResult}.
    """
    results = {}
    for design in designs:
        config = config_factory(design, channels)
        results[design] = run_simulation(config, workload,
                                         trace_length=trace_length, **kwargs)
    return results


#: The designs of Figure 8 (single channel) and Figure 9 (double channel),
#: with the baselines they are normalized against.
FIGURE8_DESIGNS = (DesignPoint.FREECURSIVE, DesignPoint.INDEP_2,
                   DesignPoint.SPLIT_2)
FIGURE9_DESIGNS = (DesignPoint.FREECURSIVE, DesignPoint.INDEP_4,
                   DesignPoint.SPLIT_4, DesignPoint.INDEP_SPLIT)
