"""Event-driven trace CPU: LLC, in-order miss window, warm-up discipline.

Models the in-order 1.6 GHz core of Table II at trace granularity: each
record's gap is compute time; an LLC hit costs the 10-cycle LLC latency; a
miss occupies one of the core's outstanding-miss slots (the workload's MLP
bound) until the memory backend completes it.  Slots retire *in order* —
the oldest miss gates the window, as an in-order ROB does — while the
backend completes misses whenever its resources produce them.  Dirty LLC
victims are posted to the backend without blocking the core.

Following the paper's methodology, the run warms up the LLC (and the
backend's PLB and row buffers) before the measured window begins.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, Iterator, Optional

from repro.cache.cache import SetAssociativeCache
from repro.config import SystemConfig
from repro.core.split import SplitIntegrityError
from repro.core.transfer_queue import TransferQueueOverflow
from repro.obs.metrics import phase_breakdown
from repro.obs.tracer import CATEGORY_CPU, NULL_TRACER, Tracer
from repro.oram.integrity import IntegrityError
from repro.oram.path_oram import StashOverflowError
from repro.sim.events import EventQueue
from repro.sim.stats import (LatencyStats, RunResult,
                             failure_record_from_exception)
from repro.utils.rng import DeterministicRng
from repro.workloads.trace import TraceRecord

#: Detections that may terminate a run gracefully under on_fault="record".
RECOVERABLE_FAULTS = (IntegrityError, SplitIntegrityError,
                      StashOverflowError, TransferQueueOverflow)


class _MissSlot:
    """One in-flight demand miss in the core's window."""

    __slots__ = ("issue_cycle", "completion", "measured")

    def __init__(self, issue_cycle: int, measured: bool):
        self.issue_cycle = issue_cycle
        self.completion: Optional[int] = None
        self.measured = measured


class SimulationDriver:
    """Runs one trace through one backend and collects statistics.

    ``window_policy`` selects how miss-window slots retire: ``"in-order"``
    (default, Table II's in-order core — the oldest miss gates the window)
    or ``"out-of-order"`` (any completion frees a slot — an aggressive
    OoO core's behaviour, used to quantify how much of the SDIMM designs'
    headroom the in-order window leaves on the table).
    """

    def __init__(self, config: SystemConfig, backend, events: EventQueue,
                 mlp: int, workload_name: str = "workload",
                 window_policy: str = "in-order",
                 tracer: Tracer = NULL_TRACER):
        if window_policy not in ("in-order", "out-of-order"):
            raise ValueError(f"unknown window policy {window_policy!r}")
        self.config = config
        self.backend = backend
        self.events = events
        self.tracer = tracer
        self.mlp = max(1, mlp)
        self.window_policy = window_policy
        self.workload_name = workload_name
        self.llc = SetAssociativeCache(
            capacity_bytes=config.cpu.llc_bytes,
            line_bytes=config.cpu.llc_line_bytes,
            associativity=config.cpu.llc_assoc,
            name="llc")
        # run state
        self._records: Optional[Iterator[TraceRecord]] = None
        self._window: deque = deque()
        self._cpu_clock = 0
        self._blocked = False
        self._warmup_records = 0
        self._record_index = 0
        self._window_start_cycle = 0
        self._accessorams_at_window = 0
        self._measured_misses = 0
        self._measured_hits = 0
        self._latency = LatencyStats(
            sample_rng=DeterministicRng(config.seed, "latency-reservoir"))
        self._final_cycle = 0

    # ------------------------------------------------------------------

    def run(self, trace: Iterable[TraceRecord],
            warmup_records: int = 0,
            on_fault: str = "raise") -> RunResult:
        """Execute the trace; statistics cover the post-warm-up window.

        ``on_fault`` controls what a detection does to the run:

        * ``"raise"`` (default) — detections propagate, today's behaviour;
        * ``"record"`` — an :class:`IntegrityError`, Split integrity error,
          stash overflow, or transfer-queue overflow becomes a structured
          entry in ``RunResult.failures`` and the partial statistics up to
          the terminal event are preserved.
        """
        if on_fault not in ("raise", "record"):
            raise ValueError(f"unknown on_fault policy {on_fault!r}")
        self._records = iter(trace)
        self._warmup_records = warmup_records
        self.events.at(0, self._issue_loop)
        terminal = None
        try:
            self.events.run()
        except RECOVERABLE_FAULTS as error:
            if on_fault != "record":
                raise
            terminal = failure_record_from_exception(error)
        end = max(self._final_cycle, self.events.now)
        self.backend.finalize(end)
        result = self._build_result(end)
        if terminal is not None:
            terminal["terminal"] = True
            result.failures.append(terminal)
        return result

    # ------------------------------------------------------------------
    # The core's issue process
    # ------------------------------------------------------------------

    def _issue_loop(self) -> None:
        """Consume records until the miss window blocks or the trace ends."""
        while True:
            if len(self._window) >= self.mlp:
                self._blocked = True
                return  # resume from _on_completion when the head retires
            record = next(self._records, None)
            if record is None:
                self._final_cycle = max(self._final_cycle, self._cpu_clock)
                return
            self._step(record)

    def _step(self, record: TraceRecord) -> None:
        if self._record_index == self._warmup_records:
            self._begin_measurement()
        self._record_index += 1
        measuring = self._record_index > self._warmup_records

        self._cpu_clock += record.gap_cycles
        result = self.llc.access(record.line_address, record.is_write)
        if result.hit:
            self._cpu_clock += self.config.cpu.llc_latency_cycles
            if measuring:
                self._measured_hits += 1
            return
        if result.victim_dirty and result.victim_address is not None:
            # posted ORAM/DRAM write for the dirty victim
            self.backend.submit(result.victim_address, self._cpu_clock,
                                is_write=True)
        slot = _MissSlot(self._cpu_clock, measuring)
        self._window.append(slot)
        self.backend.submit(record.line_address, self._cpu_clock,
                            is_write=False,
                            on_complete=lambda finish, s=slot:
                            self._on_completion(s, finish))

    def _on_completion(self, slot: _MissSlot, finish: int) -> None:
        slot.completion = finish
        if self.window_policy == "out-of-order":
            self._window.remove(slot)
            self._retire(slot)
        else:
            # in-order retire: pop every completed miss at the window head
            while self._window and self._window[0].completion is not None:
                self._retire(self._window.popleft())
        if self._blocked and len(self._window) < self.mlp:
            self._blocked = False
            self._cpu_clock = max(self._cpu_clock, self.events.now)
            self._issue_loop()

    def _retire(self, slot: _MissSlot) -> None:
        if slot.measured:
            self._measured_misses += 1
            self._latency.record(max(0, slot.completion - slot.issue_cycle))
        if self.tracer.enabled:
            self.tracer.span("miss", CATEGORY_CPU, "cpu", slot.issue_cycle,
                             max(slot.issue_cycle, slot.completion),
                             measured=int(slot.measured))
        if self.window_policy == "in-order":
            # commit order: the core cannot run past an unretired miss
            self._cpu_clock = max(self._cpu_clock, slot.completion)
        self._final_cycle = max(self._final_cycle, slot.completion)

    # ------------------------------------------------------------------

    def _begin_measurement(self) -> None:
        self._window_start_cycle = self._cpu_clock
        self._accessorams_at_window = self.backend.counters.accessorams
        for bus in self.backend.buses:
            bus.block_transfers = 0
            bus.line_transfers = 0
            bus.command_slots = 0
            bus.busy_cycles = 0

    def _build_result(self, end: int) -> RunResult:
        execution = end - self._window_start_cycle
        total = self._measured_hits + self._measured_misses
        phases = {}
        if self.tracer.enabled:
            # Exclusive attribution of every measured-window cycle to the
            # highest-priority active protocol phase (or idle): the sum
            # equals execution_cycles by construction.
            phases = phase_breakdown(getattr(self.tracer, "events", ()),
                                     self._window_start_cycle, end)
        return RunResult(
            design=self.config.design.value,
            workload=self.workload_name,
            execution_cycles=execution,
            miss_count=self._measured_misses,
            accessoram_count=(self.backend.counters.accessorams -
                              self._accessorams_at_window),
            llc_hit_rate=self._measured_hits / total if total else 0.0,
            miss_latency=self._latency,
            channel_counters=[
                dict(channel.counters.as_dict(),
                     on_dimm=int(channel.on_dimm))
                for channel in self.backend.channels],
            on_dimm_counters=[channel.counters.as_dict()
                              for channel in self.backend.channels
                              if channel.on_dimm],
            main_bus_lines=sum(bus.total_transfers
                               for bus in self.backend.buses),
            probe_commands=self.backend.counters.probe_commands,
            drain_accesses=self.backend.counters.drain_accesses,
            rank_residencies=self._residencies(),
            phase_cycles=phases,
            extras=self._extras(),
        )

    def _extras(self) -> Dict[str, float]:
        """Auxiliary deterministic measures (digest-protected like the rest).

        ``fastpath_hit_rate`` is the fraction of ORAM path accesses the
        macro-replay core stamped without falling back to the event core.
        Eligibility is a pure function of simulated state, so the rate is
        identical across hosts, job counts, and cache replays — only a
        disabled fast path (reference core, ``REPRO_DISABLE_FASTPATH``)
        reports 0.0.
        """
        stats_fn = getattr(self.backend, "fastpath_stats", None)
        if stats_fn is None:
            return {}
        attempts, fast = stats_fn()
        rate = fast / attempts if attempts else 0.0
        return {"fastpath_hit_rate": rate}

    def _residencies(self):
        residencies = []
        for channel in self.backend.channels:
            for rank in channel.ranks:
                entry = {state.value: cycles
                         for state, cycles in rank.state_residency.items()}
                entry["refreshes"] = rank.refresh_count
                entry["power_down_exits"] = rank.power_down_exits
                residencies.append(entry)
        return residencies
