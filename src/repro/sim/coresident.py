"""Co-resident non-secure traffic (the paper's un-evaluated claim).

Section III-A(3): SDIMMs and LRDIMMs "co-reside on the same memory
channel", and "since an SDIMM handles most data movement locally, it does
not negatively impact the bandwidth available to a co-resident VM";
Section IV-B adds that the freed channel "can lead to lower latency for
memory accesses by other non-secure threads (not evaluated in this
study)".  This module evaluates it.

Model: one memory channel hosts both the secure design's traffic and an
ordinary LRDIMM serving a non-secure VM.

* Under **Freecursive**, ORAM path bursts occupy the shared data bus
  directly, so VM requests are scheduled on the *same* channel object and
  contend for the bus with every path read/write.
* Under an **SDIMM design**, the shared bus carries only protocol
  messages; the VM's LRDIMM has the bus almost to itself.  VM requests
  run on their own DIMM's bank machinery and reserve their data burst on
  the shared :class:`~repro.sim.bus.LinkBus` alongside the messages.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from repro.config import DesignPoint, table2_config
from repro.dram.address import AddressMapper
from repro.dram.channel import Channel
from repro.sim.backends import FreecursiveBackend, NonSecureBackend
from repro.sim.bus import LinkBus
from repro.sim.events import EventQueue
from repro.sim.stats import LatencyStats
from repro.sim.system import build_backend
from repro.utils.rng import DeterministicRng


@dataclasses.dataclass
class CoResidentResult:
    """Latency seen by the non-secure VM under one secure design's load."""

    design: str
    vm_latency: LatencyStats
    oram_accesses: int

    @property
    def mean_latency(self) -> float:
        return self.vm_latency.mean


class CoResidentExperiment:
    """Drive an ORAM design at load while timing a co-resident VM."""

    def __init__(self, design: DesignPoint, seed: int = 2018,
                 oram_interval: int = 400, vm_interval: int = 900):
        self.design = design
        self.events = EventQueue()
        self.config = table2_config(design, channels=1, seed=seed)
        self.backend = build_backend(self.config, self.events)
        self.oram_interval = oram_interval
        self.vm_interval = vm_interval
        self._rng = DeterministicRng(seed, "coresident")
        self._vm_channel = self._make_vm_channel()
        self._vm_mapper = (AddressMapper(self._vm_channel.organization,
                                         self.config.oram.block_bytes)
                           if self._vm_channel is not None else None)
        self._shared_bus = self._find_shared_bus()
        self.vm_latency = LatencyStats()

    def _make_vm_channel(self) -> Optional[Channel]:
        """The VM's own LRDIMM, for SDIMM designs (bank-side uncontended)."""
        if isinstance(self.backend, (FreecursiveBackend, NonSecureBackend)):
            return None
        organization = dataclasses.replace(self.config.organization,
                                           dimms_per_channel=1)
        return Channel(self.config.timing, organization,
                       scale=self.config.cpu.cpu_cycles_per_mem_cycle,
                       refresh_enabled=self.config.refresh_enabled,
                       name="vm-lrdimm")

    def _find_shared_bus(self) -> Optional[LinkBus]:
        return self.backend.buses[0] if self.backend.buses else None

    # ------------------------------------------------------------------

    def _vm_access(self, now: int) -> int:
        """One VM read; returns its completion cycle."""
        if self._vm_channel is None:
            # Freecursive / non-secure: share the design's own channel.
            channel = self.backend.channels[0]
            mapper = AddressMapper(channel.organization,
                                   self.config.oram.block_bytes)
            line = self._rng.randrange(mapper.lines_per_channel)
            timing = channel.schedule_access(mapper.decode(line), False,
                                             now)
            return timing.data_end
        line = self._rng.randrange(self._vm_mapper.lines_per_channel)
        timing = self._vm_channel.schedule_access(
            self._vm_mapper.decode(line), False, now)
        if self._shared_bus is None:
            return timing.data_end
        # the burst must also cross the shared channel bus
        _, end = self._shared_bus.reserve_lines(timing.data_end -
                                                self._burst_cycles(), 1)
        return max(end, timing.data_end)

    def _burst_cycles(self) -> int:
        return (self.config.timing.tburst *
                self.config.cpu.cpu_cycles_per_mem_cycle)

    # ------------------------------------------------------------------

    def run(self, oram_requests: int = 200,
            vm_requests: int = 150) -> CoResidentResult:
        """Schedule both request streams and run the event simulation."""
        address_rng = self._rng.child("oram-addresses")
        for index in range(oram_requests):
            arrival = index * self.oram_interval

            def submit(now=arrival):
                self.backend.submit(address_rng.randrange(1 << 22), now,
                                    is_write=False)

            self.events.at(arrival, submit)

        for index in range(vm_requests):
            arrival = index * self.vm_interval + 17  # offset from ORAM grid

            def probe(now=arrival):
                completion = self._vm_access(now)
                self.vm_latency.record(max(0, completion - now))

            self.events.at(arrival, probe)

        self.events.run()
        return CoResidentResult(self.design.value, self.vm_latency,
                                self.backend.counters.accessorams)


def compare_designs(designs: List[DesignPoint] = (
        DesignPoint.NONSECURE, DesignPoint.FREECURSIVE,
        DesignPoint.INDEP_2, DesignPoint.SPLIT_2),
        seed: int = 2018, **kwargs) -> List[CoResidentResult]:
    """Run the experiment for each design; NONSECURE gives the floor."""
    return [CoResidentExperiment(design, seed=seed, **kwargs).run()
            for design in designs]
