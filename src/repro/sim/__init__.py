"""Cycle-level full-system simulation (the USIMM-equivalent harness).

``repro.sim`` ties the substrates together into the design points of
Figures 6-9: a trace-driven CPU with LLC feeds one of five memory backends
(non-secure, Freecursive, INDEP, SPLIT, INDEP-SPLIT), each built on the
DRAM timing model.  Obliviousness makes ORAM timing content-independent,
so this tier moves no payload bytes — the functional tier in
:mod:`repro.oram` and :mod:`repro.core` proves the protocols correct, and
this tier measures what they cost.
"""

from repro.sim.stats import RunResult
from repro.sim.system import build_backend, run_simulation

__all__ = ["RunResult", "build_backend", "run_simulation"]
