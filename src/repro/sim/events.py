"""Discrete-event core: the event queue and serially-reusable resources.

The ORAM backends are networks of exclusive resources (SDIMM internal
channels, the serial Freecursive backend, split groups) fed by dependency
chains (PosMap walks).  Correct overlap — one chain's op filling the gap
another chain left on a device — requires executing work in *time* order,
not call order, so the simulator is event-driven: callbacks fire in
timestamp order, and each :class:`WorkQueue` starts queued jobs exactly
when its resource falls idle.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Callable, Deque, List, Optional, Tuple


class EventQueue:
    """A classic discrete-event scheduler."""

    def __init__(self):
        self._heap: List[Tuple[int, int, Callable[[], None]]] = []
        self._sequence = 0
        self.now = 0

    def at(self, time: int, callback: Callable[[], None]) -> None:
        """Run ``callback`` when simulated time reaches ``time``."""
        if time < self.now:
            time = self.now
        self._sequence += 1
        heapq.heappush(self._heap, (time, self._sequence, callback))

    def run(self) -> int:
        """Drain all events; returns the final simulation time."""
        while self._heap:
            time, _, callback = heapq.heappop(self._heap)
            self.now = max(self.now, time)
            callback()
        return self.now

    @property
    def pending(self) -> int:
        return len(self._heap)


class WorkQueue:
    """FIFO work dispatch for an exclusive resource.

    A job is ``work(start_cycle) -> finish_cycle`` plus a completion
    callback.  Jobs run back to back in arrival order; ``work`` executes at
    the moment the resource picks the job up, so stateful timing models
    (bank machines, row buffers) see operations in true time order.
    """

    def __init__(self, events: EventQueue, name: str = "resource"):
        self.events = events
        self.name = name
        self._queue: Deque = deque()
        self._busy = False
        self.jobs_started = 0
        self.busy_until = 0

    def enqueue(self, arrival: int, work: Callable[[int], int],
                done: Optional[Callable[[int], None]] = None) -> None:
        self._queue.append((arrival, work, done))
        if not self._busy:
            self._start_next()

    def _start_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        arrival, work, done = self._queue[0]
        start = max(self.events.now, arrival)
        if start > self.events.now:
            # resource idles until the job's inputs arrive
            self._busy = True
            self.events.at(start, self._start_next_now)
            return
        self._queue.popleft()
        self._busy = True
        self.jobs_started += 1
        finish = work(start)
        self.busy_until = finish
        self.events.at(finish, lambda: self._finish(finish, done))

    def _start_next_now(self) -> None:
        self._busy = False
        self._start_next()

    def _finish(self, finish: int,
                done: Optional[Callable[[int], None]]) -> None:
        if done is not None:
            done(finish)
        self._busy = False
        self._start_next()

    @property
    def depth(self) -> int:
        return len(self._queue)
