"""Discrete-event core: the event queue and serially-reusable resources.

The ORAM backends are networks of exclusive resources (SDIMM internal
channels, the serial Freecursive backend, split groups) fed by dependency
chains (PosMap walks).  Correct overlap — one chain's op filling the gap
another chain left on a device — requires executing work in *time* order,
not call order, so the simulator is event-driven: callbacks fire in
timestamp order, and each :class:`WorkQueue` starts queued jobs exactly
when its resource falls idle.

Hot-path note: a benchmark run fires hundreds of thousands of events, so
the scheduler stores ``(time, sequence, fn, args)`` tuples instead of
closures — :meth:`EventQueue.call_at` passes arguments positionally and
:class:`WorkQueue` completion avoids allocating one lambda per job.  Both
classes are slotted; event ordering (time, then insertion order) is
unchanged, so simulations are cycle-identical to the closure-based core.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Callable, Deque, List, Optional, Tuple

from repro.utils.memo import REFERENCE_CORE

_NO_ARGS: Tuple = ()


class EventQueue:
    """A classic discrete-event scheduler."""

    __slots__ = ("_heap", "_sequence", "now")

    def __init__(self):
        self._heap: List[Tuple[int, int, Callable, Tuple]] = []
        self._sequence = 0
        self.now = 0

    def at(self, time: int, callback: Callable[[], None]) -> None:
        """Run ``callback`` when simulated time reaches ``time``."""
        if time < self.now:
            time = self.now
        self._sequence += 1
        heapq.heappush(self._heap, (time, self._sequence, callback, _NO_ARGS))

    def call_at(self, time: int, fn: Callable, *args) -> None:
        """Like :meth:`at` but passes ``args`` positionally at fire time.

        Storing the arguments in the heap entry instead of a closure keeps
        the per-event allocation down to one tuple.
        """
        if REFERENCE_CORE:
            # closure-based reference scheduler: identical ordering (one
            # sequence number per event), one extra allocation per event
            self.at(time, lambda: fn(*args))
            return
        if time < self.now:
            time = self.now
        self._sequence += 1
        heapq.heappush(self._heap, (time, self._sequence, fn, args))

    def run(self) -> int:
        """Drain all events; returns the final simulation time."""
        heap = self._heap
        pop = heapq.heappop
        while heap:
            time, _, fn, args = pop(heap)
            if time > self.now:
                self.now = time
            fn(*args)
        return self.now

    @property
    def pending(self) -> int:
        return len(self._heap)


class WorkQueue:
    """FIFO work dispatch for an exclusive resource.

    A job is ``work(start_cycle) -> finish_cycle`` plus a completion
    callback.  Jobs run back to back in arrival order; ``work`` executes at
    the moment the resource picks the job up, so stateful timing models
    (bank machines, row buffers) see operations in true time order.
    """

    __slots__ = ("events", "name", "_queue", "_busy", "jobs_started",
                 "busy_until")

    def __init__(self, events: EventQueue, name: str = "resource"):
        self.events = events
        self.name = name
        self._queue: Deque = deque()
        self._busy = False
        self.jobs_started = 0
        self.busy_until = 0

    def enqueue(self, arrival: int, work: Callable[[int], int],
                done: Optional[Callable[[int], None]] = None) -> None:
        self._queue.append((arrival, work, done))
        if not self._busy:
            self._start_next()

    def _start_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        arrival, work, done = self._queue[0]
        start = max(self.events.now, arrival)
        if start > self.events.now:
            # resource idles until the job's inputs arrive
            self._busy = True
            self.events.at(start, self._start_next_now)
            return
        self._queue.popleft()
        self._busy = True
        self.jobs_started += 1
        finish = work(start)
        self.busy_until = finish
        self.events.call_at(finish, self._finish, finish, done)

    def _start_next_now(self) -> None:
        self._busy = False
        self._start_next()

    def _finish(self, finish: int,
                done: Optional[Callable[[int], None]]) -> None:
        if done is not None:
            done(finish)
        self._busy = False
        self._start_next()

    @property
    def depth(self) -> int:
        return len(self._queue)
